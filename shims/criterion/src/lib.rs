//! Minimal workspace-local implementation of the `criterion` API
//! surface this repository uses.
//!
//! The build environment has no access to crates.io, so the bench
//! targets run on this vendored subset: each `bench_function` call
//! warms up briefly, then runs a fixed number of timed samples and
//! prints the median per-iteration wall-clock time. There is no
//! statistical analysis, outlier rejection, plotting, or baseline
//! comparison — the numbers are indicative, not publication-grade.

use std::time::{Duration, Instant};

/// Re-export for benches that import `black_box` from criterion.
pub use std::hint::black_box;

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name, sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_bench(&id.into(), sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&id, self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; upstream emits summary reports).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion of the various accepted id types into a display string.
pub trait IntoBenchmarkId {
    /// The display form of the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// Passed to the benchmark closure to time the hot loop.
pub struct Bencher {
    /// Median per-iteration time of the collected samples.
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, running it enough times per sample to get a stable
    /// reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_ns.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let dt = start.elapsed();
            self.sample_ns.push(dt.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibration pass: find an iteration count that makes one sample
    // take roughly 5ms, so short kernels are not all timer noise.
    let mut calib = Bencher { sample_ns: Vec::with_capacity(1), iters_per_sample: 1 };
    f(&mut calib);
    let per_iter = calib.sample_ns.first().copied().unwrap_or(1.0).max(1.0);
    let target = Duration::from_millis(5).as_nanos() as f64;
    let iters = ((target / per_iter) as u64).clamp(1, 1_000_000);

    let mut b = Bencher { sample_ns: Vec::with_capacity(sample_size), iters_per_sample: iters };
    f(&mut b);
    if b.sample_ns.is_empty() {
        eprintln!("  {id}: no samples (closure never called iter)");
        return;
    }
    b.sample_ns.sort_by(|a, c| a.total_cmp(c));
    let median = b.sample_ns[b.sample_ns.len() / 2];
    eprintln!(
        "  {id}: median {} ({} samples x {} iters)",
        fmt_ns(median),
        b.sample_ns.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream
/// criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs() {
        benches();
    }
}
