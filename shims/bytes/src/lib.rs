//! Minimal workspace-local implementation of the `bytes` crate API
//! surface this repository uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of behaviours it needs: [`Bytes`] is a cheaply
//! cloneable (`Arc`-backed), sliceable, immutable byte buffer. Clones
//! and sub-slices share one allocation, which is what makes the blob
//! decode path of `tc-mps` zero-copy.

use std::ops::{Bound, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    ///
    /// Every empty `Bytes` shares one process-wide backing `Arc`, so
    /// this is allocation-free after the first call (empty buffers are
    /// used as placeholders on hot paths).
    pub fn new() -> Self {
        static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
        let empty = EMPTY.get_or_init(|| Arc::from([] as [u8; 0]));
        Self { data: Arc::clone(empty), start: 0, end: 0 }
    }

    /// Creates `Bytes` from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Pointer to the first byte of the view.
    pub fn as_ptr(&self) -> *const u8 {
        self.data[self.start..self.end].as_ptr()
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of bounds of {len}");
        Self { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_share_backing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_slice(), &[3, 4]);
        assert_eq!(b.as_ptr() as usize + 1, s.as_ptr() as usize);
    }

    #[test]
    fn empty_and_clone() {
        let e = Bytes::new();
        assert!(e.is_empty());
        let b = Bytes::from(vec![9u8]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
