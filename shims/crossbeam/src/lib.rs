//! Minimal workspace-local implementation of the `crossbeam` API
//! surface this repository uses (the unbounded MPMC-ish channel, used
//! here only SPSC), backed by `std::sync::mpsc`.
//!
//! The build environment has no access to crates.io; this shim keeps
//! the original channel-based transport compiling.

/// Channel types mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors if the receiver is gone.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.0.send(v).map_err(|e| SendError(e.0))
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Receiving half of an unbounded channel.
    ///
    /// Wrapped in a `Mutex` so the type is `Sync` like crossbeam's
    /// (std's receiver is `Send` but not `Sync`); uncontended in this
    /// workspace, where each receiver is owned by one rank thread.
    pub struct Receiver<T>(Mutex<mpsc::Receiver<T>>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; errors if all senders are
        /// gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().unwrap().recv().map_err(|_| RecvError)
        }
    }

    /// Error returned when every sender has disconnected.
    #[derive(Debug)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Mutex::new(rx)))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = super::unbounded::<u64>();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            h.join().unwrap();
        }

        #[test]
        fn disconnect_is_an_error() {
            let (tx, rx) = super::unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
