//! Minimal workspace-local implementation of the `rand` 0.9 API
//! surface this repository uses.
//!
//! The build environment has no access to crates.io, so the graph
//! generators run on this vendored subset: [`SmallRng`] is
//! xoshiro256** seeded through SplitMix64 — fast, high-quality, and
//! fully deterministic per seed (the only property the generator tests
//! rely on; the streams do not match upstream `rand`).

pub mod rngs {
    /// A small, fast PRNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 to fill the state, as the xoshiro authors
        // recommend; avoids the all-zero state for every seed.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng { s: [next(), next(), next(), next()] }
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Values samplable uniformly from the full domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with `random_range`.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Lemire-style widening multiply; the tiny modulo bias
                // of the plain multiply is irrelevant for test graphs.
                let hi64 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(hi64 as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (auto-implemented for any core
/// generator).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open).
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = r.random_range(5u64..7);
            assert!((5..7).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
    }
}
