//! Minimal workspace-local implementation of the `proptest` API
//! surface this repository uses.
//!
//! The build environment has no access to crates.io, so the property
//! tests run on this vendored subset: deterministic per-case RNG
//! (seeded from the test body's position plus the case index),
//! strategies for ranges / tuples / vectors / `any` / `select`,
//! `prop_map` / `prop_flat_map` adapters, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros. There is **no shrinking**:
//! a failing case reports its inputs and seed instead.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng, Standard, UniformInt};

/// Deterministic RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn from_seed(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (`ProptestConfig` in upstream proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test-case body did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then draws from the strategy `f` builds on it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: UniformInt> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Strategy producing any value of `T` (the `any::<T>()` entry point).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produces arbitrary values of `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::UniformInt;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of values from `elem`, length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                usize::sample_range(rng, self.len.start, self.len.end)
            };
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Namespaced strategy modules (mirrors upstream `proptest::prop`).
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::UniformInt;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Chooses one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[usize::sample_range(rng, 0, self.0.len())].clone()
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use super::{any, prop, Any, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts inside a proptest body (reports inputs instead of
/// panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Rejects the current inputs; the runner draws a fresh case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors upstream proptest's surface:
///
/// ```no_run
/// use proptest::collection::vec;
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in vec(any::<u64>(), 0..8)) {
///         prop_assert!(x < 100);
///         prop_assert!(v.len() < 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: parse each `#[test] fn` item in turn.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])+
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])+
        fn $name() {
            $crate::__proptest_args! {
                cfg = ($cfg); name = $name; acc = []; pending = []; rest = [$($params)*]; body = $body
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Internal: split the parameter list into `(pattern, strategy)` pairs
/// at top-level commas (commas inside `(...)`/`[...]` are single token
/// trees and invisible here).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_args {
    // A top-level comma ends the pending strategy expression.
    (cfg = $cfg:tt; name = $name:ident;
     acc = [$($acc:tt)*]; pending = [$pat:ident in $($strat:tt)+]; rest = [, $($rest:tt)*]; body = $body:tt) => {
        $crate::__proptest_args! {
            cfg = $cfg; name = $name;
            acc = [$($acc)* ($pat) ($($strat)+);]; pending = []; rest = [$($rest)*]; body = $body
        }
    };
    // End of input with a pending strategy.
    (cfg = $cfg:tt; name = $name:ident;
     acc = [$($acc:tt)*]; pending = [$pat:ident in $($strat:tt)+]; rest = []; body = $body:tt) => {
        $crate::__proptest_run! {
            cfg = $cfg; name = $name; args = [$($acc)* ($pat) ($($strat)+);]; body = $body
        }
    };
    // Accumulate one more token into the pending strategy.
    (cfg = $cfg:tt; name = $name:ident;
     acc = $acc:tt; pending = [$pat:ident in $($strat:tt)*]; rest = [$t:tt $($rest:tt)*]; body = $body:tt) => {
        $crate::__proptest_args! {
            cfg = $cfg; name = $name;
            acc = $acc; pending = [$pat in $($strat)* $t]; rest = [$($rest)*]; body = $body
        }
    };
    // Start of a new `pat in strategy` argument.
    (cfg = $cfg:tt; name = $name:ident;
     acc = $acc:tt; pending = []; rest = [$pat:ident in $($rest:tt)*]; body = $body:tt) => {
        $crate::__proptest_args! {
            cfg = $cfg; name = $name; acc = $acc; pending = [$pat in]; rest = [$($rest)*]; body = $body
        }
    };
    // Trailing comma / empty argument list.
    (cfg = $cfg:tt; name = $name:ident; acc = [$($acc:tt)*]; pending = []; rest = []; body = $body:tt) => {
        $crate::__proptest_run! { cfg = $cfg; name = $name; args = [$($acc)*]; body = $body }
    };
}

/// Internal: the per-test runner.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_run {
    (cfg = ($cfg:expr); name = $name:ident; args = [$(($pat:ident) ($strat:expr);)*]; body = $body:tt) => {{
        let config: $crate::ProptestConfig = $cfg;
        // Stable per-test seed: derived from the test path so runs are
        // reproducible; the case index advances the stream.
        let base: u64 = {
            let path = concat!(module_path!(), "::", stringify!($name));
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            h
        };
        let mut successes: u32 = 0;
        let mut rejects: u64 = 0;
        let mut case: u64 = 0;
        while successes < config.cases {
            let mut __rng = $crate::TestRng::from_seed(base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)*
            let __inputs = {
                let mut s = String::new();
                $(
                    s.push_str(concat!(stringify!($pat), " = "));
                    s.push_str(&format!("{:?}, ", &$pat));
                )*
                s
            };
            let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                $body
                #[allow(unreachable_code)]
                Ok(())
            })();
            match outcome {
                Ok(()) => successes += 1,
                Err($crate::TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects < 64 * config.cases as u64 + 1024,
                        "proptest {}: too many prop_assume! rejections", stringify!($name)
                    );
                }
                Err($crate::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {} (seed base {:#x}):\n  inputs: {}\n  {}",
                        stringify!($name), case, base, __inputs, msg
                    );
                }
            }
            case += 1;
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vectors_respect_len_and_elems(v in vec(0u64..100, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
            for &e in &v {
                prop_assert!(e < 100);
            }
        }

        #[test]
        fn tuples_and_nested_commas(pair in (0u32..10, 5u32..6), b in any::<bool>()) {
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(pair.1, 5);
            let _ = b;
        }

        #[test]
        fn flat_map_and_assume(n in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..20))) {
            prop_assume!(n.1 < n.0);
            prop_assert!(n.1 < n.0);
        }

        #[test]
        fn select_picks_from_list(p in prop::sample::select(vec![1usize, 4, 9])) {
            prop_assert!([1usize, 4, 9].contains(&p));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_seed(42);
        let mut b = crate::TestRng::from_seed(42);
        let sa = (0u32..1000).new_value(&mut a);
        let sb = (0u32..1000).new_value(&mut b);
        assert_eq!(sa, sb);
    }
}
