#!/bin/bash
# Reference bench suite at CI scale: a fast, deterministic subset of
# the full campaign (run_all.sh) that exercises every algorithm family
# on small graphs and writes one consolidated `tc-run-v2` JSON-lines
# report (per-part timing statistics over TRIES measured repeats).
#
#   results/bench_suite.sh [OUT.jsonl]        # default: results/bench_suite.jsonl
#   TRIES=5 WARMUP=1                          # repeat knobs (env overrides)
#
# The checked-in BENCH_BASELINE.json was produced by this script; CI
# re-runs it and diffs with
#
#   tricount benchdiff BENCH_BASELINE.json OUT.jsonl --deterministic-only
#
# `--deterministic-only` ignores wall-clock timings (unbounded noise on
# shared runners) and compares only the deterministic counters — op and
# probe counts, tasks, bytes on the wire, triangle counts — which must
# be bit-identical run to run for a fixed seed. Without that flag,
# benchdiff judges timings by effect size (Welch's t across the TRIES
# repeats), so local perf triage works from the same report. To refresh
# the baseline after an intentional algorithmic change, see
# EXPERIMENTS.md.
set -eu
BIN=target/release
cd "$(dirname "$0")/.."
OUT="${1:-results/bench_suite.jsonl}"
TRIES="${TRIES:-5}"
WARMUP="${WARMUP:-1}"
REPEAT="--tries $TRIES --warmup $WARMUP"
rm -f "$OUT"

# 2D Cannon: strong scaling across three grid sizes on two graph
# families (power-law RMAT and the flatter twitter-like mix).
$BIN/table2_strong_scaling --preset g500-s10       --ranks 4,16,64 $REPEAT --json "$OUT" > /dev/null
$BIN/table2_strong_scaling --preset twitter-like-9 --ranks 4,16    $REPEAT --json "$OUT" > /dev/null

# SUMMA vs Cannon on the same instance (non-square grids + panels).
$BIN/ablation_summa --preset g500-s9 --ranks 16 $REPEAT --json "$OUT" > /dev/null

# Optimization ablation: every TcConfig variant on one instance.
$BIN/ablation_optimizations --preset g500-s9 --ranks 16 $REPEAT --json "$OUT" > /dev/null

# All four 1D baselines + the 2D algorithm head-to-head.
$BIN/table6_vs_1d --preset twitter-like-9 --ranks 16 $REPEAT --json "$OUT" > /dev/null

# Wedge-check comparison (exercises the 2-core peel path).
$BIN/table5_vs_wedge --scale 9 --ranks 16 $REPEAT --json "$OUT" > /dev/null

echo "bench suite: $(wc -l < "$OUT") runs -> $OUT"
