#!/bin/bash
# Regenerates every table and figure of the paper at laptop scale.
# Run from the repo root after `cargo build --release --workspace`.
#
# Every distributed run also appends one `tc-run-v2` JSON line to a
# single consolidated report (results/report.jsonl by default). Each
# line carries per-part timing statistics over TRIES measured repeats
# (WARMUP discarded runs first), so the whole campaign can be compared
# against a previous one with a variance-aware verdict:
#
#   tricount benchdiff results/report.prev.jsonl results/report.jsonl
#
# The legacy per-table .txt files are still produced from the binaries'
# stdout via tee, exactly as before.
set -u
BIN=target/release
RANKS="16,25,36,49,64,81,100,121,144,169"   # the paper's exact sweep
TRIES="${TRIES:-5}"
WARMUP="${WARMUP:-1}"
REPEAT="--tries $TRIES --warmup $WARMUP"
cd "$(dirname "$0")/.."

REPORT="${REPORT:-results/report.jsonl}"
rm -f "$REPORT"
echo "consolidated run report: $REPORT"

echo "=== Table 1 ==="
$BIN/table1_datasets --scale 15 $REPEAT | tee results/table1.txt

echo "=== Table 2 + Figure 1 (4 datasets, paper rank sweep) ==="
for ds in g500-s18 g500-s19 twitter-like-15 friendster-like-16; do
  $BIN/table2_strong_scaling --preset $ds --ranks $RANKS $REPEAT --json "$REPORT" | tee -a results/table2.txt
  $BIN/fig1_efficiency      --preset $ds --ranks $RANKS $REPEAT --json "$REPORT" | tee -a results/fig1.txt
done

echo "=== Figure 2 / Figure 3 (largest dataset) ==="
$BIN/fig2_op_rate       --preset g500-s19 --ranks $RANKS $REPEAT --json "$REPORT" | tee results/fig2.txt
$BIN/fig3_comm_fraction --preset g500-s19 --ranks $RANKS $REPEAT --json "$REPORT" | tee results/fig3.txt

echo "=== Table 3 / Table 4 ==="
$BIN/table3_load_imbalance --preset g500-s19 $REPEAT --json "$REPORT" | tee results/table3.txt
$BIN/table4_task_counts    --preset g500-s19 $REPEAT --json "$REPORT" | tee results/table4.txt

echo "=== Ablations (sec 7.3) ==="
$BIN/ablation_optimizations --preset g500-s18 $REPEAT --json "$REPORT" | tee results/ablation.txt
$BIN/ablation_summa --preset g500-s17 --ranks 16,64 $REPEAT --json "$REPORT" | tee results/ablation_summa.txt

echo "=== Table 5 / Table 6 ==="
$BIN/table5_vs_wedge --scale 14 --ranks 64 $REPEAT --json "$REPORT" | tee results/table5.txt
$BIN/table6_vs_1d    --preset twitter-like-14 --ranks 64 $REPEAT --json "$REPORT" | tee results/table6.txt

echo "ALL EXPERIMENTS DONE ($(wc -l < "$REPORT") runs in $REPORT)"

# Extension experiments (appended; also runnable standalone)
# $BIN/ablation_summa --preset g500-s17 --ranks 16,64 $REPEAT --json "$REPORT"
# $BIN/weak_scaling --scale 18 $REPEAT --json "$REPORT"
