//! k-truss decomposition driven by distributed per-edge triangle
//! supports — the paper's §1 motivating application ("the computations
//! involved in triangle counting forms an important step in computing
//! the k-truss decomposition").
//!
//! The distributed 2D counter produces the initial per-edge supports;
//! the serial peeler turns them into trussness values. The example
//! verifies that the distributed supports match the serial reference
//! exactly before peeling.
//!
//! Run with: `cargo run --release --example ktruss`

use tc_core::{count_per_edge, TcConfig};
use tc_gen::graph500;
use tc_graph::truss;

fn main() {
    let graph = graph500(11, 42).simplify();
    println!("graph: {} vertices, {} edges", graph.num_vertices, graph.num_edges());

    // Distributed per-edge supports on a 3×3 grid.
    let (result, supports) = count_per_edge(&graph, 9, &TcConfig::paper());
    println!("triangles: {}", result.triangles);
    assert_eq!(supports.len(), graph.num_edges());

    // Cross-check every edge's support against the serial reference.
    let serial = truss::edge_supports(&graph);
    for (edge_support, (&(u, v), &s)) in supports.iter().zip(graph.edges.iter().zip(&serial)) {
        assert_eq!((edge_support.u, edge_support.v), (u, v), "edge order");
        assert_eq!(edge_support.support, s, "support of ({u},{v})");
    }
    println!("distributed per-edge supports match the serial reference");

    // Peel to the full truss decomposition.
    let decomposition = truss::truss_decomposition(&graph);
    let kmax = decomposition.max_truss();
    println!("maximum trussness: {kmax}");
    for k in (3..=kmax).rev().take(5) {
        println!("  {k}-truss: {} edges", decomposition.truss_edges(k).len());
    }

    // Sanity: an edge's trussness never exceeds support + 2.
    for (e, d) in supports.iter().zip(&decomposition.trussness) {
        assert!(u64::from(*d) <= e.support + 2);
    }
    println!("trussness bounds verified");
}
