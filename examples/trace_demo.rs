//! Trace demo: run the 2D triangle counter on an RMAT graph with the
//! execution recorder enabled, export a Chrome trace-event file, and
//! print the analyzer's critical-path report.
//!
//! Run with: `cargo run --release --example trace_demo`
//!
//! Then open `trace_demo.trace.json` in Perfetto (ui.perfetto.dev)
//! or chrome://tracing — one lane per rank, with preprocessing
//! phases, Cannon shifts, and collectives as nested spans.

use tc_core::{try_count_triangles_traced, TcConfig};
use tc_gen::{rmat, RmatParams};
use tc_trace::{analysis, chrome, TraceSession};

fn main() {
    // A scale-12 RMAT graph: 4096 vertices, ~32k edge samples with a
    // skewed (Graph500) degree distribution — enough work that the
    // per-shift spans are visibly uneven across ranks.
    let graph = rmat(12, 8, RmatParams::GRAPH500, 42).simplify();
    println!("graph: {} vertices, {} edges", graph.num_vertices, graph.num_edges());

    // Begin a session: this opens the global recorder gate. Every
    // rank thread the universe spawns is registered with a lane, and
    // the instrumented code paths (phases, shifts, sends/recvs,
    // collectives) start recording.
    let session = TraceSession::begin();
    let handle = session.handle();

    let result = try_count_triangles_traced(&graph, 16, &TcConfig::paper(), Some(&handle))
        .expect("distributed run failed");
    println!("triangles (2D, 16 ranks): {}", result.triangles);

    // Finish drains every rank's ring buffer into one time-sorted
    // event list.
    let trace = session.finish();
    println!("recorded {} events ({} dropped)", trace.events.len(), trace.dropped);

    // Consumer 1: the Chrome trace-event exporter.
    let path = std::path::Path::new("trace_demo.trace.json");
    chrome::write_chrome_json(&trace, path).expect("write trace");
    println!("wrote {} — open it at ui.perfetto.dev", path.display());

    // Consumer 2: the analyzer. Its per-phase critical paths are the
    // trace-derived counterpart of `TcResult::modeled_*`: the slowest
    // rank's CPU per phase, and per shift the slowest rank's compute.
    let analysis = analysis::analyze(&trace).expect("traced run recorded events");
    print!("{}", analysis.report());
    println!(
        "modeled   : ppt {:.3}s, tct {:.3}s (from RankMetrics)",
        result.modeled_ppt_time().as_secs_f64(),
        result.modeled_tct_time().as_secs_f64(),
    );
    println!(
        "from trace: ppt {:.3}s, tct {:.3}s",
        analysis.ppt_critical_path_s(),
        analysis.tct_critical_path_s(),
    );
}
