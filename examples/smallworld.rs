//! Small-world clustering sweep — the classic Watts–Strogatz
//! experiment, with the triangle counts supplied by the paper's 2D
//! distributed algorithm.
//!
//! As the rewiring probability `beta` grows, the ring lattice's high
//! clustering collapses toward the random-graph level; the clustering
//! coefficient is `3·triangles / wedges`, so the distributed triangle
//! counter is the workhorse.
//!
//! Run with: `cargo run --release --example smallworld`

use tc_core::count_triangles_default;
use tc_gen::watts_strogatz;
use tc_graph::{stats, Csr};

fn main() {
    let (n, k) = (1 << 13, 6);
    println!("Watts-Strogatz n={n}, k={k}, 16 ranks\n");
    println!("{:>6} {:>12} {:>14} {:>12}", "beta", "triangles", "transitivity", "tct(ms)");

    let mut lattice_transitivity = None;
    for beta in [0.0, 0.01, 0.05, 0.1, 0.3, 0.6, 1.0] {
        let el = watts_strogatz(n, k, beta, 42).simplify();
        let csr = Csr::from_edge_list(&el);
        let r = count_triangles_default(&el, 16);
        let trans = stats::transitivity(&csr, r.triangles);
        lattice_transitivity.get_or_insert(trans);
        println!(
            "{:>6.2} {:>12} {:>14.5} {:>12.1}",
            beta,
            r.triangles,
            trans,
            r.tct_time().as_secs_f64() * 1e3
        );
    }
    let base = lattice_transitivity.unwrap();
    println!(
        "\nlattice transitivity {base:.3} (theory: 3(k-1)/(2(2k-1)) = {:.3})",
        3.0 * (k as f64 - 1.0) / (2.0 * (2.0 * k as f64 - 1.0))
    );
}
