//! Quickstart: generate a Graph500 RMAT graph, count its triangles on
//! a 3×3 rank grid with the 2D algorithm, and cross-check against the
//! serial reference.
//!
//! Run with: `cargo run --release --example quickstart`

use tc_core::{count_triangles, TcConfig};
use tc_gen::graph500;

fn main() {
    // A scale-12 Graph500 instance: 4096 vertices, ~64k edge samples.
    let graph = graph500(12, 42).simplify();
    println!("graph: {} vertices, {} edges", graph.num_vertices, graph.num_edges());

    // Count on 9 ranks (a 3×3 processor grid) with the paper's
    // default configuration.
    let result = count_triangles(&graph, 9, &TcConfig::paper());
    println!("triangles (2D, 9 ranks) : {}", result.triangles);
    println!("  preprocessing time    : {:.2?}", result.ppt_time());
    println!("  counting time         : {:.2?}", result.tct_time());
    println!("  intersection tasks    : {}", result.total_tasks());
    println!("  bytes communicated    : {}", result.total_bytes_sent());

    // The serial map-based <j,i,k> kernel must agree exactly.
    let serial = tc_baselines::serial::count_default(&graph);
    println!("triangles (serial)      : {serial}");
    assert_eq!(result.triangles, serial);
    println!("counts agree");
}
