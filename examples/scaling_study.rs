//! A miniature strong-scaling study: the paper's Table 2 experiment
//! on one dataset, printing phase times, speedups, and where the time
//! goes (computation vs communication) as the grid grows.
//!
//! Run with: `cargo run --release --example scaling_study [scale]`

use tc_core::count_triangles_default;
use tc_gen::graph500;

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(13u32);
    let graph = graph500(scale, 42).simplify();
    println!("g500-s{scale}: {} vertices, {} edges\n", graph.num_vertices, graph.num_edges());
    println!(
        "{:>5} {:>5} {:>9} {:>9} {:>9} {:>8} {:>10} {:>10}",
        "ranks", "grid", "ppt(ms)", "tct(ms)", "total", "speedup", "tct-comm%", "tasks"
    );

    let mut base: Option<f64> = None;
    for p in [1usize, 4, 9, 16, 25, 36] {
        let r = count_triangles_default(&graph, p);
        let total = r.overall_time().as_secs_f64();
        let b = *base.get_or_insert(total);
        let q = tc_mps::perfect_square_side(p).unwrap();
        println!(
            "{:>5} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>8.2} {:>10.1} {:>10}",
            p,
            format!("{q}x{q}"),
            r.ppt_time().as_secs_f64() * 1e3,
            r.tct_time().as_secs_f64() * 1e3,
            total * 1e3,
            b / total,
            100.0 * r.tct_comm_fraction(),
            r.total_tasks(),
        );
    }
    println!("\n(speedup is relative to 1 rank; the paper's Table 2 uses 16 ranks as base)");
}
