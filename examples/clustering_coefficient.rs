//! Network-science application: clustering coefficient and
//! transitivity of a social network — the paper's motivating use of
//! triangle counts ("used in computing the clustering coefficient and
//! the transitivity ratio of graphs", §1).
//!
//! Builds a preferential-attachment graph (twitter-like) and a uniform
//! random graph (friendster-like) of the same size, computes both
//! statistics for each, and shows the distributed count agreeing with
//! the per-vertex serial pipeline.
//!
//! Run with: `cargo run --release --example clustering_coefficient`

use tc_baselines::serial::per_vertex_counts;
use tc_core::count_triangles_default;
use tc_gen::Preset;
use tc_graph::{stats, Csr};

fn analyze(name: &str, preset: Preset) {
    let el = preset.build(7);
    let csr = Csr::from_edge_list(&el);
    let (total, per_vertex) = per_vertex_counts(&el);
    let transitivity = stats::transitivity(&csr, total);
    let avg_clustering = stats::average_clustering(&csr, &per_vertex);

    // The distributed count must agree with the serial total.
    let dist = count_triangles_default(&el, 16);
    assert_eq!(dist.triangles, total);

    println!("{name}");
    println!("  vertices            : {}", el.num_vertices);
    println!("  edges               : {}", el.num_edges());
    println!("  triangles           : {total}");
    println!("  wedges              : {}", stats::total_wedges(&csr));
    println!("  transitivity        : {transitivity:.5}");
    println!("  avg clustering coef : {avg_clustering:.5}");
    println!();
}

fn main() {
    // Same vertex budget, very different closure structure: the
    // skewed graph closes a far larger fraction of its wedges.
    analyze("twitter-like (preferential attachment)", Preset::TwitterLike { scale: 11 });
    analyze("friendster-like (uniform random)", Preset::FriendsterLike { scale: 11 });
}
