//! End-to-end dataset pipeline: generate → persist → reload → count.
//!
//! Demonstrates the I/O layer (text, binary, and Matrix Market
//! formats) feeding the distributed counter — the workflow a user with
//! on-disk graphs (SuiteSparse / Graph Challenge downloads) follows.
//!
//! Run with: `cargo run --release --example dataset_pipeline`

use tc_core::count_triangles_default;
use tc_gen::rmat::{rmat, RmatParams};
use tc_graph::io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("tc-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // 1. Generate and simplify a skewed RMAT graph.
    let graph = rmat(11, 8, RmatParams::GRAPH500, 99).simplify();
    println!("generated: {} vertices, {} edges", graph.num_vertices, graph.num_edges());

    // 2. Persist in both interchange formats.
    let bin_path = dir.join("graph.bin");
    let txt_path = dir.join("graph.txt");
    io::write_binary_edges_path(&graph, &bin_path)?;
    io::write_text_edges(&graph, std::fs::File::create(&txt_path)?)?;
    println!(
        "wrote {} ({} bytes) and {} ({} bytes)",
        bin_path.display(),
        std::fs::metadata(&bin_path)?.len(),
        txt_path.display(),
        std::fs::metadata(&txt_path)?.len(),
    );

    // 3. Reload from binary, verify the round trip.
    let reloaded = io::read_binary_edges_path(&bin_path)?;
    assert_eq!(reloaded, graph);
    let from_text = io::read_text_edges_path(&txt_path)?.simplify();
    assert_eq!(from_text, graph);
    println!("round trips verified");

    // 4. Count triangles on a 2x2 grid and cross-check.
    let result = count_triangles_default(&reloaded, 4);
    let serial = tc_baselines::serial::count_default(&graph);
    assert_eq!(result.triangles, serial);
    println!("triangles: {} (distributed == serial)", result.triangles);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
