//! Crash-recovery fidelity: checkpoint + WAL replay must reproduce
//! the pre-crash engine **bit-identically** — same adjacency
//! snapshot bytes, same count, same edge-set fingerprint — for
//! random batch streams interrupted after every prefix, for WAL
//! files torn at every byte boundary, and for a multi-rank fleet
//! where one rank's durable state is wiped entirely (the WAL-bridge
//! path).

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use tc_core::TcConfig;
use tc_graph::{Csr, EdgeList};
use tc_mps::{Universe, UniverseConfig};
use tc_serve::{Algo, Durability, EdgeOp, Engine};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory (unique per test process and call).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tc-recovery-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// What one engine state looks like from the outside: everything the
/// recovery path promises to reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StateView {
    seq: u64,
    count: u64,
    fingerprint: u64,
    snapshot: Vec<u8>,
}

fn view(engine: &Engine) -> StateView {
    let mut snapshot = Vec::new();
    engine.store().write_snapshot(&mut snapshot).expect("snapshot to memory");
    StateView {
        seq: engine.batches_applied(),
        count: engine.triangles(),
        fingerprint: engine.fingerprint(),
        snapshot,
    }
}

/// Reference run: cold start (no durability), apply batch by batch,
/// capture the state view after every prefix (index k = k batches).
fn reference_states(csr: &Csr, batches: &[Vec<EdgeOp>]) -> Vec<StateView> {
    let out = Universe::try_run_config(1, &UniverseConfig::default(), |comm| {
        let mut engine = Engine::cold_start(comm, csr, Algo::Cannon, TcConfig::default())?;
        let mut states = vec![view(&engine)];
        for batch in batches {
            engine.apply_batch(comm, batch)?;
            states.push(view(&engine));
        }
        Ok(states)
    })
    .expect("reference universe");
    out.0.into_iter().next().expect("rank 0 states")
}

/// Durable run: resume-or-cold-start in `dir`, apply `batches`,
/// return the final view plus whether the rank restored from disk.
fn durable_run(
    csr: &Csr,
    batches: &[Vec<EdgeOp>],
    dir: &Path,
    ckpt_every: u64,
) -> (StateView, bool) {
    let out = Universe::try_run_config(1, &UniverseConfig::default(), |comm| {
        let (mut engine, recovered) = Engine::resume_or_cold_start(
            comm,
            csr,
            Algo::Cannon,
            TcConfig::default(),
            dir,
            ckpt_every,
        )?;
        for batch in batches {
            engine.apply_batch(comm, batch)?;
        }
        Ok((view(&engine), recovered))
    })
    .expect("durable universe");
    out.0.into_iter().next().expect("rank 0 view")
}

fn arb_case() -> impl Strategy<Value = (EdgeList, Vec<Vec<EdgeOp>>)> {
    (8usize..24, any::<u64>()).prop_flat_map(|(n, seed)| {
        let m = n * 2;
        vec(vec((0..n as u32, 0..n as u32, any::<bool>()), 1..10), 1..5).prop_map(move |raw| {
            let batches = raw
                .into_iter()
                .map(|b| b.into_iter().map(|(u, v, insert)| EdgeOp { u, v, insert }).collect())
                .collect();
            (tc_gen::er::gnm(n, m, seed).simplify(), batches)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interrupt the stream after every prefix k: a process that
    /// committed exactly k batches and died must come back as the
    /// reference engine after k batches — same snapshot bytes, same
    /// count, same fingerprint — and keep producing identical states
    /// for the remaining batches.
    #[test]
    fn replay_is_bit_identical_at_every_prefix(case in arb_case()) {
        let (el, batches) = case;
        let csr = Csr::from_edge_list(&el);
        let reference = reference_states(&csr, &batches);

        for k in 0..=batches.len() {
            let dir = scratch("prefix");
            // Life before the crash: cold start + k committed batches.
            let (before, recovered) = durable_run(&csr, &batches[..k], &dir, 0);
            prop_assert!(!recovered, "an empty state dir must cold-start");
            prop_assert_eq!(&before, &reference[k], "pre-crash state at k = {}", k);

            // The respawn: restore and finish the stream.
            let (after, recovered) = durable_run(&csr, &batches[k..], &dir, 0);
            prop_assert!(recovered, "a populated state dir must restore");
            prop_assert_eq!(
                &after,
                reference.last().unwrap(),
                "post-recovery final state (interrupted at k = {})",
                k
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Tear the WAL at every byte boundary: the restore must come back
/// at the longest intact record prefix, bit-identical to the
/// reference state of that seq — never a panic, never a corrupted
/// store, never a state beyond what the intact records cover.
#[test]
fn torn_wal_restores_the_longest_intact_prefix() {
    let el = tc_gen::er::gnm(20, 40, 11).simplify();
    let csr = Csr::from_edge_list(&el);
    let batches: Vec<Vec<EdgeOp>> = (0..5u32)
        .map(|b| {
            (0..6u32)
                .map(|i| {
                    let u = (b * 6 + i) % 20;
                    let v = (u + 1 + b) % 20;
                    EdgeOp { u, v, insert: (b + i) % 3 != 0 }
                })
                .collect()
        })
        .collect();
    let reference = reference_states(&csr, &batches);

    let dir = scratch("torn-src");
    durable_run(&csr, &batches, &dir, 0);
    let wal = dir.join("wal-0.bin");
    let bytes = fs::read(&wal).expect("the run left a WAL");
    assert!(bytes.len() > 100, "WAL too small to be a meaningful tear target");

    for cut in 0..=bytes.len() {
        let dir2 = scratch("torn-cut");
        fs::create_dir_all(&dir2).unwrap();
        for entry in fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), dir2.join(entry.file_name())).unwrap();
        }
        fs::write(dir2.join("wal-0.bin"), &bytes[..cut]).unwrap();

        let mut dur = Durability::open(&dir2).expect("open torn dir");
        let restored = dur.restore().expect("restore").expect("generation 0 survives any tear");
        let k = restored.meta.seq as usize;
        assert!(k <= batches.len(), "cut {cut}: seq {k} beyond the stream");
        let expect = &reference[k];
        assert_eq!(restored.meta.count, expect.count, "cut {cut}: count at seq {k}");
        assert_eq!(restored.meta.hash, expect.fingerprint, "cut {cut}: fingerprint at seq {k}");
        let mut snap = Vec::new();
        restored.store.write_snapshot(&mut snap).unwrap();
        assert_eq!(snap, expect.snapshot, "cut {cut}: snapshot bytes at seq {k}");
        let _ = fs::remove_dir_all(&dir2);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The WAL-bridge path: wipe one rank's durable state entirely; on
/// resume it rebuilds seq 0 from the CSR and a surviving peer's WAL
/// tail bridges it to the fleet's seq — verified by the fingerprint
/// allreduce, with `full_recounts` still pinned at the cold start's 1.
#[test]
fn fleet_bridges_a_wiped_rank_from_a_peer_wal() {
    let el = tc_gen::er::gnm(40, 120, 7).simplify();
    let csr = Csr::from_edge_list(&el);
    let base = scratch("fleet");
    let batches: Vec<Vec<EdgeOp>> = (0..4u32)
        .map(|b| {
            (0..8u32)
                .map(|i| {
                    let u = (b * 8 + i * 3) % 40;
                    let v = (u + 2 + b) % 40;
                    EdgeOp { u, v, insert: (b + i) % 4 != 0 }
                })
                .collect()
        })
        .collect();
    let p = 4usize;

    // First life: cold start, commit the stream.
    let dirs: Vec<PathBuf> = (0..p).map(|r| base.join(format!("rank-{r}"))).collect();
    let dirs_first = dirs.clone();
    let csr_first = csr.clone();
    let batches_first = batches.clone();
    let out = Universe::try_run_config(p, &UniverseConfig::default(), move |comm| {
        let (mut engine, recovered) = Engine::resume_or_cold_start(
            comm,
            &csr_first,
            Algo::Cannon,
            TcConfig::default(),
            &dirs_first[comm.rank()],
            0,
        )?;
        assert!(!recovered);
        for batch in &batches_first {
            engine.apply_batch(comm, batch)?;
        }
        assert_eq!(engine.full_recounts(), 1, "cold start is the only recount");
        Ok((engine.triangles(), engine.fingerprint()))
    })
    .expect("first life");
    let (count, fingerprint) = out.0[0];
    assert!(out.0.iter().all(|&s| s == (count, fingerprint)), "replicated state diverged");

    // The crash: rank 2 loses its checkpoint and WAL outright.
    fs::remove_dir_all(&dirs[2]).expect("wipe rank 2");

    // Second life: survivors restore, rank 2 is bridged, and the
    // fleet keeps serving correct incremental answers.
    let out = Universe::try_run_config(p, &UniverseConfig::default(), move |comm| {
        let (mut engine, recovered) = Engine::resume_or_cold_start(
            comm,
            &csr,
            Algo::Cannon,
            TcConfig::default(),
            &dirs[comm.rank()],
            0,
        )?;
        assert_eq!(recovered, comm.rank() != 2, "only the wiped rank cold-rebuilds");
        assert_eq!(engine.triangles(), count, "bridged fleet count");
        assert_eq!(engine.fingerprint(), fingerprint, "bridged fleet fingerprint");
        assert_eq!(engine.full_recounts(), 1, "recovery must not recount");

        // Post-recovery batch: the incremental path still matches
        // the full 2D oracle.
        let batch: Vec<EdgeOp> =
            (0..10u32).map(|i| EdgeOp { u: i, v: (i + 5) % 40, insert: i % 2 == 0 }).collect();
        let outcome = engine.apply_batch(comm, &batch)?;
        let oracle = engine.recount(comm)?;
        assert_eq!(outcome.triangles, oracle, "post-recovery incremental vs recount");
        Ok(())
    })
    .expect("second life");
    assert_eq!(out.0.len(), p);
    let _ = fs::remove_dir_all(&base);
}

/// Sanity on the reference model itself: the stream's net effect is
/// what the engine sees (guards the test against degenerate streams
/// whose batches cancel to nothing).
#[test]
fn scripted_streams_are_not_degenerate() {
    let el = tc_gen::er::gnm(20, 40, 11).simplify();
    let before: BTreeSet<(u32, u32)> = el.edges.iter().copied().collect();
    let csr = Csr::from_edge_list(&el);
    let batches: Vec<Vec<EdgeOp>> = (0..5u32)
        .map(|b| {
            (0..6u32)
                .map(|i| {
                    let u = (b * 6 + i) % 20;
                    let v = (u + 1 + b) % 20;
                    EdgeOp { u, v, insert: (b + i) % 3 != 0 }
                })
                .collect()
        })
        .collect();
    let states = reference_states(&csr, &batches);
    assert_eq!(states.len(), batches.len() + 1);
    let distinct: BTreeSet<u64> = states.iter().map(|s| s.fingerprint).collect();
    assert!(distinct.len() > 1, "the stream must actually change the edge set");
    assert!(!before.is_empty());
}
