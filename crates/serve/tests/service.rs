//! End-to-end service tests on the in-process fabric: a rank fleet
//! runs [`tc_serve::serve_rank`] on a background thread while the
//! test drives the Unix socket with [`tc_serve::Client`] — streaming
//! update batches with read-your-writes count checks, analytic
//! queries against serial oracles, typed protocol errors, admission
//! control, and a clean shutdown.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tc_graph::{Csr, EdgeList};
use tc_metrics::json::Value;
use tc_metrics::MetricsSession;
use tc_mps::{Universe, UniverseConfig};
use tc_serve::{serve_rank, Client, Request, ServeConfig};

fn sock_path(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tc-serve-{}-{label}.sock", std::process::id()))
}

fn ref_edge_list(n: usize, edges: &BTreeSet<(u32, u32)>) -> EdgeList {
    EdgeList::new(n, edges.iter().copied().collect()).simplify()
}

/// Serial oracle: triangles of the reference edge set.
fn serial_triangles(n: usize, edges: &BTreeSet<(u32, u32)>) -> u64 {
    let csr = Csr::from_edge_list(&ref_edge_list(n, edges));
    let mut t = 0u64;
    for &(u, v) in edges {
        let (nu, nv) = (csr.neighbors(u), csr.neighbors(v));
        t += nu.iter().filter(|&&w| w > v && nv.binary_search(&w).is_ok()).count() as u64;
    }
    t
}

/// Serial oracle: common-neighbour count of one pair (present or not).
fn serial_support(n: usize, edges: &BTreeSet<(u32, u32)>, u: u32, v: u32) -> u64 {
    let csr = Csr::from_edge_list(&ref_edge_list(n, edges));
    let (nu, nv) = (csr.neighbors(u), csr.neighbors(v));
    nu.iter().filter(|w| nv.binary_search(w).is_ok()).count() as u64
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("u64 field '{key}' in {v:?}"))
}

/// Extracts rank 0's value of one counter from a Prometheus exposition.
fn prom_counter0(text: &str, name: &str) -> u64 {
    let needle = format!("{name}{{rank=\"0\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("no {needle:?} line in exposition:\n{text}"))
        .trim()
        .parse()
        .expect("counter value parses")
}

/// A tiny deterministic generator for the update stream.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn service_streams_updates_and_answers_queries() {
    let n = 30usize;
    let el = tc_gen::er::gnm(n, 90, 11).simplify();
    let csr = Csr::from_edge_list(&el);
    let mut reference: BTreeSet<(u32, u32)> = el.edges.iter().copied().collect();

    let sock = sock_path("e2e");
    let session = MetricsSession::begin();
    let ucfg = UniverseConfig { metrics: Some(session.handle()), ..UniverseConfig::default() };
    let mut cfg = ServeConfig::new(sock.clone());
    cfg.flush_ms = 150;
    cfg.max_batch = 64;
    cfg.tick_ms = 100;
    cfg.metrics = Some(session.handle());

    let server = std::thread::spawn(move || {
        Universe::try_run_config(4, &ucfg, |comm| serve_rank(comm, &csr, &cfg))
    });
    let mut client =
        Client::connect_retry(&sock, Duration::from_secs(30)).expect("service comes up");

    // Cold start: the served count matches the serial oracle.
    let reply = client.request(&Request::Count).expect("count");
    assert_eq!(u64_field(&reply, "triangles"), serial_triangles(n, &reference));

    let stats = client.request(&Request::Stats).expect("stats");
    assert_eq!(u64_field(&stats, "vertices"), n as u64);
    assert_eq!(u64_field(&stats, "edges"), reference.len() as u64);
    assert_eq!(u64_field(&stats, "batches"), 0);
    assert_eq!(u64_field(&stats, "full_recounts"), 1, "cold start is the only recount");

    // Support of a present edge and of an absent pair.
    let &(pu, pv) = reference.iter().next().expect("graph has edges");
    let reply = client.request(&Request::Support { u: pu, v: pv }).expect("support");
    assert_eq!(reply.get("present"), Some(&Value::Bool(true)));
    assert_eq!(u64_field(&reply, "support"), serial_support(n, &reference, pu, pv));
    let (au, av) = (0..n as u32)
        .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
        .find(|p| !reference.contains(p))
        .expect("graph is not complete");
    let reply = client.request(&Request::Support { u: au, v: av }).expect("absent support");
    assert_eq!(reply.get("present"), Some(&Value::Bool(false)));
    assert_eq!(u64_field(&reply, "support"), serial_support(n, &reference, au, av));

    // Typed protocol errors.
    let err = client.request(&Request::Support { u: 3, v: 3 }).unwrap_err();
    assert!(err.starts_with("bad_request"), "self-loop support: {err}");
    let err = client
        .request(&Request::Update { insert: vec![(0, n as u32)], delete: vec![] })
        .unwrap_err();
    assert!(err.starts_with("bad_request"), "out-of-range update: {err}");
    let raw = client.request_raw("{\"op\":\"warp\"}").expect("reply to unknown op");
    assert!(raw.contains("\"bad_request\""), "unknown op: {raw}");
    let raw = client.request_raw("not json").expect("reply to junk");
    assert!(raw.contains("\"bad_request\""), "junk line: {raw}");

    // Stream >100 update batches. Every update is chased by a count,
    // whose read barrier applies the buffer as exactly one batch and
    // must observe the write (read-your-writes) — and the maintained
    // count must track the serial oracle at every step.
    let mut rng = Lcg(0xA5A5_5A5A);
    let mut expected_batches = 0u64;
    for round in 0..110 {
        let mut insert = Vec::new();
        let mut delete = Vec::new();
        for _ in 0..(1 + rng.next() % 5) {
            if rng.next() % 3 == 0 && !reference.is_empty() {
                // Delete a currently-present edge.
                let idx = rng.next() as usize % reference.len();
                delete.push(*reference.iter().nth(idx).expect("index in range"));
            } else {
                let u = (rng.next() % n as u64) as u32;
                let v = (rng.next() % n as u64) as u32;
                if u == v {
                    continue;
                }
                let e = (u.min(v), u.max(v));
                if rng.next() % 4 == 0 {
                    delete.push(e);
                } else {
                    insert.push(e);
                }
            }
        }
        if insert.is_empty() && delete.is_empty() {
            insert.push((0, 1 + (round % 7)));
        }
        for &e in &insert {
            reference.insert(e);
        }
        for &e in &delete {
            reference.remove(&e);
        }
        let queued = insert.len() + delete.len();
        let reply = client.request(&Request::Update { insert, delete }).expect("update accepted");
        assert_eq!(u64_field(&reply, "queued"), queued as u64);
        expected_batches += 1;
        let reply = client.request(&Request::Count).expect("count after update");
        assert_eq!(
            u64_field(&reply, "triangles"),
            serial_triangles(n, &reference),
            "maintained count drifted from the serial oracle at round {round}"
        );
    }

    // Deletes win over inserts of the same edge within one request.
    let probe = *reference.iter().next().expect("edges survive the stream");
    client
        .request(&Request::Update { insert: vec![probe], delete: vec![probe] })
        .expect("conflicting update accepted");
    reference.remove(&probe);
    expected_batches += 1;
    let reply = client.request(&Request::Support { u: probe.0, v: probe.1 }).expect("support");
    assert_eq!(reply.get("present"), Some(&Value::Bool(false)));

    // Explicit flush applies the buffer (and is a no-op when empty).
    client
        .request(&Request::Update { insert: vec![probe], delete: vec![] })
        .expect("re-insert accepted");
    reference.insert(probe);
    expected_batches += 1;
    let reply = client.request(&Request::Flush).expect("flush");
    assert_eq!(u64_field(&reply, "applied"), 1);
    assert_eq!(u64_field(&reply, "triangles"), serial_triangles(n, &reference));
    let reply = client.request(&Request::Flush).expect("empty flush");
    assert_eq!(u64_field(&reply, "applied"), 0);

    // Truss membership against the serial decomposition.
    let final_el = ref_edge_list(n, &reference);
    let decomp = tc_graph::truss::try_truss_decomposition(&final_el).expect("serial truss oracle");
    for k in [2u32, 3, 4] {
        let reply = client.request(&Request::Truss { k }).expect("truss");
        let got: BTreeSet<(u32, u32)> = reply
            .get("edges")
            .and_then(Value::as_arr)
            .expect("edges array")
            .iter()
            .map(|p| {
                let p = p.as_arr().expect("pair");
                (p[0].as_u64().unwrap() as u32, p[1].as_u64().unwrap() as u32)
            })
            .collect();
        let want: BTreeSet<(u32, u32)> = decomp
            .edges
            .iter()
            .zip(&decomp.trussness)
            .filter(|&(_, &t)| t >= k)
            .map(|(&e, _)| e)
            .collect();
        assert_eq!(got, want, "{k}-truss membership");
    }

    // The timed flush: buffer an update, issue no read, and wait past
    // flush_ms. `metrics` is deliberately not a read barrier, so the
    // batch counter it scrapes can only have moved if the timer fired.
    let reply = client.request(&Request::Metrics).expect("metrics");
    let prom = reply.get("prometheus").and_then(Value::as_str).expect("exposition text");
    assert_eq!(prom_counter0(prom, "tc_serve_full_recounts"), 1);
    // The per-op latency histograms are pre-seeded: all four appear
    // in the exposition whether or not the op has been queried.
    for op in ["count_ns", "support_ns", "truss_ns", "stats_ns"] {
        let series = format!("tc_serve_query_latency_{op}_count{{rank=\"0\"}}");
        assert!(prom.contains(&series), "latency series {series} missing:\n{prom}");
    }
    let before = prom_counter0(prom, "tc_serve_batches_applied");
    assert_eq!(before, expected_batches);
    let fresh = (0..n as u32)
        .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
        .find(|p| !reference.contains(p))
        .expect("graph is not complete");
    client
        .request(&Request::Update { insert: vec![fresh], delete: vec![] })
        .expect("buffered update");
    reference.insert(fresh);
    expected_batches += 1;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let reply = client.request(&Request::Metrics).expect("metrics");
        let prom = reply.get("prometheus").and_then(Value::as_str).expect("exposition text");
        if prom_counter0(prom, "tc_serve_batches_applied") == expected_batches {
            break;
        }
        assert!(Instant::now() < deadline, "timed flush never applied the buffered update");
    }

    // Final stats, then shutdown.
    let stats = client.request(&Request::Stats).expect("final stats");
    assert_eq!(u64_field(&stats, "batches"), expected_batches);
    assert!(u64_field(&stats, "batches") > 100, "acceptance: >100 applied batches");
    assert_eq!(u64_field(&stats, "edges"), reference.len() as u64);
    assert_eq!(u64_field(&stats, "full_recounts"), 1, "hot path never recounts");
    // Per-query latency summary: every op is present in the reply,
    // and the ops this test exercised carry samples with sane
    // quantile brackets.
    let lat = stats.get("query_latency_ns").expect("latency object in stats reply");
    for op in ["count", "support", "truss", "stats"] {
        let l = lat.get(op).unwrap_or_else(|| panic!("latency summary for {op:?} in {lat:?}"));
        let n_samples = u64_field(l, "n");
        assert!(n_samples > 0, "{op} queries were measured (n={n_samples})");
        let p50 = l.get("p50").and_then(Value::as_arr).expect("p50 bracket");
        let (lo, hi) = (p50[0].as_u64().unwrap(), p50[1].as_u64().unwrap());
        assert!(lo <= hi && hi > 0, "{op} p50 bracket is sane: [{lo},{hi}]");
        let p99 = l.get("p99").and_then(Value::as_arr).expect("p99 bracket");
        assert!(p99[0].as_u64().unwrap() >= lo, "{op} p99 at or above p50");
    }
    client.request(&Request::Shutdown).expect("shutdown");

    let (reports, _stats) = server.join().expect("server thread").expect("universe run");
    let final_count = serial_triangles(n, &reference);
    assert_eq!(reports[0].batches, expected_batches);
    assert_eq!(reports[0].full_recounts, 1);
    assert_eq!(reports[0].rejected, 0);
    assert!(reports[0].queries > 0);
    for r in &reports {
        assert_eq!(r.triangles, final_count, "count stays replicated across the fleet");
    }

    // The surviving connection is told the service is gone.
    let err = client.request(&Request::Count).unwrap_err();
    assert!(err.starts_with("shutting_down"), "post-shutdown request: {err}");
    drop(session);
}

#[test]
fn admission_control_rejects_over_capacity() {
    let el = tc_gen::er::gnm(10, 20, 3).simplify();
    let csr = Csr::from_edge_list(&el);
    let sock = sock_path("gate");
    let mut cfg = ServeConfig::new(sock.clone());
    cfg.queue = 1;
    cfg.tick_ms = 100;

    let server = std::thread::spawn(move || {
        Universe::try_run_config(4, &UniverseConfig::default(), |comm| serve_rank(comm, &csr, &cfg))
    });
    Client::connect_retry(&sock, Duration::from_secs(30)).expect("service comes up");

    // Hammer the single-slot queue from many connections until one
    // request bounces with the typed rejection.
    let seen = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs(30);
    let workers: Vec<_> = (0..12)
        .map(|_| {
            let sock = sock.clone();
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let Ok(mut c) = Client::connect(&sock) else { return };
                while !seen.load(Ordering::Relaxed) && Instant::now() < deadline {
                    match c.request(&Request::Count) {
                        Ok(_) => {}
                        Err(e) if e == "over_capacity" => {
                            seen.store(true, Ordering::Relaxed);
                        }
                        Err(_) => return,
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert!(seen.load(Ordering::Relaxed), "no request was ever rejected over capacity");

    // The queue drains once the hammering stops; shutdown may still
    // race one straggler, so retry on the typed rejection.
    let mut client = Client::connect(&sock).expect("fresh connection");
    loop {
        match client.request(&Request::Shutdown) {
            Ok(_) => break,
            Err(e) if e == "over_capacity" => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("shutdown failed: {e}"),
        }
    }
    let (reports, _stats) = server.join().expect("server thread").expect("universe run");
    assert!(reports[0].rejected >= 1, "rejections are tallied in the report");
}
