//! Property tests: the incremental delta path is exactly equivalent
//! to a fresh 2D recount — maintained count and per-edge supports —
//! after every batch, under both the Cannon and SUMMA oracles and
//! across fleet sizes p ∈ {1, 4, 16}.

use std::collections::{BTreeSet, HashMap};

use proptest::collection::vec;
use proptest::prelude::*;
use tc_core::{try_count_per_edge, SummaGrid, TcConfig};
use tc_graph::{Csr, EdgeList};
use tc_mps::{Universe, UniverseConfig};
use tc_serve::{Algo, EdgeOp, Engine};

/// Reference model: a canonical edge set mutated op by op.
fn apply_ref(edges: &mut BTreeSet<(u32, u32)>, ops: &[EdgeOp]) {
    for op in ops {
        let (u, v) = op.canonical();
        if u == v {
            continue;
        }
        if op.insert {
            edges.insert((u, v));
        } else {
            edges.remove(&(u, v));
        }
    }
}

fn ref_edge_list(n: usize, edges: &BTreeSet<(u32, u32)>) -> EdgeList {
    EdgeList::new(n, edges.iter().copied().collect()).simplify()
}

/// Runs cold start + the batch sequence on `p` ranks, asserting after
/// every batch that the maintained count equals a fresh 2D recount.
/// Returns rank 0's per-edge supports for `probe_edges` plus the
/// final maintained count.
fn run_case(
    el: &EdgeList,
    batches: &[Vec<EdgeOp>],
    probe_edges: &[(u32, u32)],
    p: usize,
    algo: Algo,
) -> (u64, Vec<(u64, bool)>) {
    let csr = Csr::from_edge_list(el);
    let out = Universe::try_run_config(p, &UniverseConfig::default(), |comm| {
        let mut engine = Engine::cold_start(comm, &csr, algo, TcConfig::default())?;
        for batch in batches {
            let outcome = engine.apply_batch(comm, batch)?;
            let oracle = engine.recount(comm)?;
            assert_eq!(
                outcome.triangles, oracle,
                "incremental count drifted from the 2D recount (algo {algo:?}, p {p})"
            );
        }
        assert_eq!(engine.batches_applied(), batches.len() as u64);
        let mut supports = Vec::new();
        for &(u, v) in probe_edges {
            let reply = engine.query_support(comm, u, v)?;
            if comm.rank() == 0 {
                let r = reply.expect("rank 0 gets the support reply");
                supports.push((r.support, r.present));
            }
        }
        Ok((engine.triangles(), supports))
    })
    .expect("universe run");
    out.0.into_iter().next().expect("rank 0 result")
}

/// End-state oracle: per-edge supports from the offline 2D per-edge
/// kernel over the reference final graph.
fn oracle_supports(el: &EdgeList, p: usize) -> HashMap<(u32, u32), u64> {
    let (_result, supports) =
        try_count_per_edge(el, p, &TcConfig::default()).expect("per-edge oracle");
    supports.into_iter().map(|s| ((s.u, s.v), s.support)).collect()
}

/// Common-neighbour count in the reference graph (defined for absent
/// pairs too, unlike the per-edge oracle).
fn ref_support(el: &EdgeList, u: u32, v: u32) -> u64 {
    let csr = Csr::from_edge_list(el);
    let (nu, nv) = (csr.neighbors(u), csr.neighbors(v));
    nu.iter().filter(|w| nv.binary_search(w).is_ok()).count() as u64
}

fn arb_batches(n: u32) -> impl Strategy<Value = Vec<Vec<EdgeOp>>> {
    vec(vec((0..n, 0..n, any::<bool>()), 0..16), 1..5).prop_map(|raw| {
        raw.into_iter()
            .map(|batch| batch.into_iter().map(|(u, v, insert)| EdgeOp { u, v, insert }).collect())
            .collect()
    })
}

fn arb_case() -> impl Strategy<Value = (EdgeList, Vec<Vec<EdgeOp>>)> {
    (6usize..28, any::<u64>()).prop_flat_map(|(n, seed)| {
        let m = n * 2;
        arb_batches(n as u32)
            .prop_map(move |batches| (tc_gen::er::gnm(n, m, seed).simplify(), batches))
    })
}

/// Drives one (graph, batches, p, algo) combination end to end:
/// per-batch recount equivalence inside the universe, then final
/// supports against both the reference model and the offline 2D
/// per-edge kernel.
fn check(el: &EdgeList, batches: &[Vec<EdgeOp>], p: usize, algo: Algo) {
    let n = el.num_vertices;
    let mut reference: BTreeSet<(u32, u32)> = el.edges.iter().copied().collect();
    for batch in batches {
        apply_ref(&mut reference, batch);
    }
    let final_el = ref_edge_list(n, &reference);

    // Probe the first few surviving edges plus a couple of pairs that
    // may be absent.
    let mut probes: Vec<(u32, u32)> = reference.iter().copied().take(8).collect();
    if n >= 2 {
        probes.push((0, (n - 1) as u32));
        probes.push((0, 1));
    }

    let (count, supports) = run_case(el, batches, &probes, p, algo);
    let expected = oracle_supports(&final_el, p);
    let expected_count: u64 = expected.values().sum::<u64>() / 3;
    assert_eq!(count, expected_count, "final count vs per-edge oracle (p {p}, {algo:?})");

    for (&(u, v), &(support, present)) in probes.iter().zip(&supports) {
        assert_eq!(present, reference.contains(&(u.min(v), u.max(v))), "presence of ({u}, {v})");
        assert_eq!(support, ref_support(&final_el, u, v), "support of ({u}, {v})");
        if present {
            assert_eq!(
                support,
                expected[&(u.min(v), u.max(v))],
                "support of present edge ({u}, {v}) vs 2D per-edge oracle"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_matches_recount_cannon_p1(case in arb_case()) {
        let (el, batches) = case;
        check(&el, &batches, 1, Algo::Cannon);
    }

    #[test]
    fn incremental_matches_recount_cannon_p4(case in arb_case()) {
        let (el, batches) = case;
        check(&el, &batches, 4, Algo::Cannon);
    }

    #[test]
    fn incremental_matches_recount_summa_p4(case in arb_case()) {
        let (el, batches) = case;
        check(&el, &batches, 4, Algo::Summa(SummaGrid::new(2, 2)));
    }
}

/// Deterministic batch stream derived from a graph: delete every
/// third edge, re-insert half of the deleted ones, weave in fresh
/// edges — exercising inserts and deletes that interact (shared
/// endpoints, batch-only triangles).
fn scripted_batches(el: &EdgeList, batch_len: usize) -> Vec<Vec<EdgeOp>> {
    let n = el.num_vertices as u32;
    let mut ops: Vec<EdgeOp> = Vec::new();
    for (i, &(u, v)) in el.edges.iter().enumerate() {
        match i % 3 {
            0 => {
                ops.push(EdgeOp::delete(u, v));
                if i % 6 == 0 {
                    ops.push(EdgeOp::insert(u, v));
                }
            }
            1 => {
                let w = (u + v) % n;
                if w != u && w != v {
                    ops.push(EdgeOp::insert(u.min(w), u.max(w)));
                    ops.push(EdgeOp::insert(v.min(w), v.max(w)));
                }
            }
            _ => {}
        }
    }
    ops.chunks(batch_len.max(1)).map(<[EdgeOp]>::to_vec).collect()
}

#[test]
fn incremental_matches_recount_rmat_p16_cannon() {
    let el = tc_gen::rmat(5, 8, tc_gen::RmatParams::GRAPH500, 42).simplify();
    let batches = scripted_batches(&el, 24);
    assert!(batches.len() >= 4, "scripted stream produced too few batches");
    check(&el, &batches, 16, Algo::Cannon);
}

#[test]
fn incremental_matches_recount_rmat_p16_summa() {
    let el = tc_gen::rmat(5, 8, tc_gen::RmatParams::GRAPH500, 7).simplify();
    let batches = scripted_batches(&el, 24);
    check(&el, &batches, 16, Algo::Summa(SummaGrid::new(4, 4)));
}

#[test]
fn full_recounts_stay_pinned_without_oracle_calls() {
    let el = tc_gen::er::gnm(20, 60, 9).simplify();
    let csr = Csr::from_edge_list(&el);
    let batches = scripted_batches(&el, 16);
    let counts = Universe::try_run_config(4, &UniverseConfig::default(), |comm| {
        let mut engine = Engine::cold_start(comm, &csr, Algo::Cannon, TcConfig::default())?;
        for batch in &batches {
            engine.apply_batch(comm, batch)?;
        }
        // The hot path must never recount: cold start is the only one.
        assert_eq!(engine.full_recounts(), 1);
        Ok(engine.triangles())
    })
    .expect("universe run");
    let mut reference: BTreeSet<(u32, u32)> = el.edges.iter().copied().collect();
    for batch in &batches {
        apply_ref(&mut reference, batch);
    }
    let final_el = ref_edge_list(20, &reference);
    let expected = tc_core::try_count_triangles(&final_el, 4, &TcConfig::default())
        .expect("offline oracle")
        .triangles;
    assert!(counts.0.iter().all(|&c| c == expected), "replicated count wrong on some rank");
}
