//! Rank-local durability: checkpoints + write-ahead log.
//!
//! Each rank of a supervised fleet persists its share of the evolving
//! graph under its own directory so a crashed-and-respawned process
//! can rejoin **without** a full 2D recount:
//!
//! - `ckpt-<seq>.bin` — a generation checkpoint: a CRC-guarded meta
//!   header (committed batch seq, global triangle count, global
//!   edge-set fingerprint, cumulative recounts) followed by the
//!   [`AdjStore`] snapshot, which carries its own trailing CRC32c.
//!   Written to a temp file and atomically renamed, so a crash
//!   mid-checkpoint can never shadow the previous good generation.
//! - `wal-<seq>.bin` — the write-ahead log of that generation: one
//!   CRC-framed record per committed batch carrying the **global**
//!   net insert/delete lists (replicated by the engine's allgather,
//!   so any rank's WAL can bridge any other rank's gap) plus the
//!   count and fingerprint after the batch.
//!
//! Restore walks checkpoints newest-first, skipping any that fail
//! their CRC or structural checks ([`IoError::Corrupt`]) in favor of
//! the previous generation, then replays every retained WAL record
//! past the checkpoint's seq. A torn record at the tail of a WAL —
//! the expected shape of a crash mid-append — ends replay silently;
//! the file is truncated back to its last whole record before new
//! appends continue. The two newest generations are retained, older
//! ones pruned at checkpoint time.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tc_graph::io::{crc32c, IoError};
use tc_graph::AdjStore;

/// First 8 bytes of a checkpoint file (`b"TCCKPT01"` as LE `u64`).
pub const CKPT_MAGIC: u64 = 0x3130_5450_4B43_4354;
/// Checkpoint format version.
pub const CKPT_VERSION: u32 = 1;
/// Checkpoint meta header length: magic + version + seq + count +
/// hash + recounts + CRC.
const CKPT_META_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8 + 4;
/// Hard ceiling on a single WAL record's payload, far above any
/// realistic batch but low enough that a corrupt length prefix can
/// never drive a huge allocation.
const WAL_RECORD_CAP: u32 = 1 << 28;

/// One committed batch, as persisted and as bridged between ranks
/// during resync. The insert/delete lists are the engine's **global**
/// net lists, so replaying a record is valid on every rank (edges
/// with no locally-owned endpoint are no-ops in the store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Batch sequence number (1-based; seq `k` is the `k`-th batch).
    pub seq: u64,
    /// Global triangle count after this batch.
    pub count_after: u64,
    /// Global edge-set fingerprint after this batch.
    pub hash_after: u64,
    /// Net inserted canonical edges.
    pub inserts: Vec<(u32, u32)>,
    /// Net deleted canonical edges.
    pub deletes: Vec<(u32, u32)>,
}

/// The meta header of a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptMeta {
    /// Committed batch seq the snapshot reflects.
    pub seq: u64,
    /// Global triangle count at `seq`.
    pub count: u64,
    /// Global edge-set fingerprint at `seq`.
    pub hash: u64,
    /// Cumulative full 2D recounts at checkpoint time (so a respawned
    /// rank keeps reporting the true lifetime total).
    pub recounts: u64,
}

/// A successfully restored rank state: the newest readable checkpoint
/// plus every whole WAL record after it.
#[derive(Debug)]
pub struct Restored {
    /// The rank's block store as of `meta.seq`.
    pub store: AdjStore,
    /// Position in the batch stream (updated past the checkpoint by
    /// WAL replay).
    pub meta: CkptMeta,
}

/// A rank's durability manager: owns the state directory, the open
/// WAL writer, and the checkpoint/prune cycle.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal: Option<BufWriter<File>>,
    wal_base: u64,
}

impl Durability {
    /// Opens (creating if needed) the state directory for one rank.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Durability> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Durability { dir, wal: None, wal_base: 0 })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn ckpt_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq}.bin"))
    }

    fn wal_path(&self, base: u64) -> PathBuf {
        self.dir.join(format!("wal-{base}.bin"))
    }

    /// Sorted ascending `<num>` of every `<prefix><num>.bin` file.
    fn generations(&self, prefix: &str) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name.strip_prefix(prefix).and_then(|r| r.strip_suffix(".bin")) {
                if let Ok(seq) = num.parse::<u64>() {
                    out.push(seq);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Writes a checkpoint at `seq` (temp file + atomic rename),
    /// opens a fresh WAL for the new generation, and prunes all but
    /// the two newest generations.
    pub fn checkpoint(&mut self, store: &AdjStore, meta: CkptMeta) -> tc_graph::io::Result<()> {
        let tmp = self.dir.join("ckpt.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            let mut head = Vec::with_capacity(CKPT_META_LEN);
            head.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
            head.extend_from_slice(&CKPT_VERSION.to_le_bytes());
            head.extend_from_slice(&meta.seq.to_le_bytes());
            head.extend_from_slice(&meta.count.to_le_bytes());
            head.extend_from_slice(&meta.hash.to_le_bytes());
            head.extend_from_slice(&meta.recounts.to_le_bytes());
            let crc = crc32c(&head);
            head.extend_from_slice(&crc.to_le_bytes());
            w.write_all(&head)?;
            store.write_snapshot(&mut w)?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp, self.ckpt_path(meta.seq))?;
        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.wal_path(meta.seq))?;
        self.wal = Some(BufWriter::new(wal));
        self.wal_base = meta.seq;
        self.prune()?;
        Ok(())
    }

    /// Drops every generation older than the two newest checkpoints.
    fn prune(&self) -> io::Result<()> {
        let ckpts = self.generations("ckpt-")?;
        if ckpts.len() <= 2 {
            return Ok(());
        }
        let keep_from = ckpts[ckpts.len() - 2];
        for seq in &ckpts[..ckpts.len() - 2] {
            let _ = fs::remove_file(self.ckpt_path(*seq));
        }
        for base in self.generations("wal-")? {
            if base < keep_from {
                let _ = fs::remove_file(self.wal_path(base));
            }
        }
        Ok(())
    }

    /// Appends one committed batch to the open WAL and flushes it.
    ///
    /// # Panics
    ///
    /// Panics if no WAL is open — [`Durability::checkpoint`] or
    /// [`Durability::restore`] must have established a generation.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let w = self.wal.as_mut().expect("no open WAL generation; checkpoint first");
        let payload = encode_payload(rec);
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&payload)?;
        w.write_all(&crc32c(&payload).to_le_bytes())?;
        w.flush()
    }

    /// Reads one checkpoint file: meta header (CRC-guarded) plus the
    /// embedded store snapshot. Every structural defect — bad magic,
    /// bad version, truncation, checksum mismatch in either layer —
    /// is a typed [`IoError::Corrupt`] naming the byte offset.
    pub fn read_checkpoint(path: &Path) -> tc_graph::io::Result<Restored> {
        let mut r = BufReader::new(File::open(path)?);
        let mut head = [0u8; CKPT_META_LEN];
        r.read_exact(&mut head).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                IoError::Corrupt { msg: "truncated checkpoint meta header".into(), offset: 0 }
            } else {
                IoError::Io(e)
            }
        })?;
        let magic = u64::from_le_bytes(head[0..8].try_into().expect("8 bytes"));
        if magic != CKPT_MAGIC {
            return Err(IoError::Corrupt {
                msg: format!("bad checkpoint magic {magic:#018x}"),
                offset: 0,
            });
        }
        let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        if version != CKPT_VERSION {
            return Err(IoError::Corrupt {
                msg: format!("unsupported checkpoint version {version}"),
                offset: 8,
            });
        }
        let stored_crc = u32::from_le_bytes(head[44..48].try_into().expect("4 bytes"));
        let computed = crc32c(&head[..44]);
        if stored_crc != computed {
            return Err(IoError::Corrupt {
                msg: format!(
                    "checkpoint meta checksum mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
                ),
                offset: 44,
            });
        }
        let meta = CkptMeta {
            seq: u64::from_le_bytes(head[12..20].try_into().expect("8 bytes")),
            count: u64::from_le_bytes(head[20..28].try_into().expect("8 bytes")),
            hash: u64::from_le_bytes(head[28..36].try_into().expect("8 bytes")),
            recounts: u64::from_le_bytes(head[36..44].try_into().expect("8 bytes")),
        };
        let store = AdjStore::read_snapshot(&mut r)?;
        Ok(Restored { store, meta })
    }

    /// Restores the newest readable generation: walks checkpoints
    /// newest-first (a corrupt one is reported on stderr and skipped
    /// in favor of the previous generation), replays every whole WAL
    /// record past the chosen seq, and re-opens the newest WAL for
    /// appending — truncated back past any torn tail record.
    ///
    /// `Ok(None)` means no durable state exists (cold start).
    pub fn restore(&mut self) -> io::Result<Option<Restored>> {
        let mut ckpts = self.generations("ckpt-")?;
        ckpts.reverse();
        let mut chosen = None;
        for seq in ckpts {
            match Self::read_checkpoint(&self.ckpt_path(seq)) {
                Ok(r) => {
                    chosen = Some(r);
                    break;
                }
                Err(e) => {
                    eprintln!(
                        "durability: checkpoint {} unusable ({e}); falling back a generation",
                        self.ckpt_path(seq).display()
                    );
                }
            }
        }
        let Some(mut restored) = chosen else { return Ok(None) };

        let mut bases = self.generations("wal-")?;
        bases.retain(|&b| b >= restored.meta.seq);
        let mut last: Option<(u64, u64)> = None;
        for &base in &bases {
            let (records, valid_len) = read_wal(&self.wal_path(base))?;
            for rec in records {
                apply_record(&mut restored, &rec);
            }
            last = Some((base, valid_len));
        }

        // Continue appending where the newest generation left off.
        let (base, valid_len) = match last {
            Some(x) => x,
            None => (restored.meta.seq, 0),
        };
        let mut wal = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(false)
            .open(self.wal_path(base))?;
        wal.set_len(valid_len)?;
        wal.seek(SeekFrom::End(0))?;
        self.wal = Some(BufWriter::new(wal));
        self.wal_base = base;
        Ok(Some(restored))
    }

    /// Every retained WAL record with `seq > after`, in seq order —
    /// the bridge an up-to-date rank broadcasts so laggards can catch
    /// up during fleet resync.
    pub fn records_since(&self, after: u64) -> io::Result<Vec<WalRecord>> {
        let mut out: Vec<WalRecord> = Vec::new();
        for base in self.generations("wal-")? {
            let (records, _) = read_wal(&self.wal_path(base))?;
            for rec in records {
                if rec.seq > after && out.last().is_none_or(|l| rec.seq > l.seq) {
                    out.push(rec);
                }
            }
        }
        Ok(out)
    }
}

/// Replays one record onto a restored state: net deletes, then net
/// inserts (mirroring the engine), then the committed counters.
/// Records at or before the current seq are skipped (generations
/// overlap after a fallback); a gap in the stream stops replay at the
/// last contiguous record.
fn apply_record(restored: &mut Restored, rec: &WalRecord) {
    if rec.seq <= restored.meta.seq || rec.seq != restored.meta.seq + 1 {
        return;
    }
    for &(u, v) in &rec.deletes {
        restored.store.delete(u, v).expect("WAL delete is in range");
    }
    for &(u, v) in &rec.inserts {
        restored.store.insert(u, v).expect("WAL insert is in range");
    }
    restored.meta.seq = rec.seq;
    restored.meta.count = rec.count_after;
    restored.meta.hash = rec.hash_after;
}

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + 8 * (rec.inserts.len() + rec.deletes.len()));
    out.extend_from_slice(&rec.seq.to_le_bytes());
    out.extend_from_slice(&rec.count_after.to_le_bytes());
    out.extend_from_slice(&rec.hash_after.to_le_bytes());
    out.extend_from_slice(&(rec.inserts.len() as u32).to_le_bytes());
    out.extend_from_slice(&(rec.deletes.len() as u32).to_le_bytes());
    for &(u, v) in rec.inserts.iter().chain(&rec.deletes) {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 28 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let count_after = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let hash_after = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let n_ins = u32::from_le_bytes(payload[24..28].try_into().ok()?) as usize;
    let n_del = u32::from_le_bytes(payload[28..32].try_into().ok()?) as usize;
    if payload.len() != 32 + 8 * (n_ins + n_del) {
        return None;
    }
    let mut pairs = payload[32..].chunks_exact(8).map(|w| {
        (
            u32::from_le_bytes(w[0..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(w[4..8].try_into().expect("4 bytes")),
        )
    });
    let inserts = pairs.by_ref().take(n_ins).collect();
    let deletes = pairs.collect();
    Some(WalRecord { seq, count_after, hash_after, inserts, deletes })
}

/// Reads every whole record of one WAL file. Returns the records and
/// the byte length of the valid prefix — anything past it (a torn
/// length word, short payload, or checksum mismatch: the footprint of
/// a crash mid-append) is dropped.
fn read_wal(path: &Path) -> io::Result<(Vec<WalRecord>, u64)> {
    let data = match fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(len_bytes) = data.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
        if len > WAL_RECORD_CAP {
            break;
        }
        let body_end = at + 4 + len as usize;
        let Some(payload) = data.get(at + 4..body_end) else { break };
        let Some(crc_bytes) = data.get(body_end..body_end + 4) else { break };
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if stored != crc32c(payload) {
            break;
        }
        let Some(rec) = decode_payload(payload) else { break };
        records.push(rec);
        at = body_end + 4;
    }
    Ok((records, at as u64))
}

/// Packs records into a `u32` stream for a fleet broadcast.
pub fn encode_records(recs: &[WalRecord]) -> Vec<u32> {
    let mut out = vec![recs.len() as u32];
    for rec in recs {
        for word in [rec.seq, rec.count_after, rec.hash_after] {
            out.push(word as u32);
            out.push((word >> 32) as u32);
        }
        out.push(rec.inserts.len() as u32);
        out.push(rec.deletes.len() as u32);
        for &(u, v) in rec.inserts.iter().chain(&rec.deletes) {
            out.push(u);
            out.push(v);
        }
    }
    out
}

/// Unpacks a [`encode_records`] stream.
///
/// # Panics
///
/// Panics on a malformed stream — the encoder is the only producer,
/// and the transport below it is CRC-framed.
pub fn decode_records(words: &[u32]) -> Vec<WalRecord> {
    let mut at = 1usize;
    let n = words[0] as usize;
    let mut out = Vec::with_capacity(n.min(tc_graph::adj::PREALLOC_CAP));
    let u64_at = |at: &mut usize| {
        let lo = words[*at] as u64;
        let hi = words[*at + 1] as u64;
        *at += 2;
        lo | (hi << 32)
    };
    for _ in 0..n {
        let seq = u64_at(&mut at);
        let count_after = u64_at(&mut at);
        let hash_after = u64_at(&mut at);
        let n_ins = words[at] as usize;
        let n_del = words[at + 1] as usize;
        at += 2;
        let mut pairs = Vec::with_capacity((n_ins + n_del).min(tc_graph::adj::PREALLOC_CAP));
        for _ in 0..n_ins + n_del {
            pairs.push((words[at], words[at + 1]));
            at += 2;
        }
        let deletes = pairs.split_off(n_ins);
        out.push(WalRecord { seq, count_after, hash_after, inserts: pairs, deletes });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: usize, edges: &[(u32, u32)]) -> AdjStore {
        let mut s = AdjStore::new(n, 0, n);
        for &(u, v) in edges {
            s.insert(u, v).unwrap();
        }
        s
    }

    fn rec(seq: u64, inserts: &[(u32, u32)], deletes: &[(u32, u32)]) -> WalRecord {
        WalRecord {
            seq,
            count_after: 10 + seq,
            hash_after: 0xABCD ^ seq,
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
        }
    }

    #[test]
    fn checkpoint_and_wal_round_trip() {
        let dir = std::env::temp_dir().join(format!("tc-wal-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut dur = Durability::open(&dir).unwrap();
        let store = store_with(6, &[(0, 1), (1, 2), (0, 2)]);
        dur.checkpoint(&store, CkptMeta { seq: 0, count: 1, hash: 77, recounts: 1 }).unwrap();
        dur.append(&rec(1, &[(2, 3)], &[])).unwrap();
        dur.append(&rec(2, &[(3, 4)], &[(0, 1)])).unwrap();

        let mut dur2 = Durability::open(&dir).unwrap();
        let restored = dur2.restore().unwrap().expect("state exists");
        assert_eq!(restored.meta.seq, 2);
        assert_eq!(restored.meta.count, 12);
        assert_eq!(restored.meta.recounts, 1);
        assert!(restored.store.contains(2, 3));
        assert!(restored.store.contains(3, 4));
        assert!(!restored.store.contains(0, 1));
        // The reopened WAL keeps accepting appends.
        dur2.append(&rec(3, &[(0, 1)], &[])).unwrap();
        let tail = dur2.records_since(2).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_dropped_and_truncated() {
        let dir = std::env::temp_dir().join(format!("tc-wal-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut dur = Durability::open(&dir).unwrap();
        let store = store_with(6, &[(0, 1)]);
        dur.checkpoint(&store, CkptMeta { seq: 0, count: 0, hash: 1, recounts: 1 }).unwrap();
        dur.append(&rec(1, &[(1, 2)], &[])).unwrap();
        dur.append(&rec(2, &[(2, 3)], &[])).unwrap();
        drop(dur);
        // Tear the last record mid-payload, as a crash mid-append would.
        let wal = dir.join("wal-0.bin");
        let bytes = fs::read(&wal).unwrap();
        fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

        let mut dur = Durability::open(&dir).unwrap();
        let restored = dur.restore().unwrap().expect("state exists");
        assert_eq!(restored.meta.seq, 1, "torn record must not be replayed");
        assert!(restored.store.contains(1, 2));
        assert!(!restored.store.contains(2, 3));
        // New appends land after the truncated prefix and stay readable.
        dur.append(&rec(2, &[(4, 5)], &[])).unwrap();
        let tail = dur.records_since(0).unwrap();
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(tail[1].inserts, vec![(4, 5)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_typed_and_falls_back_a_generation() {
        let dir = std::env::temp_dir().join(format!("tc-wal-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut dur = Durability::open(&dir).unwrap();
        let store = store_with(6, &[(0, 1)]);
        dur.checkpoint(&store, CkptMeta { seq: 0, count: 0, hash: 1, recounts: 1 }).unwrap();
        dur.append(&rec(1, &[(1, 2)], &[])).unwrap();
        let mut store2 = store_with(6, &[(0, 1)]);
        store2.insert(1, 2).unwrap();
        dur.checkpoint(&store2, CkptMeta { seq: 1, count: 0, hash: 2, recounts: 1 }).unwrap();
        drop(dur);

        // Flip a byte inside the newest checkpoint's snapshot body.
        let newest = dir.join("ckpt-1.bin");
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() - 10;
        bytes[at] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let err = Durability::read_checkpoint(&newest).unwrap_err();
        assert!(
            matches!(err, IoError::Corrupt { .. }),
            "flipped snapshot byte must surface as Corrupt, got {err:?}"
        );

        // restore() skips the bad generation and replays the previous
        // one's WAL to the same logical state.
        let mut dur = Durability::open(&dir).unwrap();
        let restored = dur.restore().unwrap().expect("previous generation survives");
        assert_eq!(restored.meta.seq, 1);
        assert_eq!(restored.meta.hash, 0xABCD ^ 1, "WAL replay carries the record's hash");
        assert!(restored.store.contains(1, 2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_meta_is_corrupt() {
        let dir = std::env::temp_dir().join(format!("tc-wal-shortmeta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-0.bin");
        fs::write(&path, [0u8; 10]).unwrap();
        let err = Durability::read_checkpoint(&path).unwrap_err();
        assert!(matches!(err, IoError::Corrupt { offset: 0, .. }), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_two_newest_generations() {
        let dir = std::env::temp_dir().join(format!("tc-wal-prune-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut dur = Durability::open(&dir).unwrap();
        let store = store_with(4, &[(0, 1)]);
        for seq in [0, 5, 9] {
            dur.checkpoint(&store, CkptMeta { seq, count: 0, hash: 0, recounts: 1 }).unwrap();
        }
        assert!(!dir.join("ckpt-0.bin").exists());
        assert!(!dir.join("wal-0.bin").exists());
        assert!(dir.join("ckpt-5.bin").exists());
        assert!(dir.join("ckpt-9.bin").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_streams_round_trip_the_broadcast_encoding() {
        let recs =
            vec![rec(1, &[(0, 1), (2, 3)], &[(4, 5)]), rec(2, &[], &[(0, 1)]), rec(3, &[], &[])];
        assert_eq!(decode_records(&encode_records(&recs)), recs);
        assert_eq!(decode_records(&encode_records(&[])), Vec::<WalRecord>::new());
    }
}
