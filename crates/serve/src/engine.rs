//! Per-rank incremental triangle-count engine.
//!
//! The engine owns a rank's 1D block of the evolving graph in a
//! mutable [`AdjStore`] and keeps the **global** triangle count
//! replicated on every rank. Cold start runs the full 2D kernel
//! (Cannon or SUMMA) over the owned rows; every subsequent update
//! batch adjusts the count *incrementally* — neighborhood
//! intersections of the touched endpoints only, never a recount.
//!
//! ## Delta algorithm
//!
//! A raw batch (replicated on all ranks) is first **normalized**: for
//! each distinct canonical edge the owner of its smaller endpoint
//! replays the ops in order against the pre-batch store and emits the
//! net effect — a net insert set `I` (absent before, present after)
//! and a net delete set `D` (present before, absent after). `I` and
//! `D` are allgathered so every rank sees both.
//!
//! Let `G0` be the graph before the batch and `G1 = G0 − D + I` the
//! graph after. Because `I ∩ G0 = ∅` and `D ∩ G1 = ∅`, a triangle of
//! `G0` containing a deleted edge cannot survive into `G1` and a
//! triangle of `G1` containing an inserted edge cannot have existed
//! in `G0`, so
//!
//! ```text
//! |T(G1)| = |T(G0)| + created − destroyed
//! ```
//!
//! with the two sides computed symmetrically by inclusion–exclusion
//! over how many batch edges each triangle contains (`j − C(j,2) +
//! C(j,3) = 1` for `j ∈ {1,2,3}`):
//!
//! ```text
//! destroyed = Σ_{e∈D} tri_G0(e) − pairs_G0(D) + triples(D)
//! created   = Σ_{e∈I} tri_G1(e) − pairs_G1(I) + triples(I)
//! ```
//!
//! * `tri_G(e=(u,v))` — common neighbours `|N(u) ∩ N(v)|`, evaluated
//!   at the owner of `u` after the owner of `v` pushes `N(v)` over an
//!   `alltoallv` (before applying `D`, after applying `I`);
//! * `pairs_G(S)` — unordered pairs `{e,f} ⊆ S` sharing a vertex
//!   whose closing third edge is present in `G`, checked by the owner
//!   of the third edge's smaller endpoint;
//! * `triples(S)` — triangles formed entirely of batch edges,
//!   computed from the replicated set on rank 0 alone.
//!
//! The three terms are summed with one 6-wide `allreduce`, so every
//! rank applies the same delta and the count stays replicated.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::time::Instant;

use tc_core::{count_rank_from, summa_rank_from, BlockInput, SummaGrid, TcConfig};
use tc_graph::truss::try_truss_decomposition;
use tc_graph::{AdjStore, Block1D, Csr, EdgeList};
use tc_metrics::names as m;
use tc_mps::{Comm, MpsResult};

use crate::wal::{decode_records, encode_records, CkptMeta, Durability, WalRecord};

/// Which offline 2D kernel backs cold starts (and the recount
/// oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Cannon-style shifts on a `√p × √p` grid.
    Cannon,
    /// SUMMA panels on a rectangular grid.
    Summa(SummaGrid),
}

/// One edge mutation in a raw update batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeOp {
    /// One endpoint.
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// `true` to insert the edge, `false` to delete it.
    pub insert: bool,
}

impl EdgeOp {
    /// An insert op.
    pub fn insert(u: u32, v: u32) -> Self {
        Self { u, v, insert: true }
    }

    /// A delete op.
    pub fn delete(u: u32, v: u32) -> Self {
        Self { u, v, insert: false }
    }

    /// Canonical `(min, max)` endpoints.
    pub fn canonical(&self) -> (u32, u32) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

/// What one applied batch did to the graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Net edges inserted (absent before, present after).
    pub inserted: u64,
    /// Net edges deleted (present before, absent after).
    pub deleted: u64,
    /// Triangles created by the net inserts.
    pub created: u64,
    /// Triangles destroyed by the net deletes.
    pub destroyed: u64,
    /// Global triangle count after the batch.
    pub triangles: u64,
}

/// Support query reply (rank 0 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportReply {
    /// Common-neighbour count of the two endpoints.
    pub support: u64,
    /// Whether the edge itself is currently present.
    pub present: bool,
}

/// Graph-level statistics, replicated by the collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReply {
    /// Global vertex count.
    pub vertices: u64,
    /// Global (undirected, simple) edge count.
    pub edges: u64,
    /// Global triangle count.
    pub triangles: u64,
    /// Update batches applied since cold start.
    pub batches: u64,
    /// Full 2D recounts executed (pinned to 1 after cold start).
    pub full_recounts: u64,
}

/// The per-rank engine: mutable owned block + replicated count.
#[derive(Debug)]
pub struct Engine {
    n: usize,
    block: Block1D,
    store: AdjStore,
    count: u64,
    algo: Algo,
    cfg: TcConfig,
    batches_applied: u64,
    full_recounts: u64,
    /// Replicated fingerprint of the global edge set, maintained
    /// incrementally from the net insert/delete lists.
    hash: u64,
    /// Rank-local durability (checkpoints + WAL); `None` outside
    /// supervised fleets.
    dur: Option<Durability>,
    /// Checkpoint cadence, in committed batches.
    ckpt_every: u64,
}

/// Mixing hash of one canonical edge, summed (wrapping) into the
/// global edge-set fingerprint. splitmix64 of the packed endpoints:
/// cheap, stateless, and the wrapping sum commutes, so every rank
/// arrives at the same fingerprint regardless of batch composition.
pub fn edge_fingerprint(u: u32, v: u32) -> u64 {
    let (a, b) = (u.min(v), u.max(v));
    let mut z = (((a as u64) << 32) | b as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// This rank's additive share of the global fingerprint: each edge
/// `(u, v)` with `u < v` is hashed exactly once, by the owner of `u`.
/// The wrapping allreduce-sum of the shares equals the fingerprint of
/// the whole edge set.
pub fn local_fingerprint(store: &AdjStore) -> u64 {
    let mut acc = 0u64;
    for (u, row) in store.owned_rows() {
        for &w in row {
            if w > u {
                acc = acc.wrapping_add(edge_fingerprint(u, w));
            }
        }
    }
    acc
}

/// `|a ∩ b|` for two sorted ascending slices.
fn intersect_sorted(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut hits) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                hits += 1;
                i += 1;
                j += 1;
            }
        }
    }
    hits
}

/// If `e` and `f` share exactly one vertex, the canonical edge that
/// would close their triangle.
fn shared_third(e: (u32, u32), f: (u32, u32)) -> Option<(u32, u32)> {
    let (a, b) = e;
    let (c, d) = f;
    if e == f {
        return None;
    }
    let (x, y) = if a == c {
        (b, d)
    } else if a == d {
        (b, c)
    } else if b == c {
        (a, d)
    } else if b == d {
        (a, c)
    } else {
        return None;
    };
    Some((x.min(y), x.max(y)))
}

/// Triangles formed entirely of batch edges. Each such triangle is
/// discovered from all three of its edge pairs, hence the `/ 3`.
fn closed_triples(edges: &[(u32, u32)]) -> u64 {
    if edges.len() < 3 {
        return 0;
    }
    let set: HashSet<(u32, u32)> = edges.iter().copied().collect();
    let mut found = 0u64;
    for i in 0..edges.len() {
        for j in i + 1..edges.len() {
            if let Some(t) = shared_third(edges[i], edges[j]) {
                if set.contains(&t) {
                    found += 1;
                }
            }
        }
    }
    found / 3
}

/// Flattens per-rank allgatherv buffers of `[u, v]*` into pairs.
fn flat_pairs(bufs: Vec<Vec<u32>>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for buf in bufs {
        debug_assert_eq!(buf.len() % 2, 0);
        for w in buf.chunks_exact(2) {
            out.push((w[0], w[1]));
        }
    }
    out
}

impl Engine {
    /// Builds a rank's engine from the shared input CSR and runs the
    /// cold-start recount (the one and only hot-path-free full count).
    pub fn cold_start(comm: &Comm, csr: &Csr, algo: Algo, cfg: TcConfig) -> MpsResult<Engine> {
        let n = csr.num_vertices();
        let block = Block1D::new(n, comm.size());
        let (lo, hi) = block.range(comm.rank());
        let store = AdjStore::from_csr_block(csr, lo, hi);
        let mut engine = Engine {
            n,
            block,
            store,
            count: 0,
            algo,
            cfg,
            batches_applied: 0,
            full_recounts: 0,
            hash: 0,
            dur: None,
            ckpt_every: 0,
        };
        engine.recount(comm)?;
        engine.refresh_hash(comm)?;
        Ok(engine)
    }

    /// Builds or restores every rank's engine for one supervised-fleet
    /// session, leaving the fleet in a **consistent, committed** state:
    ///
    /// 1. each rank restores its newest readable checkpoint + WAL tail
    ///    (rank-local, no collectives);
    /// 2. if nobody has durable state, the fleet cold-starts and lays
    ///    down generation-0 checkpoints;
    /// 3. otherwise ranks without state (a process that died before
    ///    its first checkpoint) rebuild seq 0 from the input CSR, the
    ///    most advanced rank broadcasts the WAL records laggards are
    ///    missing (the lists are global, so any rank's WAL bridges any
    ///    other's gap — and a batch interrupted mid-commit is settled
    ///    the same way: committed anywhere ⇒ committed everywhere),
    ///    and every rank replays to the same seq;
    /// 4. the replicated edge-set fingerprint is verified by a
    ///    wrapping allreduce — on any mismatch, or an unbridgeable
    ///    gap, the full 2D recount is the correctness oracle.
    ///
    /// Returns the engine plus whether this rank restored from disk.
    pub fn resume_or_cold_start(
        comm: &Comm,
        csr: &Csr,
        algo: Algo,
        cfg: TcConfig,
        state_dir: &Path,
        ckpt_every: u64,
    ) -> MpsResult<(Engine, bool)> {
        let mut dur = Durability::open(state_dir)
            .unwrap_or_else(|e| panic!("cannot open state dir {}: {e}", state_dir.display()));
        let n = csr.num_vertices();
        let block = Block1D::new(n, comm.size());
        let (lo, hi) = block.range(comm.rank());
        let restored = dur.restore().unwrap_or_else(|e| {
            panic!("cannot scan state dir {}: {e}", state_dir.display());
        });
        // A snapshot from a different fleet shape is another rank's
        // state; treat it as absent rather than corrupting the mesh.
        let restored = restored.filter(|r| r.store.range() == (lo as u32, hi as u32));

        let have = u64::from(restored.is_some());
        if comm.allreduce_sum_u64(have)? == 0 {
            let mut engine = Engine::cold_start(comm, csr, algo, cfg)?;
            engine.attach_durability(dur, ckpt_every);
            return Ok((engine, false));
        }

        let recovered = restored.is_some();
        let (store, meta) = match restored {
            Some(r) => (r.store, r.meta),
            None => (
                AdjStore::from_csr_block(csr, lo, hi),
                CkptMeta { seq: 0, count: 0, hash: 0, recounts: 0 },
            ),
        };
        let mut engine = Engine {
            n,
            block,
            store,
            count: meta.count,
            algo,
            cfg,
            batches_applied: meta.seq,
            full_recounts: meta.recounts,
            hash: meta.hash,
            dur: Some(dur),
            ckpt_every,
        };
        if !recovered {
            // A cold-rebuilt rank has no WAL generation yet; anchor
            // one at its seq-0 snapshot so the bridge records (and
            // every later batch) have a home. Superseded by the
            // re-anchor checkpoint once the bridge lands.
            engine.checkpoint_now();
        }

        // Settle every rank at the frontier: the lowest most-advanced
        // rank broadcasts the records past the slowest rank's seq.
        let seq_max = comm.allreduce_max_u64(meta.seq)?;
        let seq_min = comm.allreduce_min_u64(meta.seq)?;
        let authority_key = if meta.seq == seq_max { comm.rank() as u64 } else { u64::MAX };
        let authority = comm.allreduce_min_u64(authority_key)? as usize;
        let mut bridged = false;
        if seq_min < seq_max {
            let tail = if comm.rank() == authority {
                let recs = engine
                    .dur
                    .as_ref()
                    .expect("resync keeps durability attached")
                    .records_since(seq_min)
                    .unwrap_or_else(|e| panic!("cannot read WAL tail: {e}"));
                // The bridge must cover (seq_min, seq_max] without
                // holes; retention may have pruned too far back.
                let contiguous = recs.iter().zip(seq_min + 1..).all(|(r, want)| r.seq == want)
                    && recs.last().is_some_and(|r| r.seq == seq_max);
                encode_records(if contiguous { &recs } else { &[] })
            } else {
                Vec::new()
            };
            let tail = comm.bcast(authority, &tail)?;
            let records = decode_records(&tail);
            // An unbridgeable gap means a laggard's edges are simply
            // gone — no recount over inconsistent stores can invent
            // them. Die loudly; the supervisor's restart budget turns
            // repeated failures into a declared-dead fleet. In
            // practice the skew at rejoin is at most one batch (no
            // rank commits while a peer is down), far inside the
            // two-generation WAL retention.
            assert!(
                !records.is_empty(),
                "rank {}: WAL bridge for ({seq_min}, {seq_max}] is unavailable; \
                 durable state cannot be reconciled",
                comm.rank()
            );
            for rec in &records {
                engine.apply_committed(rec);
            }
            bridged = true;
        }

        // Replicate the lifetime recount total (a freshly rebuilt rank
        // starts at 0; the authority's value is the fleet's history).
        engine.full_recounts = comm.bcast_val(authority, engine.full_recounts)?;
        engine.verify_fingerprint(comm)?;
        if bridged || engine.batches_applied == 0 {
            // Laggards (and cold-rebuilt ranks, which have no WAL yet)
            // re-anchor with a fresh generation checkpoint.
            engine.checkpoint_now();
        }
        Ok((engine, recovered))
    }

    /// Attaches rank-local durability and lays down the generation
    /// checkpoint anchoring the WAL. `ckpt_every = 0` disables the
    /// periodic cadence (a checkpoint still anchors each generation).
    pub fn attach_durability(&mut self, dur: Durability, ckpt_every: u64) {
        self.dur = Some(dur);
        self.ckpt_every = ckpt_every;
        self.checkpoint_now();
    }

    /// Writes a checkpoint of the current committed state.
    ///
    /// # Panics
    ///
    /// Panics on a state-dir write failure — a supervised rank with a
    /// broken disk must die loudly, not serve undurable answers.
    fn checkpoint_now(&mut self) {
        let meta = CkptMeta {
            seq: self.batches_applied,
            count: self.count,
            hash: self.hash,
            recounts: self.full_recounts,
        };
        if let Some(dur) = self.dur.as_mut() {
            dur.checkpoint(&self.store, meta)
                .unwrap_or_else(|e| panic!("checkpoint at seq {} failed: {e}", meta.seq));
        }
    }

    /// Applies one already-committed batch bridged from another
    /// rank's WAL: net lists onto the store (edges with no owned
    /// endpoint are no-ops), committed counters verbatim, and an
    /// append to this rank's own WAL so the catch-up is durable.
    fn apply_committed(&mut self, rec: &WalRecord) {
        if rec.seq != self.batches_applied + 1 {
            return;
        }
        for &(u, v) in &rec.deletes {
            self.store.delete(u, v).expect("bridged delete is in range");
        }
        for &(u, v) in &rec.inserts {
            self.store.insert(u, v).expect("bridged insert is in range");
        }
        self.batches_applied = rec.seq;
        self.count = rec.count_after;
        self.hash = rec.hash_after;
        if let Some(dur) = self.dur.as_mut() {
            dur.append(rec).unwrap_or_else(|e| panic!("WAL append at seq {} failed: {e}", rec.seq));
        }
    }

    /// Recomputes the replicated edge-set fingerprint from the live
    /// stores (wrapping allreduce of the per-rank shares).
    fn refresh_hash(&mut self, comm: &Comm) -> MpsResult<u64> {
        let shares = comm.allreduce(&[local_fingerprint(&self.store)], |a, b| {
            *a = a.wrapping_add(*b);
        })?;
        self.hash = shares[0];
        Ok(self.hash)
    }

    /// Compares the live fingerprint against the tracked one; on a
    /// mismatch the full 2D recount settles the count and the hash is
    /// rebuilt — zero wrong answers even if replay went sideways.
    fn verify_fingerprint(&mut self, comm: &Comm) -> MpsResult<()> {
        let live = comm.allreduce(&[local_fingerprint(&self.store)], |a, b| {
            *a = a.wrapping_add(*b);
        })?[0];
        let expected = comm.bcast_val(0, self.hash)?;
        if live != expected || self.hash != expected {
            eprintln!(
                "rank {}: fingerprint mismatch after resync (live {live:#018x}, expected \
                 {expected:#018x}); falling back to a full 2D recount",
                comm.rank()
            );
            self.recount(comm)?;
            self.refresh_hash(comm)?;
            self.checkpoint_now();
        }
        Ok(())
    }

    /// Replicated fingerprint of the global edge set.
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// Global triangle count (replicated; current as of the last
    /// applied batch).
    pub fn triangles(&self) -> u64 {
        self.count
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Update batches applied since cold start.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// Full 2D recounts executed (1 after cold start; the incremental
    /// hot path never raises it).
    pub fn full_recounts(&self) -> u64 {
        self.full_recounts
    }

    /// This rank's mutable block store.
    pub fn store(&self) -> &AdjStore {
        &self.store
    }

    /// Runs the full 2D kernel over the current store — the
    /// correctness oracle and cold-start path, **not** part of batch
    /// application.
    pub fn recount(&mut self, comm: &Comm) -> MpsResult<u64> {
        let (lo, xadj, adj) = self.store.to_block_parts();
        let input = BlockInput::Owned { lo, xadj, adj };
        let (triangles, _metrics) = match self.algo {
            Algo::Cannon => count_rank_from(comm, self.n, &input, &self.cfg)?,
            Algo::Summa(grid) => summa_rank_from(comm, &grid, self.n, &input, &self.cfg)?,
        };
        self.full_recounts += 1;
        if comm.rank() == 0 {
            tc_metrics::counter_add(m::SERVE_FULL_RECOUNTS, 1);
        }
        self.count = triangles;
        Ok(triangles)
    }

    /// Applies one raw update batch. `ops` must be identical on every
    /// rank (the service broadcasts it; tests replicate it).
    ///
    /// Ops whose canonical edge is a self-loop or out of range are
    /// ignored (the service layer rejects them before they get here).
    pub fn apply_batch(&mut self, comm: &Comm, ops: &[EdgeOp]) -> MpsResult<BatchOutcome> {
        let t0 = Instant::now();
        let me = comm.rank();

        // -- Normalize: net effect per edge, judged by its owner ------
        let mut order: Vec<(u32, u32)> = Vec::new();
        let mut state: HashMap<(u32, u32), (bool, bool)> = HashMap::new();
        for op in ops {
            let (u, v) = op.canonical();
            if u == v || v as usize >= self.n || self.block.owner(u) != me {
                continue;
            }
            let entry = state.entry((u, v)).or_insert_with(|| {
                order.push((u, v));
                let present = self.store.contains(u, v);
                (present, present)
            });
            entry.1 = op.insert;
        }
        let (mut my_ins, mut my_del) = (Vec::new(), Vec::new());
        for e in &order {
            let (before, after) = state[e];
            if before != after {
                let side = if after { &mut my_ins } else { &mut my_del };
                side.push(e.0);
                side.push(e.1);
            }
        }
        let inserts = flat_pairs(comm.allgatherv(&my_ins)?);
        let deletes = flat_pairs(comm.allgatherv(&my_del)?);

        // -- Destroyed side, against G0 (store still pre-batch) -------
        let (del_tri, del_pairs) = self.delta_side(comm, &deletes)?;
        let del_triples = if me == 0 { closed_triples(&deletes) } else { 0 };

        // -- Mutate ---------------------------------------------------
        for &(u, v) in &deletes {
            self.store.delete(u, v).expect("normalized delete is valid");
        }
        for &(u, v) in &inserts {
            self.store.insert(u, v).expect("normalized insert is valid");
        }

        // -- Created side, against G1 (store now post-batch) ----------
        let (ins_tri, ins_pairs) = self.delta_side(comm, &inserts)?;
        let ins_triples = if me == 0 { closed_triples(&inserts) } else { 0 };

        // -- Combine --------------------------------------------------
        let sums = comm.allreduce(
            &[del_tri, del_pairs, del_triples, ins_tri, ins_pairs, ins_triples],
            |a, b| *a += *b,
        )?;
        let destroyed = sums[0] - sums[1] + sums[2];
        let created = sums[3] - sums[4] + sums[5];
        self.count = self.count + created - destroyed;
        self.batches_applied += 1;
        for &(u, v) in &inserts {
            self.hash = self.hash.wrapping_add(edge_fingerprint(u, v));
        }
        for &(u, v) in &deletes {
            self.hash = self.hash.wrapping_sub(edge_fingerprint(u, v));
        }

        // Commit point for durability: the batch is in the WAL before
        // the frontend can acknowledge it to any client.
        if self.dur.is_some() {
            let rec = WalRecord {
                seq: self.batches_applied,
                count_after: self.count,
                hash_after: self.hash,
                inserts: inserts.clone(),
                deletes: deletes.clone(),
            };
            self.dur
                .as_mut()
                .expect("checked above")
                .append(&rec)
                .unwrap_or_else(|e| panic!("WAL append at seq {} failed: {e}", rec.seq));
            if self.ckpt_every > 0 && self.batches_applied % self.ckpt_every == 0 {
                self.checkpoint_now();
            }
        }

        if me == 0 {
            tc_metrics::counter_add(m::SERVE_BATCHES_APPLIED, 1);
            tc_metrics::counter_add(m::SERVE_EDGES_INSERTED, inserts.len() as u64);
            tc_metrics::counter_add(m::SERVE_EDGES_DELETED, deletes.len() as u64);
            tc_metrics::hist_record(m::SERVE_BATCH_SIZE, (inserts.len() + deletes.len()) as u64);
            tc_metrics::hist_record(m::SERVE_BATCH_APPLY_NS, t0.elapsed().as_nanos() as u64);
        }
        Ok(BatchOutcome {
            inserted: inserts.len() as u64,
            deleted: deletes.len() as u64,
            created,
            destroyed,
            triangles: self.count,
        })
    }

    /// One side of the delta: `Σ tri(e)` and the pair correction for
    /// the replicated edge set, against the **current** store state.
    /// Returns this rank's additive contributions.
    fn delta_side(&self, comm: &Comm, edges: &[(u32, u32)]) -> MpsResult<(u64, u64)> {
        let me = comm.rank();
        let p = comm.size();

        // Push N(v) from owner(v) to owner(u): both sides know the
        // replicated edge set, so no request round is needed. Wire
        // format per destination: repeated [v, len, row...].
        let mut sends: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut pushed: HashSet<(usize, u32)> = HashSet::new();
        for &(u, v) in edges {
            let (ou, ov) = (self.block.owner(u), self.block.owner(v));
            if ov == me && ou != me && pushed.insert((ou, v)) {
                let row = self.store.neighbors(v);
                let dst = &mut sends[ou];
                dst.push(v);
                dst.push(row.len() as u32);
                dst.extend_from_slice(row);
            }
        }
        let received = comm.alltoallv(&sends)?;
        let mut remote: HashMap<u32, Vec<u32>> = HashMap::new();
        for buf in received {
            let mut at = 0usize;
            while at < buf.len() {
                let v = buf[at];
                let len = buf[at + 1] as usize;
                remote.insert(v, buf[at + 2..at + 2 + len].to_vec());
                at += 2 + len;
            }
        }

        let mut tri = 0u64;
        let mut intersections = 0u64;
        for &(u, v) in edges {
            if self.block.owner(u) != me {
                continue;
            }
            let nu = self.store.neighbors(u);
            let nv: &[u32] = if self.block.owner(v) == me {
                self.store.neighbors(v)
            } else {
                remote.get(&v).map_or(&[], Vec::as_slice)
            };
            tri += intersect_sorted(nu, nv);
            intersections += 1;
        }
        tc_metrics::counter_add(m::SERVE_DELTA_INTERSECTIONS, intersections);

        // Pair correction: for every unordered pair of batch edges
        // sharing a vertex, the owner of the closing edge's smaller
        // endpoint checks its presence.
        let mut pairs = 0u64;
        for i in 0..edges.len() {
            for j in i + 1..edges.len() {
                if let Some((x, y)) = shared_third(edges[i], edges[j]) {
                    if self.block.owner(x) == me && self.store.contains(x, y) {
                        pairs += 1;
                    }
                }
            }
        }
        Ok((tri, pairs))
    }

    /// Common-neighbour count of `(u, v)` in the current graph.
    /// Collective; the reply materializes on rank 0 only.
    pub fn query_support(&self, comm: &Comm, u: u32, v: u32) -> MpsResult<Option<SupportReply>> {
        let mut mine: Vec<u32> = Vec::new();
        for w in [u, v] {
            if self.store.owns(w) {
                let row = self.store.neighbors(w);
                mine.push(w);
                mine.push(row.len() as u32);
                mine.extend_from_slice(row);
            }
        }
        let Some(gathered) = comm.gatherv(0, &mine)? else {
            return Ok(None);
        };
        let mut rows: HashMap<u32, Vec<u32>> = HashMap::new();
        for buf in gathered {
            let mut at = 0usize;
            while at < buf.len() {
                let w = buf[at];
                let len = buf[at + 1] as usize;
                rows.insert(w, buf[at + 2..at + 2 + len].to_vec());
                at += 2 + len;
            }
        }
        let nu = rows.get(&u).map_or(&[][..], Vec::as_slice);
        let nv = rows.get(&v).map_or(&[][..], Vec::as_slice);
        tc_metrics::counter_add(m::SERVE_QUERIES_SUPPORT, 1);
        Ok(Some(SupportReply {
            support: intersect_sorted(nu, nv),
            present: nu.binary_search(&v).is_ok(),
        }))
    }

    /// Edges of the `k`-truss of the current graph. Collective; the
    /// membership list materializes on rank 0 only.
    pub fn query_truss(&self, comm: &Comm, k: u32) -> MpsResult<Option<Vec<(u32, u32)>>> {
        // Each edge (u, v) with u < v is emitted exactly once, by the
        // owner of u.
        let mut mine: Vec<u32> = Vec::new();
        for (u, row) in self.store.owned_rows() {
            for &w in row {
                if w > u {
                    mine.push(u);
                    mine.push(w);
                }
            }
        }
        let Some(gathered) = comm.gatherv(0, &mine)? else {
            return Ok(None);
        };
        let edges = flat_pairs(gathered);
        let el = EdgeList::new(self.n, edges).simplify();
        let truss = try_truss_decomposition(&el).expect("store edges are simple");
        let members = truss
            .edges
            .iter()
            .zip(&truss.trussness)
            .filter(|&(_, &t)| t >= k)
            .map(|(&e, _)| e)
            .collect();
        tc_metrics::counter_add(m::SERVE_QUERIES_TRUSS, 1);
        Ok(Some(members))
    }

    /// Graph-level statistics. Collective; replicated on every rank.
    pub fn stats(&self, comm: &Comm) -> MpsResult<StatsReply> {
        let entries = comm.allreduce_sum_u64(self.store.owned_entries())?;
        if comm.rank() == 0 {
            tc_metrics::counter_add(m::SERVE_QUERIES_STATS, 1);
        }
        Ok(StatsReply {
            vertices: self.n as u64,
            edges: entries / 2,
            triangles: self.count,
            batches: self.batches_applied,
            full_recounts: self.full_recounts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_third_identifies_the_closing_edge() {
        assert_eq!(shared_third((0, 1), (1, 2)), Some((0, 2)));
        assert_eq!(shared_third((0, 1), (0, 2)), Some((1, 2)));
        assert_eq!(shared_third((2, 5), (3, 5)), Some((2, 3)));
        assert_eq!(shared_third((0, 1), (2, 3)), None);
        assert_eq!(shared_third((0, 1), (0, 1)), None);
    }

    #[test]
    fn closed_triples_counts_batch_only_triangles() {
        assert_eq!(closed_triples(&[(0, 1), (1, 2), (0, 2)]), 1);
        assert_eq!(closed_triples(&[(0, 1), (1, 2), (2, 3)]), 0);
        // Two triangles sharing the edge (0, 1).
        assert_eq!(closed_triples(&[(0, 1), (1, 2), (0, 2), (1, 3), (0, 3)]), 2);
    }

    #[test]
    fn intersect_sorted_counts_common_entries() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 5, 8]), 2);
        assert_eq!(intersect_sorted(&[], &[1, 2]), 0);
    }

    #[test]
    fn fingerprint_tracks_net_mutations_exactly() {
        let mut store = AdjStore::new(8, 0, 8);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4)] {
            store.insert(u, v).unwrap();
        }
        let mut tracked = local_fingerprint(&store);
        store.insert(2, 5).unwrap();
        tracked = tracked.wrapping_add(edge_fingerprint(2, 5));
        store.delete(0, 1).unwrap();
        tracked = tracked.wrapping_sub(edge_fingerprint(0, 1));
        assert_eq!(tracked, local_fingerprint(&store));
        // Orientation-independent: (u, v) and (v, u) hash alike.
        assert_eq!(edge_fingerprint(3, 9), edge_fingerprint(9, 3));
        assert_ne!(edge_fingerprint(3, 9), edge_fingerprint(3, 8));
    }
}
