//! The long-lived service loop.
//!
//! Every rank calls [`serve_rank`] inside a universe body (threads on
//! `LocalFabric`, one OS process per rank on `SocketFabric`). Rank 0
//! doubles as the **frontend**: it binds a Unix-domain listener at
//! the configured path, accepts line-delimited JSON requests (one
//! thread per connection), and funnels them through a bounded
//! admission queue into the single service loop. Peers sit in a
//! broadcast-driven command loop.
//!
//! ## Fleet protocol
//!
//! Rank 0 drives the fleet with `u32` command streams over
//! `bcast(0, …)`. Collectives are the only cross-rank channel, so
//! every query/update maps to exactly one broadcast followed by the
//! matching collective phase of [`Engine`]. An idle frontend
//! broadcasts a heartbeat tick (default every 5 s) so peers never
//! trip the fabric's receive deadline.
//!
//! ## Coalescing and the read barrier
//!
//! Update requests are acknowledged immediately and buffered; the
//! buffer is applied as one batch when it reaches `max_batch` ops,
//! when the oldest buffered op is `flush_ms` old, on an explicit
//! `flush`, at shutdown — or when a read query (`count`, `support`,
//! `truss`, `stats`) arrives, which guarantees read-your-writes.
//!
//! ## Admission control
//!
//! At most `queue` requests may be in flight between the connection
//! threads and the service loop. Excess requests are rejected
//! immediately with the typed `over_capacity` error and counted in
//! `serve.rejected_queries` — connection threads are not bound to a
//! metrics lane, so the loop folds their atomic tally into the
//! registry on its next turn.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tc_core::TcConfig;
use tc_graph::Csr;
use tc_metrics::names as m;
use tc_metrics::{MetricsHandle, MetricsSnapshot};
use tc_mps::{strict_env, Comm, MpsError, MpsResult, SocketConfig, Universe};

use crate::engine::{Algo, EdgeOp, Engine};
use crate::proto::{self, Request};
use crate::supervisor::read_epoch;

/// `MPS_SERVE_*`: coalescing flush interval (milliseconds).
pub const SERVE_FLUSH_MS_ENV: &str = "MPS_SERVE_FLUSH_MS";
/// `MPS_SERVE_*`: coalescing batch-size flush threshold (ops).
pub const SERVE_MAX_BATCH_ENV: &str = "MPS_SERVE_MAX_BATCH";
/// `MPS_SERVE_*`: admission-control queue capacity (requests).
pub const SERVE_QUEUE_ENV: &str = "MPS_SERVE_QUEUE";
/// `MPS_SERVE_*`: idle heartbeat interval (milliseconds).
pub const SERVE_TICK_MS_ENV: &str = "MPS_SERVE_TICK_MS";
/// `MPS_SERVE_*`: fleet checkpoint cadence (committed batches).
pub const SERVE_CKPT_EVERY_ENV: &str = "MPS_SERVE_CKPT_EVERY";
/// `MPS_SERVE_*`: how long a survivor waits for the supervisor to
/// bump the fleet epoch before giving the crash up as fatal (ms).
pub const SERVE_REJOIN_WAIT_MS_ENV: &str = "MPS_SERVE_REJOIN_WAIT_MS";

// Fleet opcodes, broadcast from rank 0.
const OP_TICK: u32 = 1;
const OP_APPLY: u32 = 2;
const OP_SUPPORT: u32 = 3;
const OP_TRUSS: u32 = 4;
const OP_STATS: u32 = 5;
const OP_METRICS: u32 = 6;
const OP_SHUTDOWN: u32 = 7;

/// Service tunables. Construct with [`ServeConfig::new`], then let
/// the environment override individual knobs via
/// [`ServeConfig::env_overrides`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-socket path the frontend listens on.
    pub listen: PathBuf,
    /// Offline kernel for cold start (and recount oracles).
    pub algo: Algo,
    /// Kernel tunables for the cold-start count.
    pub tc: TcConfig,
    /// Apply the pending buffer once it holds this many ops.
    pub max_batch: usize,
    /// Apply the pending buffer once its oldest op is this old.
    pub flush_ms: u64,
    /// Admission control: max requests in flight.
    pub queue: usize,
    /// Idle heartbeat interval keeping peers inside their receive
    /// deadline.
    pub tick_ms: u64,
    /// Live registry handle backing the `metrics` query; `None`
    /// serves an empty exposition.
    pub metrics: Option<MetricsHandle>,
}

impl ServeConfig {
    /// Defaults: Cannon kernel, 256-op batches, 50 ms flush, 64
    /// queued requests, 5 s ticks.
    pub fn new(listen: PathBuf) -> Self {
        Self {
            listen,
            algo: Algo::Cannon,
            tc: TcConfig::default(),
            max_batch: 256,
            flush_ms: 50,
            queue: 64,
            tick_ms: 5_000,
            metrics: None,
        }
    }

    /// Applies the `MPS_SERVE_*` environment family on top of the
    /// current values. Malformed values panic loudly (strict-env
    /// discipline); unset variables change nothing.
    pub fn env_overrides(mut self) -> Self {
        if let Some(v) = strict_env::<u64>(SERVE_FLUSH_MS_ENV, "millisecond count") {
            self.flush_ms = v;
        }
        if let Some(v) = strict_env::<usize>(SERVE_MAX_BATCH_ENV, "op count") {
            self.max_batch = v.max(1);
        }
        if let Some(v) = strict_env::<usize>(SERVE_QUEUE_ENV, "request count") {
            self.queue = v.max(1);
        }
        if let Some(v) = strict_env::<u64>(SERVE_TICK_MS_ENV, "millisecond count") {
            self.tick_ms = v.max(1);
        }
        self
    }
}

/// Supervised-fleet tunables on top of [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet state directory: the epoch file, per-rank durability
    /// subdirectories, and (under a supervisor) logs and pid files.
    pub state_dir: PathBuf,
    /// Checkpoint cadence in committed batches (the WAL is truncated
    /// at each checkpoint; smaller means faster restores, more
    /// snapshot writes). 0 disables the periodic cadence.
    pub ckpt_every: u64,
    /// How long a survivor waits for the supervisor to bump the
    /// epoch after a peer crash before declaring the fleet dead.
    pub rejoin_wait_ms: u64,
    /// The `retry_after_ms` hint degraded replies carry.
    pub degraded_retry_ms: u64,
}

impl FleetConfig {
    /// Defaults: checkpoint every 64 batches, wait up to 60 s for a
    /// respawn, hint clients to retry after 500 ms.
    pub fn new(state_dir: PathBuf) -> Self {
        Self { state_dir, ckpt_every: 64, rejoin_wait_ms: 60_000, degraded_retry_ms: 500 }
    }

    /// Applies the `MPS_SERVE_*` fleet knobs on top of the current
    /// values (strict-env discipline: malformed values panic).
    pub fn env_overrides(mut self) -> Self {
        if let Some(v) = strict_env::<u64>(SERVE_CKPT_EVERY_ENV, "batch count") {
            self.ckpt_every = v;
        }
        if let Some(v) = strict_env::<u64>(SERVE_REJOIN_WAIT_MS_ENV, "millisecond count") {
            self.rejoin_wait_ms = v.max(1);
        }
        self
    }
}

/// What the service did over its lifetime (rank 0; peers report
/// zeros except the final count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Update batches applied.
    pub batches: u64,
    /// Read queries answered.
    pub queries: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Final global triangle count.
    pub triangles: u64,
    /// Full recounts executed (cold start only on the hot path).
    pub full_recounts: u64,
}

/// One queued request and the channel its reply goes back on.
struct Job {
    req: Request,
    reply: mpsc::Sender<String>,
}

/// The bounded admission queue between connection threads and the
/// service loop.
struct Gate {
    state: Mutex<GateState>,
    ready: Condvar,
    capacity: usize,
    rejected: AtomicU64,
    open: AtomicBool,
}

struct GateState {
    jobs: VecDeque<Job>,
}

impl Gate {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(GateState { jobs: VecDeque::new() }),
            ready: Condvar::new(),
            capacity,
            rejected: AtomicU64::new(0),
            open: AtomicBool::new(true),
        }
    }

    /// Admits a job or returns the typed rejection kind.
    fn enqueue(&self, job: Job) -> Result<(), &'static str> {
        if !self.open.load(Ordering::Acquire) {
            return Err(proto::ERR_SHUTTING_DOWN);
        }
        let mut st = self.state.lock().expect("gate lock");
        if st.jobs.len() >= self.capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(proto::ERR_OVER_CAPACITY);
        }
        st.jobs.push_back(job);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for the next job.
    fn pop(&self, timeout: Duration) -> Option<Job> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("gate lock");
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (next, timed_out) = self.ready.wait_timeout(st, left).expect("gate lock poisoned");
            st = next;
            if timed_out.timed_out() && st.jobs.is_empty() {
                return None;
            }
        }
    }

    /// Stops admission and fails every queued job.
    fn close(&self) {
        self.open.store(false, Ordering::Release);
        let mut st = self.state.lock().expect("gate lock");
        for job in st.jobs.drain(..) {
            let _ = job.reply.send(proto::error_line(proto::ERR_SHUTTING_DOWN, ""));
        }
    }

    fn take_rejected(&self) -> u64 {
        self.rejected.swap(0, Ordering::Relaxed)
    }
}

/// Serves one client connection: read a line, admit it, relay the
/// reply. Sequential per connection; concurrency comes from having
/// one thread per connection.
fn handle_conn(stream: UnixStream, gate: Arc<Gate>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match proto::parse_request(&line) {
            Err(detail) => proto::error_line(proto::ERR_BAD_REQUEST, &detail),
            Ok(req) => {
                let (tx, rx) = mpsc::channel();
                match gate.enqueue(Job { req, reply: tx }) {
                    Err(kind) => proto::error_line(kind, ""),
                    Ok(()) => rx
                        .recv()
                        .unwrap_or_else(|_| proto::error_line(proto::ERR_SHUTTING_DOWN, "")),
                }
            }
        };
        if writeln!(writer, "{reply}").and_then(|()| writer.flush()).is_err() {
            return;
        }
    }
}

/// Runs this rank's half of the service until a `shutdown` request
/// lands. Collective: every rank of the universe must call it with
/// the same `csr` and configuration.
pub fn serve_rank(comm: &Comm, csr: &Csr, cfg: &ServeConfig) -> MpsResult<ServeReport> {
    let mut engine = Engine::cold_start(comm, csr, cfg.algo, cfg.tc)?;
    if comm.rank() == 0 {
        frontend(comm, &mut engine, cfg)
    } else {
        peer_loop(comm, &mut engine, cfg)
    }
}

/// How one degraded window ended.
enum DegradedEnd {
    /// The supervisor bumped the epoch: rejoin the fleet.
    Rejoin,
    /// A client asked for shutdown while degraded.
    Shutdown,
    /// No respawn arrived inside the rejoin budget.
    GaveUp,
}

/// Serves clients from rank 0 alone while a peer rank is down:
/// `count` answers from the last committed state when no writes are
/// buffered, updates queue into the (bounded) coalescing buffer, and
/// everything needing a collective gets the typed `degraded` reply
/// with a retry-after hint — a request never hangs on a dead rank.
fn degraded_serve(
    fs: &mut FrontState,
    cfg: &ServeConfig,
    fleet: &FleetConfig,
    last_epoch: u64,
    down_rank: usize,
) -> DegradedEnd {
    // Connection threads have no metrics lane; the degraded loop runs
    // outside any universe, so it binds rank 0's lane itself.
    let _lane = cfg.metrics.as_ref().map(|h| h.register_rank(0));
    let deadline = Instant::now() + Duration::from_millis(fleet.rejoin_wait_ms);
    // While nothing can flush, the buffer is capped at a full
    // admission queue's worth of maximal batches.
    let buffer_cap = cfg.max_batch.saturating_mul(cfg.queue).max(cfg.max_batch);
    loop {
        if read_epoch(&fleet.state_dir) > last_epoch {
            return DegradedEnd::Rejoin;
        }
        if Instant::now() >= deadline {
            return DegradedEnd::GaveUp;
        }
        let rejected = fs.gate.take_rejected();
        if rejected > 0 {
            tc_metrics::counter_add(m::SERVE_REJECTED_QUERIES, rejected);
            fs.report.rejected += rejected;
        }
        let Some(job) = fs.gate.pop(Duration::from_millis(50)) else {
            continue;
        };
        let reply = match job.req {
            // The committed count is replicated and rank-0-local; it
            // is exact as long as no writes are waiting on the fleet.
            Request::Count if fs.pending.is_empty() => {
                fs.report.queries += 1;
                tc_metrics::counter_add(m::SERVE_QUERIES_COUNT, 1);
                proto::ok_count(fs.report.triangles)
            }
            Request::Update { ref insert, ref delete } => {
                match validate_edges(fs.vertices, insert.iter().chain(delete)) {
                    Err(detail) => proto::error_line(proto::ERR_BAD_REQUEST, &detail),
                    Ok(()) => {
                        let queued = insert.len() + delete.len();
                        if fs.pending.len() + queued > buffer_cap {
                            proto::error_line(proto::ERR_OVER_CAPACITY, "degraded buffer is full")
                        } else {
                            fs.pending.extend(insert.iter().map(|&(u, v)| EdgeOp::insert(u, v)));
                            fs.pending.extend(delete.iter().map(|&(u, v)| EdgeOp::delete(u, v)));
                            fs.oldest.get_or_insert_with(Instant::now);
                            tc_metrics::counter_add(m::SERVE_DEGRADED_UPDATES, queued as u64);
                            proto::ok_queued(queued, fs.pending.len())
                        }
                    }
                }
            }
            Request::Shutdown => {
                let _ = job.reply.send(proto::ok_shutdown());
                return DegradedEnd::Shutdown;
            }
            // Everything else needs the whole fleet.
            _ => {
                fs.report.queries += 1;
                tc_metrics::counter_add(m::SERVE_DEGRADED_QUERIES, 1);
                proto::degraded_line(down_rank, fleet.degraded_retry_ms)
            }
        };
        let _ = job.reply.send(reply);
    }
}

/// Blocks until the epoch file exceeds `last` (the supervisor bumped
/// it for a respawn) or the budget runs out.
fn wait_for_epoch_bump(state_dir: &Path, last: u64, wait_ms: u64) -> bool {
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    while Instant::now() < deadline {
        if read_epoch(state_dir) > last {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// Runs this rank of a **supervised, crash-recoverable** fleet: an
/// outer loop of socket-fabric sessions, one per fleet epoch.
///
/// Every session starts from durable state
/// ([`Engine::resume_or_cold_start`]): checkpoint + WAL replay, a
/// cross-rank resync to the committed frontier, and a fingerprint
/// allreduce guarding against divergence. When a peer process dies,
/// the session ends with [`MpsError::PeerDown`]; rank 0 keeps its
/// listener and serves degraded replies while waiting for the
/// supervisor to bump the epoch file, peers just wait, and everyone
/// reconnects at the new epoch. A clean `shutdown` ends the loop.
pub fn serve_fleet(
    csr: &Csr,
    cfg: &ServeConfig,
    sock: &SocketConfig,
    fleet: &FleetConfig,
) -> MpsResult<ServeReport> {
    let rank = sock.rank;
    let rank_dir = fleet.state_dir.join(format!("rank-{rank}"));
    let mut fs = (rank == 0).then(|| front_bind(cfg));
    if let Some(f) = fs.as_mut() {
        f.degraded_retry_ms = fleet.degraded_retry_ms;
    }
    loop {
        let epoch = read_epoch(&fleet.state_dir).max(sock.epoch);
        let mut sc = sock.clone();
        sc.epoch = epoch;
        sc.recoverable = true;
        let session_fs = &mut fs;
        let result = Universe::try_run_socket(&sc, |comm| {
            let (mut engine, recovered) = Engine::resume_or_cold_start(
                comm,
                csr,
                cfg.algo,
                cfg.tc,
                &rank_dir,
                fleet.ckpt_every,
            )?;
            if recovered && epoch > 0 {
                tc_metrics::counter_add(m::SERVE_RECOVERIES, 1);
            }
            if let Some(fs) = session_fs.as_mut() {
                if epoch > sock.epoch {
                    fs.recoveries += 1;
                }
                frontend_session(comm, &mut engine, cfg, fs)?;
                Ok(ServeReport::default())
            } else {
                peer_loop(comm, &mut engine, cfg)
            }
        });
        match result {
            Ok((peer_report, _stats)) => {
                return Ok(match fs.take() {
                    Some(f) => front_teardown(f, &cfg.listen),
                    None => peer_report,
                });
            }
            Err(MpsError::PeerDown { rank: down }) => {
                eprintln!(
                    "rank {rank}: peer rank {down} is down (epoch {epoch}); awaiting supervised respawn"
                );
                if let Some(f) = fs.as_mut() {
                    match degraded_serve(f, cfg, fleet, epoch, down) {
                        DegradedEnd::Rejoin => continue,
                        DegradedEnd::Shutdown => {
                            return Ok(front_teardown(
                                fs.take().expect("frontend state exists"),
                                &cfg.listen,
                            ));
                        }
                        DegradedEnd::GaveUp => {
                            front_teardown(fs.take().expect("frontend state exists"), &cfg.listen);
                            return Err(MpsError::PeerDown { rank: down });
                        }
                    }
                } else if wait_for_epoch_bump(&fleet.state_dir, epoch, fleet.rejoin_wait_ms) {
                    continue;
                } else {
                    return Err(MpsError::PeerDown { rank: down });
                }
            }
            Err(e) => {
                // A second crash can race the reconnect handshake: if
                // the supervisor moved the epoch on while this session
                // was forming, retry at the newer epoch instead of
                // dying on the stale one.
                if read_epoch(&fleet.state_dir) > epoch {
                    eprintln!("rank {rank}: session at epoch {epoch} superseded ({e}); rejoining");
                    continue;
                }
                if let Some(f) = fs.take() {
                    front_teardown(f, &cfg.listen);
                }
                return Err(e);
            }
        }
    }
}

/// Peer ranks: decode broadcast commands, run the collective half.
fn peer_loop(comm: &Comm, engine: &mut Engine, cfg: &ServeConfig) -> MpsResult<ServeReport> {
    loop {
        let msg = comm.bcast::<u32>(0, &[])?;
        match msg.first().copied() {
            Some(OP_TICK) => {}
            Some(OP_APPLY) => {
                let ops = decode_ops(&msg[1..]);
                engine.apply_batch(comm, &ops)?;
            }
            Some(OP_SUPPORT) => {
                engine.query_support(comm, msg[1], msg[2])?;
            }
            Some(OP_TRUSS) => {
                engine.query_truss(comm, msg[1])?;
            }
            Some(OP_STATS) => {
                engine.stats(comm)?;
            }
            Some(OP_METRICS) => {
                collect_metrics(comm, cfg.metrics.as_ref())?;
            }
            Some(OP_SHUTDOWN) | None => break,
            Some(other) => panic!("unknown fleet opcode {other}"),
        }
    }
    Ok(ServeReport { triangles: engine.triangles(), ..ServeReport::default() })
}

fn encode_ops(msg: &mut Vec<u32>, ops: &[EdgeOp]) {
    msg.push(ops.len() as u32);
    for op in ops {
        msg.push(op.u);
        msg.push(op.v);
        msg.push(u32::from(op.insert));
    }
}

fn decode_ops(payload: &[u32]) -> Vec<EdgeOp> {
    let k = payload[0] as usize;
    let mut ops = Vec::with_capacity(k.min(tc_graph::adj::PREALLOC_CAP));
    for w in payload[1..1 + 3 * k].chunks_exact(3) {
        ops.push(EdgeOp { u: w[0], v: w[1], insert: w[2] != 0 });
    }
    ops
}

/// Gathers every process's live registry snapshot to rank 0 and
/// renders one merged Prometheus exposition. On the in-process
/// fabric all ranks share one registry, so the merge is idempotent;
/// on the socket fabric each process contributes its own lane.
fn collect_metrics(comm: &Comm, metrics: Option<&MetricsHandle>) -> MpsResult<Option<String>> {
    let local = metrics.map(|h| h.snapshot().to_json()).unwrap_or_default();
    let Some(gathered) = comm.gatherv(0, local.as_bytes())? else {
        return Ok(None);
    };
    let mut merged = MetricsSnapshot::new();
    for buf in gathered {
        if buf.is_empty() {
            continue;
        }
        let text = std::str::from_utf8(&buf).expect("snapshot JSON is UTF-8");
        let snap = MetricsSnapshot::from_json(text).expect("snapshot JSON round-trips");
        for rank in snap.ranks() {
            for (name, value) in snap.rank(rank).expect("listed rank exists") {
                merged.insert(rank, name.clone(), value.clone());
            }
        }
    }
    Ok(Some(tc_metrics::prometheus::to_prometheus(&merged)))
}

/// Distills the live per-op latency histograms into the `stats`
/// reply's summary. Every op is present — and zero — even before its
/// first query (the frontend pre-seeds the histograms).
fn query_latency_summary(
    metrics: Option<&MetricsHandle>,
) -> Vec<(&'static str, proto::LatencyStat)> {
    let merged = metrics.map(|h| h.snapshot().merged()).unwrap_or_default();
    [
        ("count", m::SERVE_QUERY_LATENCY_COUNT_NS),
        ("support", m::SERVE_QUERY_LATENCY_SUPPORT_NS),
        ("truss", m::SERVE_QUERY_LATENCY_TRUSS_NS),
        ("stats", m::SERVE_QUERY_LATENCY_STATS_NS),
    ]
    .into_iter()
    .map(|(op, name)| {
        let stat = match merged.get(name) {
            Some(tc_metrics::MetricValue::Hist(h)) => proto::LatencyStat {
                count: h.count(),
                p50: h.quantile_bounds(0.5).unwrap_or((0, 0)),
                p99: h.quantile_bounds(0.99).unwrap_or((0, 0)),
            },
            _ => proto::LatencyStat::default(),
        };
        (op, stat)
    })
    .collect()
}

/// The frontend state that must **outlive** one fleet session: the
/// listener and its admission gate (bound once, so client
/// connections survive a rank crash), the coalescing buffer (ops
/// accepted while degraded apply after the rejoin), and the running
/// report. `triangles` inside the report is only ever updated at a
/// commit point, so degraded `count` reads can answer from it.
struct FrontState {
    gate: Arc<Gate>,
    listener_thread: std::thread::JoinHandle<()>,
    pending: Vec<EdgeOp>,
    oldest: Option<Instant>,
    report: ServeReport,
    /// Rank-crash rejoins this frontend has survived.
    recoveries: u64,
    /// Vertex count, cached so degraded-mode validation needs no
    /// engine.
    vertices: usize,
    /// Retry hint (ms) stamped on `degraded` replies, including the
    /// in-flight request that first observed the crash.
    degraded_retry_ms: u64,
}

/// Binds the listener and starts the accept loop.
fn front_bind(cfg: &ServeConfig) -> FrontState {
    // Pre-seed the per-op latency histograms so exports and the
    // `stats` reply show every op from the first snapshot on.
    for &name in m::SERVE_QUERY_LATENCY {
        tc_metrics::hist_touch(name);
    }
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(&cfg.listen);
    let listener = UnixListener::bind(&cfg.listen).unwrap_or_else(|e| {
        panic!("cannot listen on {}: {e}", cfg.listen.display());
    });
    let gate = Arc::new(Gate::new(cfg.queue));
    let accept_gate = Arc::clone(&gate);
    let listener_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if !accept_gate.open.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { break };
            let gate = Arc::clone(&accept_gate);
            std::thread::spawn(move || handle_conn(stream, gate));
        }
    });
    FrontState {
        gate,
        listener_thread,
        pending: Vec::new(),
        oldest: None,
        report: ServeReport::default(),
        recoveries: 0,
        vertices: 0,
        degraded_retry_ms: 500,
    }
}

/// Stops admission, fails queued jobs, wakes the accept loop with a
/// throwaway connection, reclaims the socket path, and hands back the
/// lifetime report.
fn front_teardown(fs: FrontState, listen: &Path) -> ServeReport {
    fs.gate.close();
    let _ = UnixStream::connect(listen);
    let _ = fs.listener_thread.join();
    let _ = std::fs::remove_file(listen);
    fs.report
}

/// The rank-0 service loop plus its listener/connection threads (the
/// single-session form used outside supervised fleets).
fn frontend(comm: &Comm, engine: &mut Engine, cfg: &ServeConfig) -> MpsResult<ServeReport> {
    let mut fs = front_bind(cfg);
    let res = frontend_session(comm, engine, cfg, &mut fs);
    let report = front_teardown(fs, &cfg.listen);
    res.map(|_| report)
}

/// One session of the rank-0 service loop over an established
/// communicator. Returns `Ok(true)` when a `shutdown` request ended
/// the service; a peer crash surfaces as `Err(MpsError::PeerDown)`
/// with the frontend state intact for degraded serving.
fn frontend_session(
    comm: &Comm,
    engine: &mut Engine,
    cfg: &ServeConfig,
    fs: &mut FrontState,
) -> MpsResult<bool> {
    fs.vertices = engine.num_vertices();
    fs.report.triangles = engine.triangles();
    fs.report.full_recounts = engine.full_recounts();
    let flush_after = Duration::from_millis(cfg.flush_ms);
    let tick_after = Duration::from_millis(cfg.tick_ms);
    let mut last_fleet_cmd = Instant::now();

    // Applies the coalesced buffer as one broadcast batch.
    macro_rules! flush_pending {
        () => {{
            flush_buffer(
                comm,
                engine,
                &mut fs.pending,
                &mut fs.oldest,
                &mut last_fleet_cmd,
                &mut fs.report,
            )?
        }};
    }

    loop {
        let rejected = fs.gate.take_rejected();
        if rejected > 0 {
            tc_metrics::counter_add(m::SERVE_REJECTED_QUERIES, rejected);
            fs.report.rejected += rejected;
        }

        // Aged-buffer and heartbeat deadlines are checked every turn,
        // busy or idle: a sustained stream of purely local queries
        // (`count` needs no collective) must neither starve peers of
        // heartbeats nor let the coalescing buffer age unapplied.
        if fs.oldest.is_some_and(|t| Instant::now() >= t + flush_after) {
            flush_pending!();
        }
        if Instant::now() >= last_fleet_cmd + tick_after {
            comm.bcast(0, &[OP_TICK])?;
            last_fleet_cmd = Instant::now();
        }

        let now = Instant::now();
        let tick_deadline = last_fleet_cmd + tick_after;
        let deadline = match fs.oldest {
            Some(t) => tick_deadline.min(t + flush_after),
            None => tick_deadline,
        };
        let Some(job) = fs.gate.pop(deadline.saturating_duration_since(now)) else {
            continue;
        };

        // Per-query latency: reads are timed from dequeue to reply
        // construction (includes the read barrier and the collective).
        let latency_hist = match &job.req {
            Request::Count => Some(m::SERVE_QUERY_LATENCY_COUNT_NS),
            Request::Support { .. } => Some(m::SERVE_QUERY_LATENCY_SUPPORT_NS),
            Request::Truss { .. } => Some(m::SERVE_QUERY_LATENCY_TRUSS_NS),
            Request::Stats | Request::Metrics => Some(m::SERVE_QUERY_LATENCY_STATS_NS),
            Request::Update { .. } | Request::Flush | Request::Shutdown => None,
        };
        let query_started = Instant::now();
        let Job { req, reply: reply_tx } = job;

        // `None` means a clean shutdown ended the session. Errors are
        // answered below before they propagate: the request that first
        // observes a crash still gets a typed reply — never a hang.
        let outcome = (|| -> MpsResult<Option<String>> {
            Ok(Some(match req {
                Request::Update { insert, delete } => {
                    match validate_edges(engine.num_vertices(), insert.iter().chain(&delete)) {
                        Err(detail) => proto::error_line(proto::ERR_BAD_REQUEST, &detail),
                        Ok(()) => {
                            let queued = insert.len() + delete.len();
                            // Deletes are pushed after inserts so they win
                            // within one request.
                            fs.pending.extend(insert.iter().map(|&(u, v)| EdgeOp::insert(u, v)));
                            fs.pending.extend(delete.iter().map(|&(u, v)| EdgeOp::delete(u, v)));
                            fs.oldest.get_or_insert_with(Instant::now);
                            let depth = fs.pending.len();
                            if depth >= cfg.max_batch {
                                flush_pending!();
                            }
                            proto::ok_queued(queued, depth.min(fs.pending.len()))
                        }
                    }
                }
                Request::Flush => {
                    let applied = flush_pending!();
                    proto::ok_applied(applied, engine.triangles())
                }
                Request::Count => {
                    flush_pending!();
                    fs.report.queries += 1;
                    tc_metrics::counter_add(m::SERVE_QUERIES_COUNT, 1);
                    proto::ok_count(engine.triangles())
                }
                Request::Support { u, v } => {
                    if u == v
                        || u as usize >= engine.num_vertices()
                        || v as usize >= engine.num_vertices()
                    {
                        proto::error_line(
                            proto::ERR_BAD_REQUEST,
                            &format!("({u}, {v}) is not a valid vertex pair"),
                        )
                    } else {
                        flush_pending!();
                        comm.bcast(0, &[OP_SUPPORT, u, v])?;
                        last_fleet_cmd = Instant::now();
                        let r = engine.query_support(comm, u, v)?.expect("rank 0 gets the reply");
                        fs.report.queries += 1;
                        proto::ok_support(r.support, r.present)
                    }
                }
                Request::Truss { k } => {
                    flush_pending!();
                    comm.bcast(0, &[OP_TRUSS, k])?;
                    last_fleet_cmd = Instant::now();
                    let members = engine.query_truss(comm, k)?.expect("rank 0 gets the reply");
                    fs.report.queries += 1;
                    proto::ok_truss(k, &members)
                }
                Request::Stats => {
                    flush_pending!();
                    comm.bcast(0, &[OP_STATS])?;
                    last_fleet_cmd = Instant::now();
                    let s = engine.stats(comm)?;
                    fs.report.queries += 1;
                    proto::ok_stats(
                        &s,
                        fs.pending.len(),
                        fs.recoveries,
                        &query_latency_summary(cfg.metrics.as_ref()),
                    )
                }
                Request::Metrics => {
                    comm.bcast(0, &[OP_METRICS])?;
                    last_fleet_cmd = Instant::now();
                    let text = collect_metrics(comm, cfg.metrics.as_ref())?
                        .expect("rank 0 gets the exposition");
                    fs.report.queries += 1;
                    tc_metrics::counter_add(m::SERVE_QUERIES_STATS, 1);
                    proto::ok_metrics(&text)
                }
                Request::Shutdown => {
                    flush_pending!();
                    comm.bcast(0, &[OP_SHUTDOWN])?;
                    return Ok(None);
                }
            }))
        })();

        let reply = match outcome {
            Ok(Some(reply)) => reply,
            Ok(None) => {
                let _ = reply_tx.send(proto::ok_shutdown());
                fs.report.triangles = engine.triangles();
                fs.report.full_recounts = engine.full_recounts();
                return Ok(true);
            }
            Err(e) => {
                if let MpsError::PeerDown { rank } = &e {
                    tc_metrics::counter_add(m::SERVE_DEGRADED_QUERIES, 1);
                    let _ = reply_tx.send(proto::degraded_line(*rank, fs.degraded_retry_ms));
                }
                return Err(e);
            }
        };
        if let Some(name) = latency_hist {
            tc_metrics::hist_record(name, query_started.elapsed().as_nanos() as u64);
        }
        let _ = reply_tx.send(reply);
    }
}

/// Broadcasts and applies the coalesced buffer as one batch.
/// Returns the number of batches applied (0 when the buffer was
/// empty — no fleet command is issued for nothing).
fn flush_buffer(
    comm: &Comm,
    engine: &mut Engine,
    pending: &mut Vec<EdgeOp>,
    oldest: &mut Option<Instant>,
    last_fleet_cmd: &mut Instant,
    report: &mut ServeReport,
) -> MpsResult<u64> {
    if pending.is_empty() {
        return Ok(0);
    }
    let ops = std::mem::take(pending);
    *oldest = None;
    let mut msg = vec![OP_APPLY];
    encode_ops(&mut msg, &ops);
    let res = comm.bcast(0, &msg).and_then(|_| {
        *last_fleet_cmd = Instant::now();
        engine.apply_batch(comm, &ops)
    });
    match res {
        Ok(_) => {
            report.batches += 1;
            report.triangles = engine.triangles();
            Ok(1)
        }
        Err(e) => {
            // A crash interrupted the batch. Put the ops back: after
            // the rejoin they re-apply, and if the batch already
            // committed anywhere (resync settles that) the net-effect
            // normalization makes the re-apply a no-op — exactly-once
            // either way.
            *pending = ops;
            *oldest = Some(Instant::now());
            Err(e)
        }
    }
}

/// Rejects pairs that cannot name an edge of this graph.
fn validate_edges<'a>(n: usize, edges: impl Iterator<Item = &'a (u32, u32)>) -> Result<(), String> {
    for &(u, v) in edges {
        if u == v {
            return Err(format!("self-loop ({u}, {v})"));
        }
        if u as usize >= n || v as usize >= n {
            return Err(format!("edge ({u}, {v}) out of range for {n} vertices"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip_through_the_wire_encoding() {
        let ops = vec![EdgeOp::insert(3, 7), EdgeOp::delete(1, 2), EdgeOp::insert(0, 9)];
        let mut msg = vec![OP_APPLY];
        encode_ops(&mut msg, &ops);
        assert_eq!(decode_ops(&msg[1..]), ops);
    }

    #[test]
    fn gate_rejects_over_capacity_and_counts_it() {
        let gate = Gate::new(1);
        let (tx, _rx) = mpsc::channel();
        gate.enqueue(Job { req: Request::Count, reply: tx.clone() }).unwrap();
        let err = gate.enqueue(Job { req: Request::Count, reply: tx }).unwrap_err();
        assert_eq!(err, proto::ERR_OVER_CAPACITY);
        assert_eq!(gate.take_rejected(), 1);
        assert_eq!(gate.take_rejected(), 0);
    }

    #[test]
    fn closed_gate_fails_queued_jobs() {
        let gate = Gate::new(4);
        let (tx, rx) = mpsc::channel();
        gate.enqueue(Job { req: Request::Count, reply: tx.clone() }).unwrap();
        gate.close();
        assert!(rx.recv().unwrap().contains(proto::ERR_SHUTTING_DOWN));
        assert_eq!(
            gate.enqueue(Job { req: Request::Count, reply: tx }).unwrap_err(),
            proto::ERR_SHUTTING_DOWN
        );
    }

    #[test]
    fn validate_edges_spots_bad_pairs() {
        assert!(validate_edges(10, [(0u32, 1u32)].iter()).is_ok());
        assert!(validate_edges(10, [(3u32, 3u32)].iter()).is_err());
        assert!(validate_edges(10, [(0u32, 10u32)].iter()).is_err());
    }
}
