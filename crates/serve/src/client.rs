//! Minimal blocking client for the service protocol, used by the
//! `tricount query` CLI and the integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use tc_metrics::json::{self, Value};

use crate::proto::{self, Request};

/// First pause of the connect-retry backoff.
pub const BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Ceiling of the connect-retry backoff.
pub const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Capped exponential backoff with deterministic jitter for the
/// `attempt`-th (1-based) failed connect.
fn retry_backoff(attempt: u32) -> Duration {
    let base = BACKOFF_BASE.as_millis() as u64;
    let exp =
        base.saturating_mul(1u64 << (attempt - 1).min(16)).min(BACKOFF_CAP.as_millis() as u64);
    // splitmix64 of the attempt number: same schedule every run, but
    // decorrelated across attempts.
    let mut z = (attempt as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let jitter = (z ^ (z >> 31)) % (base / 2 + 1);
    Duration::from_millis(exp + jitter)
}

/// One connection to a running service.
#[derive(Debug)]
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to the service socket at `path`.
    pub fn connect(path: &Path) -> io::Result<Client> {
        let writer = UnixStream::connect(path)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Connects, retrying until the socket appears (a service still
    /// cold-starting has not bound it yet) or `timeout` elapses.
    ///
    /// Retries back off exponentially from [`BACKOFF_BASE`] up to
    /// [`BACKOFF_CAP`] with deterministic per-attempt jitter, so a
    /// stampede of clients hammering a respawning service spreads out
    /// instead of synchronizing. Exceeding the overall deadline
    /// returns a typed [`io::ErrorKind::TimedOut`] error naming the
    /// socket, the attempt count, and the last underlying failure.
    pub fn connect_retry(path: &Path, timeout: Duration) -> io::Result<Client> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut attempts = 0u32;
        loop {
            match Self::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    attempts += 1;
                    let pause = retry_backoff(attempts);
                    if Instant::now() + pause >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "no service at {} after {attempts} attempts over {:?} \
                                 (last error: {e})",
                                path.display(),
                                start.elapsed()
                            ),
                        ));
                    }
                    std::thread::sleep(pause);
                }
            }
        }
    }

    /// Sends one raw request line and returns the raw reply line.
    pub fn request_raw(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Sends a typed request and parses the JSON reply. Protocol
    /// failures (`"ok": false`) become `Err` with the typed kind
    /// (for a degraded service, the kind is
    /// [`proto::ERR_DEGRADED`](crate::proto::ERR_DEGRADED)).
    pub fn request(&mut self, req: &Request) -> Result<Value, String> {
        let line =
            self.request_raw(&proto::request_line(req)).map_err(|e| format!("service i/o: {e}"))?;
        let v = json::parse(&line).map_err(|e| format!("malformed reply {line:?}: {e}"))?;
        match v.get("ok") {
            Some(&Value::Bool(true)) => Ok(v),
            _ => {
                let kind =
                    v.get("error").and_then(Value::as_str).unwrap_or("unknown_error").to_string();
                match v.get("detail").and_then(Value::as_str) {
                    Some(d) => Err(format!("{kind}: {d}")),
                    None => Err(kind),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let b1 = retry_backoff(1).as_millis() as u64;
        let b3 = retry_backoff(3).as_millis() as u64;
        let b9 = retry_backoff(9).as_millis() as u64;
        assert!((10..=15).contains(&b1), "b1 = {b1}");
        assert!((40..=45).contains(&b3), "b3 = {b3}");
        assert!((500..=505).contains(&b9), "cap applies, b9 = {b9}");
        assert_eq!(retry_backoff(4), retry_backoff(4));
    }

    #[test]
    fn connect_retry_times_out_with_a_typed_error() {
        let path = std::env::temp_dir().join("tc-client-no-such-socket.sock");
        let err = Client::connect_retry(&path, Duration::from_millis(40)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let msg = err.to_string();
        assert!(msg.contains("attempts"), "error must name the attempt count: {msg}");
        assert!(msg.contains("no-such-socket"), "error must name the socket: {msg}");
    }
}
