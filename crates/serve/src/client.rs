//! Minimal blocking client for the service protocol, used by the
//! `tricount query` CLI and the integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use tc_metrics::json::{self, Value};

use crate::proto::{self, Request};

/// One connection to a running service.
#[derive(Debug)]
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to the service socket at `path`.
    pub fn connect(path: &Path) -> io::Result<Client> {
        let writer = UnixStream::connect(path)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Connects, retrying until the socket appears (a service still
    /// cold-starting has not bound it yet) or `timeout` elapses.
    pub fn connect_retry(path: &Path, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Sends one raw request line and returns the raw reply line.
    pub fn request_raw(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "service closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Sends a typed request and parses the JSON reply. Protocol
    /// failures (`"ok": false`) become `Err` with the typed kind.
    pub fn request(&mut self, req: &Request) -> Result<Value, String> {
        let line =
            self.request_raw(&proto::request_line(req)).map_err(|e| format!("service i/o: {e}"))?;
        let v = json::parse(&line).map_err(|e| format!("malformed reply {line:?}: {e}"))?;
        match v.get("ok") {
            Some(&Value::Bool(true)) => Ok(v),
            _ => {
                let kind =
                    v.get("error").and_then(Value::as_str).unwrap_or("unknown_error").to_string();
                match v.get("detail").and_then(Value::as_str) {
                    Some(d) => Err(format!("{kind}: {d}")),
                    None => Err(kind),
                }
            }
        }
    }
}
