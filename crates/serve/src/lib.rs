//! # tc-serve — always-on triangle analytics service
//!
//! A long-lived server over the 2D counting substrate: load a graph
//! once, keep a rank fleet alive (threads on `LocalFabric`, OS
//! processes on `SocketFabric`), answer analytic queries and absorb
//! streams of edge inserts/deletes **incrementally** — each batch
//! adjusts the triangle count via neighborhood intersections of the
//! touched endpoints only, never a full recount. The full 2D kernel
//! survives as the cold-start path and correctness oracle
//! ([`Engine::recount`]).
//!
//! The crate splits into four layers:
//!
//! - [`engine`] — the per-rank incremental state machine
//!   ([`Engine`]): mutable [`tc_graph::AdjStore`] block, replicated
//!   count, the normalize/intersect/correct delta algorithm, and the
//!   collective query kernels (`support`, `truss`, `stats`);
//! - [`proto`] — the line-delimited JSON request protocol and its
//!   typed error vocabulary;
//! - [`service`] — the rank-0 frontend (Unix-socket listener,
//!   bounded admission queue, batch coalescing, heartbeat ticks) and
//!   the peer command loop, entered through [`serve_rank`]; the
//!   crash-recoverable variant [`serve_fleet`] layers degraded-mode
//!   serving and epoch rejoin on top;
//! - [`client`] — a minimal blocking [`Client`] for CLIs and tests;
//! - [`wal`] — rank-local durability: versioned CRC-checked
//!   checkpoints of the adjacency block plus a write-ahead log of
//!   committed batches ([`Durability`]);
//! - [`supervisor`] — the process supervisor behind
//!   `tricount supervise`: spawn a per-rank fleet, respawn crashed
//!   ranks at a bumped epoch under a bounded restart budget.

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod proto;
pub mod service;
pub mod supervisor;
pub mod wal;

pub use client::Client;
pub use engine::{
    edge_fingerprint, local_fingerprint, Algo, BatchOutcome, EdgeOp, Engine, StatsReply,
    SupportReply,
};
pub use proto::Request;
pub use service::{serve_fleet, serve_rank, FleetConfig, ServeConfig, ServeReport};
pub use supervisor::{supervise, SuperviseOutcome, SupervisorConfig};
pub use wal::{CkptMeta, Durability, WalRecord};
