//! The line-delimited JSON request protocol.
//!
//! One request per line, one reply line per request, over a Unix
//! domain socket. Requests are JSON objects dispatched on `"op"`:
//!
//! | op         | fields                          | reply                         |
//! |------------|---------------------------------|-------------------------------|
//! | `count`    | —                               | `triangles`                   |
//! | `support`  | `u`, `v`                        | `support`, `present`          |
//! | `truss`    | `k`                             | `k`, `edges: [[u,v],…]`       |
//! | `stats`    | —                               | graph + service statistics    |
//! | `metrics`  | —                               | `prometheus` exposition text  |
//! | `update`   | `insert: [[u,v],…]`, `delete: …`| `queued`, `pending`           |
//! | `flush`    | —                               | `applied`, `triangles`        |
//! | `shutdown` | —                               | `{"ok":true}` then EOF        |
//!
//! Every reply carries `"ok"`. Failures are typed:
//! `{"ok":false,"error":"over_capacity"}` is the admission-control
//! rejection, `"bad_request"` (with a `detail`) covers malformed
//! JSON, unknown ops and out-of-range vertices, `"shutting_down"` a
//! request that raced service teardown.

use tc_metrics::json::{self, Value};

/// Typed admission-control rejection.
pub const ERR_OVER_CAPACITY: &str = "over_capacity";
/// Malformed or out-of-range request.
pub const ERR_BAD_REQUEST: &str = "bad_request";
/// The service is tearing down.
pub const ERR_SHUTTING_DOWN: &str = "shutting_down";
/// A fleet rank is down: collective reads cannot run until the
/// supervisor respawns it. The reply carries `rank_down` and a
/// `retry_after_ms` hint — clients back off instead of hanging.
pub const ERR_DEGRADED: &str = "degraded";

/// The typed degraded-mode reply: which rank is down and when a
/// retry is likely to succeed.
pub fn degraded_line(rank_down: usize, retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{ERR_DEGRADED}\",\"rank_down\":{rank_down},\"retry_after_ms\":{retry_after_ms}}}"
    )
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Current global triangle count.
    Count,
    /// Common-neighbour count of one vertex pair.
    Support {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Membership of the `k`-truss.
    Truss {
        /// Truss parameter (an edge belongs iff its trussness ≥ `k`).
        k: u32,
    },
    /// Graph and service statistics.
    Stats,
    /// Prometheus exposition of the live metrics registries.
    Metrics,
    /// A batch of edge mutations to coalesce and apply.
    Update {
        /// Edges to insert.
        insert: Vec<(u32, u32)>,
        /// Edges to delete (win over inserts of the same edge in the
        /// same request).
        delete: Vec<(u32, u32)>,
    },
    /// Apply all coalesced updates now.
    Flush,
    /// Stop the service.
    Shutdown,
}

fn field_u32(v: &Value, key: &str) -> Result<u32, String> {
    let raw = v
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))?;
    u32::try_from(raw).map_err(|_| format!("field '{key}' out of u32 range"))
}

fn pair_list(v: &Value, key: &str) -> Result<Vec<(u32, u32)>, String> {
    let Some(items) = v.get(key) else {
        return Ok(Vec::new());
    };
    let arr = items.as_arr().ok_or_else(|| format!("field '{key}' is not an array"))?;
    let mut out = Vec::with_capacity(arr.len().min(tc_graph::adj::PREALLOC_CAP));
    for item in arr {
        let pair = item
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("field '{key}' entries must be two-element [u, v] arrays"))?;
        let mut uv = [0u32; 2];
        for (slot, val) in uv.iter_mut().zip(pair) {
            let raw = val.as_u64().ok_or_else(|| format!("non-integer vertex in '{key}'"))?;
            *slot = u32::try_from(raw).map_err(|_| format!("vertex in '{key}' out of range"))?;
        }
        out.push((uv[0], uv[1]));
    }
    Ok(out)
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line)?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field 'op'".to_string())?;
    match op {
        "count" => Ok(Request::Count),
        "support" => Ok(Request::Support { u: field_u32(&v, "u")?, v: field_u32(&v, "v")? }),
        "truss" => Ok(Request::Truss { k: field_u32(&v, "k")? }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "update" => {
            let insert = pair_list(&v, "insert")?;
            let delete = pair_list(&v, "delete")?;
            if insert.is_empty() && delete.is_empty() {
                return Err("update carries neither 'insert' nor 'delete' edges".to_string());
            }
            Ok(Request::Update { insert, delete })
        }
        "flush" => Ok(Request::Flush),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Serializes a request back to its wire line (client side).
pub fn request_line(req: &Request) -> String {
    fn edges(out: &mut String, key: &str, list: &[(u32, u32)]) {
        out.push_str(&format!(",\"{key}\":["));
        for (i, (u, v)) in list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{u},{v}]"));
        }
        out.push(']');
    }
    match req {
        Request::Count => "{\"op\":\"count\"}".to_string(),
        Request::Support { u, v } => format!("{{\"op\":\"support\",\"u\":{u},\"v\":{v}}}"),
        Request::Truss { k } => format!("{{\"op\":\"truss\",\"k\":{k}}}"),
        Request::Stats => "{\"op\":\"stats\"}".to_string(),
        Request::Metrics => "{\"op\":\"metrics\"}".to_string(),
        Request::Update { insert, delete } => {
            let mut out = String::from("{\"op\":\"update\"");
            if !insert.is_empty() {
                edges(&mut out, "insert", insert);
            }
            if !delete.is_empty() {
                edges(&mut out, "delete", delete);
            }
            out.push('}');
            out
        }
        Request::Flush => "{\"op\":\"flush\"}".to_string(),
        Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
    }
}

/// A typed failure reply.
pub fn error_line(kind: &str, detail: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":\"");
    json::escape_into(&mut out, kind);
    if !detail.is_empty() {
        out.push_str("\",\"detail\":\"");
        json::escape_into(&mut out, detail);
    }
    out.push_str("\"}");
    out
}

/// Reply to `count`.
pub fn ok_count(triangles: u64) -> String {
    format!("{{\"ok\":true,\"triangles\":{triangles}}}")
}

/// Reply to `support`.
pub fn ok_support(support: u64, present: bool) -> String {
    format!("{{\"ok\":true,\"support\":{support},\"present\":{present}}}")
}

/// Reply to `truss`.
pub fn ok_truss(k: u32, edges: &[(u32, u32)]) -> String {
    let mut out = format!("{{\"ok\":true,\"k\":{k},\"edges\":[");
    for (i, (u, v)) in edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{u},{v}]"));
    }
    out.push_str("]}");
    out
}

/// Per-op query-latency summary carried in the `stats` reply: sample
/// count plus the log₂-bucket brackets of the p50/p99 latencies
/// (nanoseconds). Present — and zero — for every op even before its
/// first query, matching the present-and-zero discipline of the
/// `serve.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// Queries measured.
    pub count: u64,
    /// Bracket around the median latency.
    pub p50: (u64, u64),
    /// Bracket around the 99th-percentile latency.
    pub p99: (u64, u64),
}

/// Reply to `stats`. `latency` lists one `(op, summary)` per query
/// op, in reply order; `recoveries` counts the rank-crash rejoins the
/// frontend has survived (0 outside supervised fleets).
pub fn ok_stats(
    s: &crate::engine::StatsReply,
    pending: usize,
    recoveries: u64,
    latency: &[(&str, LatencyStat)],
) -> String {
    let mut out = format!(
        "{{\"ok\":true,\"vertices\":{},\"edges\":{},\"triangles\":{},\"batches\":{},\"full_recounts\":{},\"pending\":{pending},\"recoveries\":{recoveries},\"query_latency_ns\":{{",
        s.vertices, s.edges, s.triangles, s.batches, s.full_recounts
    );
    for (i, (op, l)) in latency.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{op}\":{{\"n\":{},\"p50\":[{},{}],\"p99\":[{},{}]}}",
            l.count, l.p50.0, l.p50.1, l.p99.0, l.p99.1
        ));
    }
    out.push_str("}}");
    out
}

/// Reply to `metrics`: the Prometheus exposition as a JSON string.
pub fn ok_metrics(prometheus: &str) -> String {
    let mut out = String::from("{\"ok\":true,\"prometheus\":\"");
    json::escape_into(&mut out, prometheus);
    out.push_str("\"}");
    out
}

/// Reply to `update`: ops accepted into the coalescing buffer.
pub fn ok_queued(queued: usize, pending: usize) -> String {
    format!("{{\"ok\":true,\"queued\":{queued},\"pending\":{pending}}}")
}

/// Reply to `flush` (and the read-barrier form of `count`).
pub fn ok_applied(applied: u64, triangles: u64) -> String {
    format!("{{\"ok\":true,\"applied\":{applied},\"triangles\":{triangles}}}")
}

/// Reply to `shutdown`.
pub fn ok_shutdown() -> String {
    "{\"ok\":true,\"stopping\":true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request("{\"op\":\"count\"}").unwrap(), Request::Count);
        assert_eq!(
            parse_request("{\"op\":\"support\",\"u\":3,\"v\":9}").unwrap(),
            Request::Support { u: 3, v: 9 }
        );
        assert_eq!(parse_request("{\"op\":\"truss\",\"k\":4}").unwrap(), Request::Truss { k: 4 });
        assert_eq!(parse_request("{\"op\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(parse_request("{\"op\":\"metrics\"}").unwrap(), Request::Metrics);
        assert_eq!(parse_request("{\"op\":\"flush\"}").unwrap(), Request::Flush);
        assert_eq!(parse_request("{\"op\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("{\"op\":\"update\",\"insert\":[[0,1],[2,3]],\"delete\":[[4,5]]}")
                .unwrap(),
            Request::Update { insert: vec![(0, 1), (2, 3)], delete: vec![(4, 5)] }
        );
    }

    #[test]
    fn request_lines_round_trip() {
        for req in [
            Request::Count,
            Request::Support { u: 1, v: 2 },
            Request::Truss { k: 3 },
            Request::Stats,
            Request::Metrics,
            Request::Update { insert: vec![(0, 1)], delete: vec![(1, 2), (3, 4)] },
            Request::Flush,
            Request::Shutdown,
        ] {
            assert_eq!(parse_request(&request_line(&req)).unwrap(), req);
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"no_op\":1}").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(parse_request("{\"op\":\"support\",\"u\":1}").is_err());
        assert!(parse_request("{\"op\":\"support\",\"u\":1,\"v\":99999999999}").is_err());
        assert!(parse_request("{\"op\":\"update\"}").is_err());
        assert!(parse_request("{\"op\":\"update\",\"insert\":[[1]]}").is_err());
    }

    #[test]
    fn error_lines_are_typed() {
        assert_eq!(error_line(ERR_OVER_CAPACITY, ""), "{\"ok\":false,\"error\":\"over_capacity\"}");
        let with_detail = error_line(ERR_BAD_REQUEST, "vertex 9 out of range");
        assert!(with_detail.contains("\"detail\":\"vertex 9 out of range\""));
    }

    #[test]
    fn degraded_line_names_the_down_rank_and_a_retry_hint() {
        let line = degraded_line(3, 500);
        assert_eq!(
            line,
            "{\"ok\":false,\"error\":\"degraded\",\"rank_down\":3,\"retry_after_ms\":500}"
        );
        let v = tc_metrics::json::parse(&line).unwrap();
        assert_eq!(v.get("error").and_then(Value::as_str), Some(ERR_DEGRADED));
        assert_eq!(v.get("retry_after_ms").and_then(Value::as_u64), Some(500));
    }
}
