//! The fleet supervisor: spawn, watch, respawn.
//!
//! One supervisor process owns a fleet of per-rank `serve` child
//! processes connected over the socket fabric. It is the only writer
//! of the fleet **epoch file** (`<state_dir>/epoch`): before every
//! (re)spawn it atomically bumps the epoch, which is the signal
//! survivors poll to leave degraded mode and rejoin at the new
//! handshake epoch ([`crate::service::serve_fleet`]).
//!
//! Policy:
//!
//! - rank 0 exiting ends the fleet (cleanly after a `shutdown`
//!   request, or loudly with its exit code) — the frontend owns the
//!   client socket, so there is nothing left to serve;
//! - a non-zero rank exiting **cleanly** (code 0) is shutdown in
//!   progress, not a crash;
//! - a non-zero rank dying is charged against a bounded restart
//!   budget; within budget the rank is respawned with the same rank
//!   id at the bumped epoch after an exponential backoff with
//!   deterministic jitter, past it the whole fleet is killed and the
//!   fleet declared dead — loudly, never silently;
//! - `MPS_CHAOS_CRASH_*` is stripped from respawned children, so an
//!   injected process crash fires exactly once instead of turning
//!   into a crash loop (kill the respawn by hand — or exhaust the
//!   budget with `--max-restarts 0` — to test the loud path).
//!
//! Each child's stdout/stderr is appended to
//! `<state_dir>/rank-<r>.log` and its pid recorded in
//! `<state_dir>/rank-<r>.pid`, so harnesses (and the CI crash job)
//! can SIGKILL a chosen rank and postmortems have per-rank logs.

use std::fs::{self, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tc_mps::{CHAOS_CRASH_AT_ENV, CHAOS_CRASH_RANK_ENV};

/// Name of the fleet epoch file inside the state directory.
pub const EPOCH_FILE: &str = "epoch";

/// Reads the fleet epoch (0 when the file does not exist yet).
///
/// # Panics
///
/// Panics on unreadable or malformed content — a scribbled-over
/// epoch file means the fleet's coordination substrate is gone.
pub fn read_epoch(state_dir: &Path) -> u64 {
    let path = state_dir.join(EPOCH_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => text.trim().parse::<u64>().unwrap_or_else(|_| {
            panic!("epoch file {} holds {:?}, not a u64", path.display(), text)
        }),
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => panic!("cannot read epoch file {}: {e}", path.display()),
    }
}

/// Atomically (temp file + rename) publishes a new fleet epoch.
pub fn write_epoch(state_dir: &Path, epoch: u64) -> io::Result<()> {
    let tmp = state_dir.join("epoch.tmp");
    fs::write(&tmp, format!("{epoch}\n"))?;
    fs::rename(tmp, state_dir.join(EPOCH_FILE))
}

/// What to launch and how hard to try keeping it alive.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The binary to spawn (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments of the per-rank serve command, **without** `--rank`
    /// (the supervisor appends it). Must include `--state-dir` and
    /// `--peers` so children find the fleet.
    pub serve_args: Vec<String>,
    /// Fleet state directory (epoch file, logs, pid files).
    pub state_dir: PathBuf,
    /// Fleet size.
    pub ranks: usize,
    /// Total crash budget across the fleet's lifetime; the
    /// `max_restarts + 1`-th crash declares the fleet dead.
    pub max_restarts: u32,
    /// Base of the exponential respawn backoff.
    pub backoff_base_ms: u64,
    /// Ceiling of the respawn backoff.
    pub backoff_cap_ms: u64,
}

/// How a supervised fleet ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuperviseOutcome {
    /// Rank 0 exited; the fleet was torn down. Carries rank 0's exit
    /// code (0 after a clean `shutdown`).
    FrontendExited(i32),
    /// The restart budget ran out on yet another crash of `rank`.
    BudgetExhausted {
        /// The rank whose death overflowed the budget.
        rank: usize,
        /// Crashes absorbed before giving up.
        restarts: u32,
    },
}

/// The endpoint list a supervised fleet uses: one Unix socket per
/// rank inside the state directory.
pub fn fleet_endpoints(state_dir: &Path, ranks: usize) -> Vec<String> {
    (0..ranks).map(|r| state_dir.join(format!("fab-{r}.sock")).display().to_string()).collect()
}

/// splitmix64 — deterministic jitter so respawns of a thundering
/// fleet don't synchronize, without any time-seeded randomness.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential backoff with deterministic jitter for the `nth`
/// (1-based) restart.
fn backoff(cfg: &SupervisorConfig, nth: u32) -> Duration {
    let base = cfg.backoff_base_ms.max(1);
    let exp = base.saturating_mul(1u64 << (nth - 1).min(16)).min(cfg.backoff_cap_ms.max(base));
    let jitter = splitmix64(nth as u64) % (base / 2 + 1);
    Duration::from_millis(exp + jitter)
}

struct Slot {
    child: Option<Child>,
}

fn spawn_rank(cfg: &SupervisorConfig, rank: usize, respawn: bool) -> io::Result<Child> {
    let log = OpenOptions::new()
        .create(true)
        .append(true)
        .open(cfg.state_dir.join(format!("rank-{rank}.log")))?;
    let mut cmd = Command::new(&cfg.program);
    cmd.args(&cfg.serve_args)
        .arg("--rank")
        .arg(rank.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::from(log.try_clone()?))
        .stderr(Stdio::from(log));
    if respawn {
        cmd.env_remove(CHAOS_CRASH_RANK_ENV).env_remove(CHAOS_CRASH_AT_ENV);
    }
    let child = cmd.spawn()?;
    fs::write(cfg.state_dir.join(format!("rank-{rank}.pid")), format!("{}\n", child.id()))?;
    Ok(child)
}

fn kill_all(slots: &mut [Slot]) {
    for slot in slots.iter_mut() {
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.child = None;
    }
}

/// Runs the fleet until rank 0 exits or the restart budget is gone.
pub fn supervise(cfg: &SupervisorConfig) -> io::Result<SuperviseOutcome> {
    assert!(cfg.ranks >= 1, "a fleet needs at least one rank");
    fs::create_dir_all(&cfg.state_dir)?;
    // Clear stale fabric sockets from a previous fleet so children
    // can rebind.
    for ep in fleet_endpoints(&cfg.state_dir, cfg.ranks) {
        let _ = fs::remove_file(&ep);
    }
    write_epoch(&cfg.state_dir, 0)?;

    let mut slots: Vec<Slot> = Vec::with_capacity(cfg.ranks);
    for rank in 0..cfg.ranks {
        slots.push(Slot { child: Some(spawn_rank(cfg, rank, false)?) });
    }
    let mut epoch = 0u64;
    let mut restarts = 0u32;

    loop {
        for rank in 0..cfg.ranks {
            let status = match slots[rank].child.as_mut() {
                Some(child) => child.try_wait()?,
                None => None,
            };
            let Some(status) = status else { continue };
            slots[rank].child = None;

            if rank == 0 {
                // The frontend is gone; the fleet is over either way.
                let code = status.code().unwrap_or(1);
                kill_all(&mut slots);
                return Ok(SuperviseOutcome::FrontendExited(code));
            }
            if status.success() {
                // Clean exit: shutdown is propagating through the
                // fleet; rank 0 will follow.
                continue;
            }

            restarts += 1;
            if restarts > cfg.max_restarts {
                eprintln!(
                    "supervisor: rank {rank} died ({status}) and the restart budget \
                     ({}) is exhausted; declaring the fleet dead",
                    cfg.max_restarts
                );
                kill_all(&mut slots);
                return Ok(SuperviseOutcome::BudgetExhausted { rank, restarts });
            }
            epoch += 1;
            let pause = backoff(cfg, restarts);
            eprintln!(
                "supervisor: rank {rank} died ({status}); respawn {restarts}/{} at epoch \
                 {epoch} after {pause:?}",
                cfg.max_restarts
            );
            std::thread::sleep(pause);
            // Publish the epoch only now, after the backoff: rank 0
            // keeps serving degraded replies through the whole pause
            // and starts reconnecting when the respawn is imminent.
            // The epoch must land before the spawn so the new child
            // never reads the stale value.
            write_epoch(&cfg.state_dir, epoch)?;
            slots[rank].child = Some(spawn_rank(cfg, rank, true)?);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Convenience for harnesses: the pid recorded for `rank`, if any.
pub fn read_pid(state_dir: &Path, rank: usize) -> Option<u32> {
    fs::read_to_string(state_dir.join(format!("rank-{rank}.pid")))
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// Blocks until `rank`'s recorded pid changes away from `old` (a
/// respawn happened) or the deadline passes. Test/harness helper.
pub fn wait_for_respawn(state_dir: &Path, rank: usize, old: u32, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if read_pid(state_dir, rank).is_some_and(|p| p != old) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_file_round_trips_and_defaults_to_zero() {
        let dir = std::env::temp_dir().join(format!("tc-sup-epoch-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_epoch(&dir), 0);
        write_epoch(&dir, 7).unwrap();
        assert_eq!(read_epoch(&dir), 7);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let cfg = SupervisorConfig {
            program: PathBuf::from("true"),
            serve_args: vec![],
            state_dir: PathBuf::from("/tmp"),
            ranks: 2,
            max_restarts: 8,
            backoff_base_ms: 100,
            backoff_cap_ms: 800,
        };
        let b1 = backoff(&cfg, 1).as_millis() as u64;
        let b2 = backoff(&cfg, 2).as_millis() as u64;
        let b5 = backoff(&cfg, 5).as_millis() as u64;
        assert!((100..=150).contains(&b1), "b1 = {b1}");
        assert!((200..=250).contains(&b2), "b2 = {b2}");
        assert!((800..=850).contains(&b5), "cap applies, b5 = {b5}");
        // Deterministic: same inputs, same jitter.
        assert_eq!(backoff(&cfg, 3), backoff(&cfg, 3));
    }

    #[test]
    fn fleet_endpoints_are_per_rank_sockets() {
        let eps = fleet_endpoints(Path::new("/tmp/fleet"), 3);
        assert_eq!(eps.len(), 3);
        assert!(eps[2].ends_with("fab-2.sock"));
        assert!(eps[0].contains('/'), "endpoint must parse as a Unix socket path");
    }
}
