//! 1D space-efficient push-based triangle counting (Arifuzzaman et
//! al.'s "Surrogate" approach).
//!
//! Only one copy of the graph exists across all ranks: each rank
//! stores the rows of its disjoint 1D block and nothing else. For
//! every intersection that needs a remote row, the row's *owner*
//! pushes it to the rank that needs it, and the receiver consumes each
//! pushed row immediately without retaining it — minimal memory, but
//! "this leads to high communication overheads" (§4), which is the
//! regime the paper's Table 6 comparison probes.

use std::time::Instant;

use tc_graph::edgelist::EdgeList;
use tc_graph::vset::VertexSet;
use tc_graph::Block1D;
use tc_metrics::names as mnames;
use tc_mps::{MpsResult, Observe, Universe};
use tc_trace::{names, Category, TraceHandle};

use crate::aop1d::Dist1dResult;
use crate::serial::Oriented;

/// Runs the push-based counter on `p` ranks.
pub fn count_push1d(el: &EdgeList, p: usize) -> Dist1dResult {
    match try_count_push1d(el, p) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_push1d`]: runtime failures come back as
/// [`tc_mps::MpsError`] instead of a panic.
pub fn try_count_push1d(el: &EdgeList, p: usize) -> MpsResult<Dist1dResult> {
    try_count_push1d_traced(el, p, None)
}

/// [`try_count_push1d`] with an optional trace session.
pub fn try_count_push1d_traced(
    el: &EdgeList,
    p: usize,
    trace: Option<&TraceHandle>,
) -> MpsResult<Dist1dResult> {
    try_count_push1d_observed(el, p, Observe::trace(trace))
}

/// [`try_count_push1d`] with optional trace and metrics sessions.
pub fn try_count_push1d_observed(
    el: &EdgeList,
    p: usize,
    obs: Observe<'_>,
) -> MpsResult<Dist1dResult> {
    let g = Oriented::build(el);
    let n = g.num_vertices();
    let block = Block1D::new(n, p);

    let (outs, stats) = Universe::try_run_config(p, &obs.to_config(), |comm| {
        let rank = comm.rank();
        let (lo, hi) = block.range(rank);

        // ---- push phase: same wire as AOP's setup, but receivers
        // will consume rather than store ----
        comm.barrier()?;
        let setup_span = tc_trace::span(names::BASE_SETUP, Category::Phase);
        let t0 = Instant::now();
        let mut sends: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
        let mut stamp = vec![usize::MAX; p];
        for i in lo as u32..hi as u32 {
            let ai = g.upper(i);
            for &j in ai {
                let dst = block.owner(j);
                if dst != rank && stamp[dst] != i as usize {
                    stamp[dst] = i as usize;
                    let buf = &mut sends[dst];
                    buf.push(i);
                    buf.push(ai.len() as u32);
                    buf.extend_from_slice(ai);
                }
            }
        }
        let recvd = comm.alltoallv(&sends)?;
        drop(sends);
        comm.barrier()?;
        drop(setup_span);
        let setup = t0.elapsed();
        tc_metrics::counter_add(mnames::BASE_SETUP_NS, setup.as_nanos() as u64);

        // ---- counting: local tasks + streamed remote rows ----
        let count_span = tc_trace::span(names::BASE_COUNT, Category::Phase);
        let t1 = Instant::now();
        let max_row = comm.allreduce_max_u64(
            (lo as u32..hi as u32).map(|v| g.upper(v).len()).max().unwrap_or(0) as u64,
        )? as usize;
        let mut set = VertexSet::with_capacity(max_row);
        let mut local = 0u64;

        // Tasks (j, i) with both endpoints owned: classic map reuse.
        for j in lo as u32..hi as u32 {
            let aj = g.upper(j);
            let lj = g.lower(j);
            if aj.is_empty() || lj.is_empty() {
                continue;
            }
            set.clear();
            set.insert_all(aj);
            for &i in lj {
                if block.owner(i) == rank {
                    local += set.count_hits(g.upper(i));
                }
            }
        }
        // Remote rows: hash each pushed A(i) once, probe with each
        // owned A(j) for j ∈ A(i); the row is dropped right after.
        for msg in &recvd {
            let mut at = 0;
            while at < msg.len() {
                let len = msg[at + 1] as usize;
                let ai = &msg[at + 2..at + 2 + len];
                set.clear();
                set.insert_all(ai);
                for &j in ai {
                    if block.owner(j) == rank {
                        local += set.count_hits(g.upper(j));
                    }
                }
                at += 2 + len;
            }
        }
        let triangles = comm.allreduce_sum_u64(local)?;
        comm.barrier()?;
        drop(count_span);
        let count = t1.elapsed();
        tc_metrics::counter_add(mnames::BASE_COUNT_NS, count.as_nanos() as u64);
        Ok((triangles, setup, count))
    })?;

    let triangles = outs[0].0;
    assert!(outs.iter().all(|o| o.0 == triangles));
    Ok(Dist1dResult {
        triangles,
        setup: outs.iter().map(|o| o.1).max().unwrap(),
        count: outs.iter().map(|o| o.2).max().unwrap(),
        bytes_sent: stats.iter().map(|s| s.bytes_sent).sum(),
        max_ghost_entries: 0, // nothing is retained — the point of the method
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::count_default;
    use tc_gen::graph500;

    #[test]
    fn matches_serial() {
        let el = graph500(8, 13).simplify();
        let expect = count_default(&el);
        for p in [1, 2, 4, 7] {
            assert_eq!(count_push1d(&el, p).triangles, expect, "p={p}");
        }
    }

    #[test]
    fn intersection_symmetry_still_counts_k_above_j() {
        // Probing A(j) against hashed A(i) counts |A(i) ∩ A(j)| — the
        // same quantity as the local orientation, just with the roles
        // swapped. A worked example: path + triangle combinations.
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]).simplify();
        let expect = count_default(&el);
        assert_eq!(expect, 2);
        for p in [2, 3, 5] {
            assert_eq!(count_push1d(&el, p).triangles, expect, "p={p}");
        }
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_push1d(&EdgeList::empty(9), 4).triangles, 0);
    }
}
