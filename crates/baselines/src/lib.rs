//! # tc-baselines — comparator algorithms
//!
//! Every algorithm the paper measures against, re-implemented on the
//! same substrates so comparisons are apples-to-apples:
//!
//! - [`serial`] — the §3.1 reference kernels (list/map × ⟨i,j,k⟩/⟨j,i,k⟩).
//! - [`shared`] — multithreaded shared-memory map-based counting
//!   (the paper's own prior work, ref. [21]).
//! - [`aop1d`] — 1D communication-avoiding counting with overlapping
//!   partitions (Arifuzzaman et al., "AOP").
//! - [`push1d`] — 1D space-efficient push-based counting
//!   (Arifuzzaman et al., "Surrogate").
//! - [`psp1d`] — 1D blocked push-based counting (Kanewala et al.,
//!   "OPT-PSP").
//! - [`wedge`] — Havoq-style 2-core + directed-wedge closure checking
//!   (Pearce et al.).

#![warn(missing_docs)]

pub mod aop1d;
pub mod psp1d;
pub mod push1d;
pub mod serial;
pub mod shared;
pub mod wedge;

pub use aop1d::{
    count_aop1d, try_count_aop1d, try_count_aop1d_observed, try_count_aop1d_traced, Dist1dResult,
};
pub use psp1d::{count_psp1d, try_count_psp1d, try_count_psp1d_observed, try_count_psp1d_traced};
pub use push1d::{
    count_push1d, try_count_push1d, try_count_push1d_observed, try_count_push1d_traced,
};
pub use shared::count_shared;
pub use wedge::{
    count_wedge, try_count_wedge, try_count_wedge_observed, try_count_wedge_traced, WedgeResult,
};
