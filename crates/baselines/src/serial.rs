//! Sequential triangle-counting kernels (paper §3.1).
//!
//! These are the reference algorithms everything else is validated
//! against: both enumeration rules (⟨i,j,k⟩ and ⟨j,i,k⟩) crossed with
//! both intersection methods (sorted-list merge and hash map). All
//! kernels run on a degree-ordered *orientation* of the graph — the
//! upper-triangular adjacency `A(v) = {w ∈ Adj(v) : w > v}` after
//! non-decreasing-degree relabeling — so every triangle `i < j < k` is
//! counted exactly once.

use tc_graph::degree::relabel_by_degree;
use tc_graph::edgelist::{EdgeList, VertexId};
use tc_graph::vset::{sorted_intersection_count, VertexSet};

/// Which vertex enumeration rule drives the outer loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enumeration {
    /// ⟨i,j,k⟩: iterate row-wise over `U`, hash/merge the *smaller*
    /// endpoint's list.
    Ijk,
    /// ⟨j,i,k⟩: iterate column-wise over `U` (row-wise over `L`),
    /// hash the *larger* endpoint's list — the paper's preferred
    /// scheme (§3.1, §7.3: 72.8 % faster).
    Jik,
}

/// Which set-intersection method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intersection {
    /// Joint traversal of two sorted lists.
    List,
    /// Hash one list, probe with the other (reusing the map across
    /// the outer vertex's tasks).
    Map,
}

/// Degree-ordered orientation of a simple undirected graph.
///
/// `upper` rows hold `A(v)` (neighbours with larger label), `lower`
/// rows hold the reverse orientation; both ascending. Labels are the
/// *degree-ordered* ids; `perm[old] = new` maps back to input ids.
#[derive(Debug, Clone)]
pub struct Oriented {
    n: usize,
    upper_xadj: Vec<usize>,
    upper_adj: Vec<VertexId>,
    lower_xadj: Vec<usize>,
    lower_adj: Vec<VertexId>,
    perm: Vec<VertexId>,
}

impl Oriented {
    /// Degree-orders and orients a simplified edge list.
    pub fn build(el: &EdgeList) -> Self {
        assert!(el.is_simple(), "orientation requires a simplified edge list");
        let (ordered, perm) = relabel_by_degree(el.clone());
        let n = ordered.num_vertices;
        let mut up_deg = vec![0usize; n];
        let mut lo_deg = vec![0usize; n];
        for &(u, v) in &ordered.edges {
            up_deg[u as usize] += 1; // u < v by canonical form
            lo_deg[v as usize] += 1;
        }
        let prefix = |deg: &[usize]| {
            let mut x = Vec::with_capacity(n + 1);
            x.push(0usize);
            let mut acc = 0;
            for &d in deg {
                acc += d;
                x.push(acc);
            }
            x
        };
        let upper_xadj = prefix(&up_deg);
        let lower_xadj = prefix(&lo_deg);
        let mut upper_adj = vec![0 as VertexId; *upper_xadj.last().unwrap()];
        let mut lower_adj = vec![0 as VertexId; *lower_xadj.last().unwrap()];
        let mut ucur = upper_xadj[..n].to_vec();
        let mut lcur = lower_xadj[..n].to_vec();
        for &(u, v) in &ordered.edges {
            upper_adj[ucur[u as usize]] = v;
            ucur[u as usize] += 1;
            lower_adj[lcur[v as usize]] = u;
            lcur[v as usize] += 1;
        }
        // Canonical edge order makes upper rows ascending already, and
        // lower rows ascending too (edges sorted by (u,v) insert u's in
        // increasing u per row v). Assert in debug builds.
        debug_assert!((0..n)
            .all(|v| upper_adj[upper_xadj[v]..upper_xadj[v + 1]].windows(2).all(|w| w[0] < w[1])));
        debug_assert!((0..n)
            .all(|v| lower_adj[lower_xadj[v]..lower_xadj[v + 1]].windows(2).all(|w| w[0] < w[1])));
        Self { n, upper_xadj, upper_adj, lower_xadj, lower_adj, perm }
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Upper row `A(v)` in degree-ordered labels.
    pub fn upper(&self, v: VertexId) -> &[VertexId] {
        &self.upper_adj[self.upper_xadj[v as usize]..self.upper_xadj[v as usize + 1]]
    }

    /// Lower row of `v` in degree-ordered labels.
    pub fn lower(&self, v: VertexId) -> &[VertexId] {
        &self.lower_adj[self.lower_xadj[v as usize]..self.lower_xadj[v as usize + 1]]
    }

    /// `perm[old] = new` degree-order permutation.
    pub fn perm(&self) -> &[VertexId] {
        &self.perm
    }

    /// Longest upper row (sizes the intersection hash map).
    pub fn max_upper_degree(&self) -> usize {
        (0..self.n).map(|v| self.upper_xadj[v + 1] - self.upper_xadj[v]).max().unwrap_or(0)
    }
}

fn count_list_ijk(g: &Oriented) -> u64 {
    let mut total = 0u64;
    for i in 0..g.n as VertexId {
        let ai = g.upper(i);
        for &j in ai {
            total += sorted_intersection_count(ai, g.upper(j));
        }
    }
    total
}

fn count_list_jik(g: &Oriented) -> u64 {
    let mut total = 0u64;
    for j in 0..g.n as VertexId {
        let aj = g.upper(j);
        if aj.is_empty() {
            continue;
        }
        for &i in g.lower(j) {
            total += sorted_intersection_count(g.upper(i), aj);
        }
    }
    total
}

fn count_map_ijk(g: &Oriented) -> u64 {
    let mut set = VertexSet::with_capacity(g.max_upper_degree());
    let mut total = 0u64;
    for i in 0..g.n as VertexId {
        let ai = g.upper(i);
        if ai.len() < 2 {
            continue; // cannot close a triangle from this row
        }
        set.clear();
        set.insert_all(ai);
        for &j in ai {
            total += set.count_hits(g.upper(j));
        }
    }
    total
}

fn count_map_jik(g: &Oriented) -> u64 {
    let mut set = VertexSet::with_capacity(g.max_upper_degree());
    let mut total = 0u64;
    for j in 0..g.n as VertexId {
        let aj = g.upper(j);
        let lj = g.lower(j);
        if aj.is_empty() || lj.is_empty() {
            continue;
        }
        set.clear();
        set.insert_all(aj);
        for &i in lj {
            total += set.count_hits(g.upper(i));
        }
    }
    total
}

/// Counts triangles of a prepared orientation with the chosen kernel.
pub fn count_oriented(g: &Oriented, e: Enumeration, m: Intersection) -> u64 {
    match (e, m) {
        (Enumeration::Ijk, Intersection::List) => count_list_ijk(g),
        (Enumeration::Ijk, Intersection::Map) => count_map_ijk(g),
        (Enumeration::Jik, Intersection::List) => count_list_jik(g),
        (Enumeration::Jik, Intersection::Map) => count_map_jik(g),
    }
}

/// One-shot count on an edge list (orders + orients internally).
pub fn count(el: &EdgeList, e: Enumeration, m: Intersection) -> u64 {
    count_oriented(&Oriented::build(el), e, m)
}

/// The paper's preferred serial configuration: map-based ⟨j,i,k⟩.
pub fn count_default(el: &EdgeList) -> u64 {
    count(el, Enumeration::Jik, Intersection::Map)
}

/// Counts triangles *per input vertex* (each triangle credits all
/// three corners), plus the total. Drives the clustering-coefficient
/// example.
pub fn per_vertex_counts(el: &EdgeList) -> (u64, Vec<u64>) {
    let g = Oriented::build(el);
    let mut per_new = vec![0u64; g.n];
    let mut set = VertexSet::with_capacity(g.max_upper_degree());
    let mut total = 0u64;
    for j in 0..g.n as VertexId {
        let aj = g.upper(j);
        let lj = g.lower(j);
        if aj.is_empty() || lj.is_empty() {
            continue;
        }
        set.clear();
        set.insert_all(aj);
        for &i in lj {
            for &k in g.upper(i) {
                if set.contains(k) {
                    total += 1;
                    per_new[i as usize] += 1;
                    per_new[j as usize] += 1;
                    per_new[k as usize] += 1;
                }
            }
        }
    }
    // Translate back to input labels: perm[old] = new.
    let mut per_old = vec![0u64; g.n];
    for (old, &new) in g.perm.iter().enumerate() {
        per_old[old] = per_new[new as usize];
    }
    (total, per_old)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants(el: &EdgeList) -> Vec<u64> {
        [
            (Enumeration::Ijk, Intersection::List),
            (Enumeration::Ijk, Intersection::Map),
            (Enumeration::Jik, Intersection::List),
            (Enumeration::Jik, Intersection::Map),
        ]
        .iter()
        .map(|&(e, m)| count(el, e, m))
        .collect()
    }

    #[test]
    fn triangle_graph() {
        let el = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify();
        assert_eq!(all_variants(&el), vec![1, 1, 1, 1]);
    }

    #[test]
    fn k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        let el = EdgeList::new(5, edges).simplify();
        assert_eq!(all_variants(&el), vec![10, 10, 10, 10]);
    }

    #[test]
    fn triangle_free_graphs() {
        // Star and path have zero triangles.
        let star = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).simplify();
        let path = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]).simplify();
        assert_eq!(all_variants(&star), vec![0, 0, 0, 0]);
        assert_eq!(all_variants(&path), vec![0, 0, 0, 0]);
        assert_eq!(count_default(&EdgeList::empty(0)), 0);
    }

    #[test]
    fn two_sharing_triangles() {
        // 0-1-2 triangle and 1-2-3 triangle sharing edge (1,2).
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).simplify();
        assert_eq!(all_variants(&el), vec![2, 2, 2, 2]);
    }

    #[test]
    fn oriented_rows_partition_adjacency() {
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 4)]).simplify();
        let g = Oriented::build(&el);
        let mut upper_total = 0;
        let mut lower_total = 0;
        for v in 0..5u32 {
            upper_total += g.upper(v).len();
            lower_total += g.lower(v).len();
            assert!(g.upper(v).iter().all(|&w| w > v));
            assert!(g.lower(v).iter().all(|&w| w < v));
        }
        assert_eq!(upper_total, el.num_edges());
        assert_eq!(lower_total, el.num_edges());
    }

    #[test]
    fn per_vertex_counts_credit_corners() {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify();
        let (total, per) = per_vertex_counts(&el);
        assert_eq!(total, 1);
        assert_eq!(per, vec![1, 1, 1, 0]);
    }

    #[test]
    fn per_vertex_sum_is_three_times_total() {
        let el = tc_graph_test_graph();
        let (total, per) = per_vertex_counts(&el);
        assert_eq!(per.iter().sum::<u64>(), 3 * total);
        assert_eq!(total, count_default(&el));
    }

    fn tc_graph_test_graph() -> EdgeList {
        // Deterministic pseudo-random graph, dense enough to have many
        // triangles.
        let n = 60u32;
        let mut edges = Vec::new();
        let mut x = 12345u64;
        for u in 0..n {
            for v in u + 1..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33) % 5 == 0 {
                    edges.push((u, v));
                }
            }
        }
        EdgeList::new(n as usize, edges).simplify()
    }

    #[test]
    fn variants_agree_on_random_graph() {
        let el = tc_graph_test_graph();
        let v = all_variants(&el);
        assert!(v.iter().all(|&c| c == v[0]), "{v:?}");
        assert!(v[0] > 0);
    }
}
