//! 1D communication-avoiding triangle counting with overlapping
//! partitions (Arifuzzaman et al., "AOP").
//!
//! Vertices are split into `p` disjoint 1D blocks of the
//! degree-ordered graph. In a *setup* phase each rank acquires, in
//! addition to its own rows, the upper adjacency of every vertex
//! referenced by its tasks (the "overlapping" ghost copies); after
//! that the counting phase runs with **zero communication** — the
//! defining trade: memory overhead for communication avoidance, which
//! is exactly what the paper contrasts its 2D decomposition against
//! (§4).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use tc_graph::edgelist::EdgeList;
use tc_graph::vset::VertexSet;
use tc_graph::Block1D;
use tc_metrics::names as mnames;
use tc_mps::{MpsResult, Observe, Universe};
use tc_trace::{names, Category, TraceHandle};

use crate::serial::Oriented;

/// Outcome of a 1D distributed run.
#[derive(Debug, Clone)]
pub struct Dist1dResult {
    /// Global triangle count.
    pub triangles: u64,
    /// Setup phase (ghost/push exchange) wall time: slowest rank.
    pub setup: Duration,
    /// Counting phase wall time: slowest rank.
    pub count: Duration,
    /// Total payload bytes sent across ranks.
    pub bytes_sent: u64,
    /// Peak per-rank ghost entries stored (the memory-overhead metric
    /// that motivates the space-efficient variant).
    pub max_ghost_entries: usize,
}

impl Dist1dResult {
    /// Setup + counting.
    pub fn total(&self) -> Duration {
        self.setup + self.count
    }
}

/// Runs AOP on `p` ranks.
pub fn count_aop1d(el: &EdgeList, p: usize) -> Dist1dResult {
    match try_count_aop1d(el, p) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_aop1d`]: runtime failures come back as
/// [`tc_mps::MpsError`] instead of a panic.
pub fn try_count_aop1d(el: &EdgeList, p: usize) -> MpsResult<Dist1dResult> {
    try_count_aop1d_traced(el, p, None)
}

/// [`try_count_aop1d`] with an optional trace session: each rank
/// records setup/count phase spans plus the substrate's comm spans.
pub fn try_count_aop1d_traced(
    el: &EdgeList,
    p: usize,
    trace: Option<&TraceHandle>,
) -> MpsResult<Dist1dResult> {
    try_count_aop1d_observed(el, p, Observe::trace(trace))
}

/// [`try_count_aop1d`] with optional trace and metrics sessions.
pub fn try_count_aop1d_observed(
    el: &EdgeList,
    p: usize,
    obs: Observe<'_>,
) -> MpsResult<Dist1dResult> {
    let g = Oriented::build(el);
    let n = g.num_vertices();
    let block = Block1D::new(n, p);

    let (outs, stats) = Universe::try_run_config(p, &obs.to_config(), |comm| {
        let rank = comm.rank();
        let (lo, hi) = block.range(rank);

        // ---- setup: replicate the rows my tasks reference ----
        comm.barrier()?;
        let setup_span = tc_trace::span(names::BASE_SETUP, Category::Phase);
        let t0 = Instant::now();
        // Task (j, i) lives at owner(j) and needs A(i): push A(i) to
        // the owners of every j ∈ A(i) (dedup per destination).
        let mut sends: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
        let mut stamp = vec![usize::MAX; p];
        for i in lo as u32..hi as u32 {
            let ai = g.upper(i);
            for &j in ai {
                let dst = block.owner(j);
                if dst != rank && stamp[dst] != i as usize {
                    stamp[dst] = i as usize;
                    let buf = &mut sends[dst];
                    buf.push(i);
                    buf.push(ai.len() as u32);
                    buf.extend_from_slice(ai);
                }
            }
        }
        let recvd = comm.alltoallv(&sends)?;
        drop(sends);
        let mut ghosts: HashMap<u32, Vec<u32>> = HashMap::new();
        for msg in &recvd {
            let mut at = 0;
            while at < msg.len() {
                let (v, len) = (msg[at], msg[at + 1] as usize);
                ghosts.insert(v, msg[at + 2..at + 2 + len].to_vec());
                at += 2 + len;
            }
        }
        drop(recvd);
        comm.barrier()?;
        drop(setup_span);
        let setup = t0.elapsed();
        tc_metrics::counter_add(mnames::BASE_SETUP_NS, setup.as_nanos() as u64);
        let ghost_entries: usize = ghosts.values().map(|v| v.len()).sum();
        tc_metrics::gauge_max(mnames::BASE_GHOST_ENTRIES, ghost_entries as u64);

        // ---- counting: purely local ----
        let count_span = tc_trace::span(names::BASE_COUNT, Category::Phase);
        let t1 = Instant::now();
        let cap = comm.allreduce_max_u64(g_max_row(&g, lo, hi) as u64)? as usize;
        let mut set = VertexSet::with_capacity(cap);
        let mut local = 0u64;
        for j in lo as u32..hi as u32 {
            let aj = g.upper(j);
            let lj = g.lower(j);
            if aj.is_empty() || lj.is_empty() {
                continue;
            }
            set.clear();
            set.insert_all(aj);
            for &i in lj {
                let ai: &[u32] = if block.owner(i) == rank {
                    g.upper(i)
                } else {
                    ghosts.get(&i).map(|v| v.as_slice()).unwrap_or(&[])
                };
                local += set.count_hits(ai);
            }
        }
        let triangles = comm.allreduce_sum_u64(local)?;
        comm.barrier()?;
        drop(count_span);
        let count = t1.elapsed();
        tc_metrics::counter_add(mnames::BASE_COUNT_NS, count.as_nanos() as u64);
        Ok((triangles, setup, count, ghost_entries))
    })?;

    let triangles = outs[0].0;
    assert!(outs.iter().all(|o| o.0 == triangles));
    Ok(Dist1dResult {
        triangles,
        setup: outs.iter().map(|o| o.1).max().unwrap(),
        count: outs.iter().map(|o| o.2).max().unwrap(),
        bytes_sent: stats.iter().map(|s| s.bytes_sent).sum(),
        max_ghost_entries: outs.iter().map(|o| o.3).max().unwrap(),
    })
}

fn g_max_row(g: &Oriented, lo: usize, hi: usize) -> usize {
    (lo as u32..hi as u32).map(|v| g.upper(v).len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::count_default;
    use tc_gen::graph500;

    #[test]
    fn matches_serial() {
        let el = graph500(8, 21).simplify();
        let expect = count_default(&el);
        for p in [1, 2, 3, 5, 8] {
            let r = count_aop1d(&el, p);
            assert_eq!(r.triangles, expect, "p={p}");
        }
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let el = graph500(7, 2).simplify();
        let r = count_aop1d(&el, 1);
        assert_eq!(r.max_ghost_entries, 0);
        assert_eq!(r.bytes_sent, 0, "p=1 sends nothing but the allreduce self-copy");
    }

    #[test]
    fn ghosts_grow_with_rank_count() {
        let el = graph500(9, 3).simplify();
        let g2 = count_aop1d(&el, 2).max_ghost_entries;
        let g8 = count_aop1d(&el, 8).max_ghost_entries;
        assert!(g2 > 0);
        assert!(g8 > 0);
    }

    #[test]
    fn tiny_graphs() {
        let el = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify();
        assert_eq!(count_aop1d(&el, 4).triangles, 1);
        assert_eq!(count_aop1d(&EdgeList::empty(5), 3).triangles, 0);
    }
}
