//! Shared-memory parallel triangle counting.
//!
//! The paper's own prior work ([21], Tom et al. HPEC'17) is the
//! shared-memory map-based ⟨j,i,k⟩ algorithm; this is that algorithm
//! parallelized over threads: the rows of `L` (outer `j` loop) are
//! dealt to threads in dynamic chunks, each thread keeps a private
//! intersection set, and the per-thread counts are summed. It serves
//! both as a comparison point and as the motivation for the
//! distributed version (§1: "shared-memory solutions are limited by
//! the amount of memory available in a single processor").

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use tc_graph::edgelist::EdgeList;
use tc_graph::vset::VertexSet;

use crate::serial::Oriented;

/// Rows handed to a thread at a time; small enough to balance skewed
/// rows, large enough to amortize the fetch.
const CHUNK: usize = 256;

/// Counts triangles with `num_threads` worker threads.
///
/// # Panics
///
/// Panics if `num_threads == 0`.
pub fn count_shared(el: &EdgeList, num_threads: usize) -> u64 {
    assert!(num_threads > 0, "need at least one thread");
    let g = Oriented::build(el);
    count_shared_oriented(&g, num_threads)
}

/// Same as [`count_shared`] on a pre-built orientation.
pub fn count_shared_oriented(g: &Oriented, num_threads: usize) -> u64 {
    let n = g.num_vertices();
    let cap = g.max_upper_degree();
    let next = AtomicUsize::new(0);
    let total = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|| {
                let mut set = VertexSet::with_capacity(cap);
                let mut local = 0u64;
                loop {
                    let lo = next.fetch_add(CHUNK, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    let hi = (lo + CHUNK).min(n);
                    for j in lo as u32..hi as u32 {
                        let aj = g.upper(j);
                        let lj = g.lower(j);
                        if aj.is_empty() || lj.is_empty() {
                            continue;
                        }
                        set.clear();
                        set.insert_all(aj);
                        for &i in lj {
                            local += set.count_hits(g.upper(i));
                        }
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::count_default;

    fn random_graph(n: u32, keep_mod: u64) -> EdgeList {
        let mut edges = Vec::new();
        let mut x = 98765u64;
        for u in 0..n {
            for v in u + 1..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33) % keep_mod == 0 {
                    edges.push((u, v));
                }
            }
        }
        EdgeList::new(n as usize, edges).simplify()
    }

    #[test]
    fn matches_serial_across_thread_counts() {
        let el = random_graph(120, 6);
        let expect = count_default(&el);
        assert!(expect > 0);
        for t in [1, 2, 3, 4, 8] {
            assert_eq!(count_shared(&el, t), expect, "threads={t}");
        }
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_shared(&EdgeList::empty(0), 4), 0);
        assert_eq!(count_shared(&EdgeList::empty(100), 4), 0);
    }

    #[test]
    fn more_threads_than_rows() {
        let el = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify();
        assert_eq!(count_shared(&el, 16), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        count_shared(&EdgeList::empty(1), 0);
    }
}
