//! 1D blocked push-based triangle counting (after Kanewala et al.'s
//! OPT-PSP).
//!
//! Kanewala et al. also use a 1D decomposition and ship adjacency
//! lists to the ranks holding the adjacent vertices, but "in order to
//! curb the number of messages generated, they block vertices and
//! their adjacency lists and process them in blocks" (§4). This
//! implementation processes the task rows in `num_super_blocks`
//! rounds: each round pushes only the remote rows needed by that
//! round's tasks, counts, and discards — bounding peak memory at
//! roughly `pushed-volume / num_super_blocks` in exchange for more
//! synchronization rounds.

use std::time::{Duration, Instant};

use tc_graph::edgelist::EdgeList;
use tc_graph::vset::VertexSet;
use tc_graph::Block1D;
use tc_metrics::names as mnames;
use tc_mps::{MpsResult, Observe, Universe};
use tc_trace::{names, Category, TraceHandle};

use crate::aop1d::Dist1dResult;
use crate::serial::Oriented;

/// Runs the blocked push counter on `p` ranks with the given number
/// of superblock rounds.
///
/// # Panics
///
/// Panics if `num_super_blocks == 0`.
pub fn count_psp1d(el: &EdgeList, p: usize, num_super_blocks: usize) -> Dist1dResult {
    match try_count_psp1d(el, p, num_super_blocks) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_psp1d`]: runtime failures come back as
/// [`tc_mps::MpsError`] instead of a panic.
pub fn try_count_psp1d(
    el: &EdgeList,
    p: usize,
    num_super_blocks: usize,
) -> MpsResult<Dist1dResult> {
    try_count_psp1d_traced(el, p, num_super_blocks, None)
}

/// [`try_count_psp1d`] with an optional trace session.
pub fn try_count_psp1d_traced(
    el: &EdgeList,
    p: usize,
    num_super_blocks: usize,
    trace: Option<&TraceHandle>,
) -> MpsResult<Dist1dResult> {
    try_count_psp1d_observed(el, p, num_super_blocks, Observe::trace(trace))
}

/// [`try_count_psp1d`] with optional trace and metrics sessions.
pub fn try_count_psp1d_observed(
    el: &EdgeList,
    p: usize,
    num_super_blocks: usize,
    obs: Observe<'_>,
) -> MpsResult<Dist1dResult> {
    assert!(num_super_blocks > 0, "need at least one superblock");
    let g = Oriented::build(el);
    let n = g.num_vertices();
    let block = Block1D::new(n, p);

    let (outs, stats) = Universe::try_run_config(p, &obs.to_config(), |comm| {
        let rank = comm.rank();
        let (lo, hi) = block.range(rank);
        comm.barrier()?;
        let setup_span = tc_trace::span(names::BASE_SETUP, Category::Phase);
        let t0 = Instant::now();
        let max_row = comm.allreduce_max_u64(
            (lo as u32..hi as u32).map(|v| g.upper(v).len()).max().unwrap_or(0) as u64,
        )? as usize;
        let mut set = VertexSet::with_capacity(max_row);
        comm.barrier()?;
        drop(setup_span);
        let setup = t0.elapsed();
        tc_metrics::counter_add(mnames::BASE_SETUP_NS, setup.as_nanos() as u64);

        let count_span = tc_trace::span(names::BASE_COUNT, Category::Phase);
        let t1 = Instant::now();
        let mut local = 0u64;
        let mut peak_entries = 0usize;
        let sb_size = n.div_ceil(num_super_blocks).max(1);
        for sb in 0..num_super_blocks {
            let (jlo, jhi) = ((sb * sb_size) as u32, (((sb + 1) * sb_size).min(n)) as u32);
            // Push A(i) to owner(j) for tasks (j, i) with j in this
            // superblock and i owned here.
            let mut sends: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
            let mut stamp = vec![usize::MAX; p];
            for i in lo as u32..hi as u32 {
                let ai = g.upper(i);
                for &j in ai {
                    if j < jlo || j >= jhi {
                        continue;
                    }
                    let dst = block.owner(j);
                    if dst != rank && stamp[dst] != i as usize {
                        stamp[dst] = i as usize;
                        let buf = &mut sends[dst];
                        buf.push(i);
                        buf.push(ai.len() as u32);
                        buf.extend_from_slice(ai);
                    }
                }
            }
            let recvd = comm.alltoallv(&sends)?;
            drop(sends);
            peak_entries = peak_entries.max(recvd.iter().map(|m| m.len()).sum::<usize>());

            // Index the received rows for this superblock.
            let mut idx: std::collections::HashMap<u32, (usize, usize, usize)> =
                std::collections::HashMap::new();
            for (src, msg) in recvd.iter().enumerate() {
                let mut at = 0;
                while at < msg.len() {
                    let (v, len) = (msg[at], msg[at + 1] as usize);
                    idx.insert(v, (src, at + 2, len));
                    at += 2 + len;
                }
            }
            // Count the tasks of this superblock with per-row map reuse.
            for j in jlo.max(lo as u32)..jhi.min(hi as u32) {
                let aj = g.upper(j);
                let lj = g.lower(j);
                if aj.is_empty() || lj.is_empty() {
                    continue;
                }
                set.clear();
                set.insert_all(aj);
                for &i in lj {
                    let ai: &[u32] = if block.owner(i) == rank {
                        g.upper(i)
                    } else {
                        let &(src, at, len) = idx.get(&i).expect("pushed row present");
                        &recvd[src][at..at + len]
                    };
                    local += set.count_hits(ai);
                }
            }
        }
        let triangles = comm.allreduce_sum_u64(local)?;
        comm.barrier()?;
        drop(count_span);
        let count = t1.elapsed();
        tc_metrics::counter_add(mnames::BASE_COUNT_NS, count.as_nanos() as u64);
        tc_metrics::gauge_max(mnames::BASE_GHOST_ENTRIES, peak_entries as u64);
        Ok((triangles, setup, count, peak_entries))
    })?;

    let triangles = outs[0].0;
    assert!(outs.iter().all(|o| o.0 == triangles));
    Ok(Dist1dResult {
        triangles,
        setup: outs.iter().map(|o| o.1).max().unwrap_or(Duration::ZERO),
        count: outs.iter().map(|o| o.2).max().unwrap(),
        bytes_sent: stats.iter().map(|s| s.bytes_sent).sum(),
        max_ghost_entries: outs.iter().map(|o| o.3).max().unwrap(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::count_default;
    use tc_gen::graph500;

    #[test]
    fn matches_serial_across_blockings() {
        let el = graph500(8, 31).simplify();
        let expect = count_default(&el);
        for p in [1, 2, 4, 6] {
            for blocks in [1, 2, 5, 16] {
                assert_eq!(count_psp1d(&el, p, blocks).triangles, expect, "p={p} blocks={blocks}");
            }
        }
    }

    #[test]
    fn more_blocks_lower_peak_memory() {
        let el = graph500(9, 8).simplify();
        let one = count_psp1d(&el, 4, 1).max_ghost_entries;
        let many = count_psp1d(&el, 4, 16).max_ghost_entries;
        assert!(many <= one, "blocked {many} > unblocked {one}");
        assert!(one > 0);
    }

    #[test]
    #[should_panic(expected = "superblock")]
    fn zero_blocks_rejected() {
        count_psp1d(&EdgeList::empty(1), 1, 0);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_psp1d(&EdgeList::empty(4), 2, 3).triangles, 0);
    }
}
