//! Havoq-style distributed wedge-checking triangle counting (after
//! Pearce, HPEC'17).
//!
//! The pipeline the paper benchmarks against in Table 5:
//!
//! 1. **2-core decomposition** — iteratively peel vertices of degree
//!    < 2 ("removes the vertices that cannot be a part of any
//!    triangle", §4); distributed rounds of peel + neighbour
//!    decrement until a global fixed point.
//! 2. **Directed wedge counting** — orient the surviving graph by
//!    (degree, id); every vertex generates the wedges between pairs of
//!    its out-neighbours and queries the owner of the wedge endpoint
//!    for closure. Wedge volume is Σ d_out(v)², which is why skewed
//!    graphs make this approach lose to block set intersection — the
//!    effect Table 5 measures.
//!
//! Both phase times are reported separately, mirroring Havoq's
//! "2core time" and "directed wedge counting time" columns.

use std::time::{Duration, Instant};

use tc_graph::edgelist::EdgeList;
use tc_graph::{Block1D, Csr};
use tc_metrics::names as mnames;
use tc_mps::{MpsResult, Observe, Universe};
use tc_trace::{names, Category, TraceHandle};

/// Outcome of a wedge-checking run.
#[derive(Debug, Clone)]
pub struct WedgeResult {
    /// Global triangle count.
    pub triangles: u64,
    /// 2-core peeling wall time (slowest rank).
    pub two_core: Duration,
    /// Wedge generation + closure checking wall time (slowest rank).
    pub wedge_count: Duration,
    /// Total wedges generated (= closure queries issued).
    pub wedges: u64,
    /// Vertices removed by the 2-core phase.
    pub peeled: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
}

impl WedgeResult {
    /// The Table 5 "total triangle counting time": 2core + wedge.
    pub fn total(&self) -> Duration {
        self.two_core + self.wedge_count
    }
}

/// Runs the wedge-checking pipeline on `p` ranks.
pub fn count_wedge(el: &EdgeList, p: usize) -> WedgeResult {
    match try_count_wedge(el, p) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_wedge`]: runtime failures come back as
/// [`tc_mps::MpsError`] instead of a panic.
pub fn try_count_wedge(el: &EdgeList, p: usize) -> MpsResult<WedgeResult> {
    try_count_wedge_traced(el, p, None)
}

/// [`try_count_wedge`] with an optional trace session: the 2-core
/// peeling records as the setup phase, wedge checking as the count
/// phase.
pub fn try_count_wedge_traced(
    el: &EdgeList,
    p: usize,
    trace: Option<&TraceHandle>,
) -> MpsResult<WedgeResult> {
    try_count_wedge_observed(el, p, Observe::trace(trace))
}

/// [`try_count_wedge`] with optional trace and metrics sessions.
pub fn try_count_wedge_observed(
    el: &EdgeList,
    p: usize,
    obs: Observe<'_>,
) -> MpsResult<WedgeResult> {
    let csr = Csr::from_edge_list(el);
    let n = csr.num_vertices();
    let block = Block1D::new(n, p);

    let (outs, stats) = Universe::try_run_config(p, &obs.to_config(), |comm| {
        let rank = comm.rank();
        let (lo, hi) = block.range(rank);
        let cnt = hi - lo;

        // ---- phase 1: 2-core peeling ----
        comm.barrier()?;
        let setup_span = tc_trace::span(names::BASE_SETUP, Category::Phase);
        let t0 = Instant::now();
        let mut deg: Vec<u32> = (lo..hi).map(|v| csr.degree(v as u32) as u32).collect();
        let mut alive = vec![true; cnt];
        let mut peeled_local = 0u64;
        loop {
            // Peel local sub-2-core vertices and queue decrements.
            let mut sends: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
            let mut removed = 0u64;
            for li in 0..cnt {
                if alive[li] && deg[li] < 2 {
                    alive[li] = false;
                    removed += 1;
                    for &w in csr.neighbors((lo + li) as u32) {
                        sends[block.owner(w)].push(w);
                    }
                }
            }
            peeled_local += removed;
            if comm.allreduce_sum_u64(removed)? == 0 {
                break;
            }
            for msg in comm.alltoallv(&sends)? {
                for w in msg {
                    let li = w as usize - lo;
                    if alive[li] {
                        deg[li] = deg[li].saturating_sub(1);
                    }
                }
            }
        }
        comm.barrier()?;
        drop(setup_span);
        let two_core = t0.elapsed();
        tc_metrics::counter_add(mnames::BASE_SETUP_NS, two_core.as_nanos() as u64);

        // ---- phase 2: directed wedge counting ----
        let count_span = tc_trace::span(names::BASE_COUNT, Category::Phase);
        let t1 = Instant::now();
        // Orientation key: (post-peel degree, id). Each rank needs the
        // keys of its neighbours; owners push them (one pass, like
        // Havoq's degree exchange).
        let mut key_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
        let mut stamp = vec![usize::MAX; p];
        for li in 0..cnt {
            let v = (lo + li) as u32;
            let payload = [v, if alive[li] { deg[li] } else { u32::MAX }];
            for &w in csr.neighbors(v) {
                let dst = block.owner(w);
                if stamp[dst] != li {
                    stamp[dst] = li;
                    key_sends[dst].push(payload);
                }
            }
        }
        let key_msgs = comm.alltoallv(&key_sends)?;
        drop(key_sends);
        let mut nbr_key: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for msg in &key_msgs {
            for &[v, d] in msg {
                nbr_key.insert(v, d);
            }
        }
        drop(key_msgs);
        let key_of = |v: u32, d: u32| -> u64 { ((d as u64) << 32) | v as u64 };

        // Directed adjacency D(v) = alive neighbours with larger key.
        let mut directed: Vec<Vec<u32>> = vec![Vec::new(); cnt];
        for li in 0..cnt {
            if !alive[li] {
                continue;
            }
            let v = (lo + li) as u32;
            let kv = key_of(v, deg[li]);
            for &w in csr.neighbors(v) {
                let dw = *nbr_key.get(&w).expect("neighbour key pushed");
                if dw != u32::MAX && key_of(w, dw) > kv {
                    directed[li].push(w);
                }
            }
            directed[li].sort_unstable();
        }

        // Generate wedges (a, b): a, b ∈ D(v), key(a) < key(b); query
        // owner(a) whether b ∈ D(a).
        let mut wedge_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
        let mut wedges_local = 0u64;
        for d in &directed {
            for (ai, &a) in d.iter().enumerate() {
                for &b in &d[ai + 1..] {
                    // D(v) is id-sorted; order (a, b) by key for the query.
                    let ka = key_of(a, nbr_key[&a]);
                    let kb = key_of(b, nbr_key[&b]);
                    let (qa, qb) = if ka < kb { (a, b) } else { (b, a) };
                    wedge_sends[block.owner(qa)].push([qa, qb]);
                    wedges_local += 1;
                }
            }
        }
        let queries = comm.alltoallv(&wedge_sends)?;
        drop(wedge_sends);
        let mut local_triangles = 0u64;
        for msg in &queries {
            for &[a, b] in msg {
                if directed[a as usize - lo].binary_search(&b).is_ok() {
                    local_triangles += 1;
                }
            }
        }
        let triangles = comm.allreduce_sum_u64(local_triangles)?;
        let wedges = comm.allreduce_sum_u64(wedges_local)?;
        let peeled = comm.allreduce_sum_u64(peeled_local)?;
        comm.barrier()?;
        drop(count_span);
        let wedge_count = t1.elapsed();
        tc_metrics::counter_add(mnames::BASE_COUNT_NS, wedge_count.as_nanos() as u64);
        Ok((triangles, two_core, wedge_count, wedges, peeled))
    })?;

    let triangles = outs[0].0;
    assert!(outs.iter().all(|o| o.0 == triangles));
    Ok(WedgeResult {
        triangles,
        two_core: outs.iter().map(|o| o.1).max().unwrap(),
        wedge_count: outs.iter().map(|o| o.2).max().unwrap(),
        wedges: outs[0].3,
        peeled: outs[0].4,
        bytes_sent: stats.iter().map(|s| s.bytes_sent).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::count_default;
    use tc_gen::graph500;

    #[test]
    fn matches_serial() {
        let el = graph500(8, 17).simplify();
        let expect = count_default(&el);
        for p in [1, 2, 4, 7] {
            let r = count_wedge(&el, p);
            assert_eq!(r.triangles, expect, "p={p}");
        }
    }

    #[test]
    fn two_core_peels_trees_entirely() {
        // A path graph is fully peeled; zero wedges afterwards.
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).simplify();
        let r = count_wedge(&el, 3);
        assert_eq!(r.triangles, 0);
        assert_eq!(r.peeled, 6);
        assert_eq!(r.wedges, 0);
    }

    #[test]
    fn pendant_vertices_do_not_break_counts() {
        // Triangle with a tail: tail is peeled, triangle survives.
        let el = EdgeList::new(5, vec![(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).simplify();
        let r = count_wedge(&el, 2);
        assert_eq!(r.triangles, 1);
        assert_eq!(r.peeled, 2);
    }

    #[test]
    fn wedge_volume_reflects_skew() {
        // Same edge budget: the skewed graph generates at least as
        // many wedges as the uniform one (Σ d² convexity) — the effect
        // behind twitter vs friendster in Table 5.
        let skewed = graph500(9, 4).simplify();
        let uniform = tc_gen::er::gnm(1 << 9, skewed.num_edges(), 4).simplify();
        let ws = count_wedge(&skewed, 4).wedges;
        let wu = count_wedge(&uniform, 4).wedges;
        assert!(ws > wu, "skewed {ws} <= uniform {wu}");
    }

    #[test]
    fn empty_graph() {
        let r = count_wedge(&EdgeList::empty(3), 2);
        assert_eq!(r.triangles, 0);
        assert_eq!(r.peeled, 3);
    }
}
