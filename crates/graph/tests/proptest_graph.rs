//! Property tests of the graph substrate: representation round trips,
//! structural invariants of CSR/DCSR, ordering, partition maps, and
//! truss bounds.

use proptest::collection::vec;
use proptest::prelude::*;
use tc_graph::degree::{degree_order, invert_permutation, is_degree_ordered, relabel_by_degree};
use tc_graph::truss;
use tc_graph::{io, Csr, Dcsr, EdgeList};

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (1usize..50).prop_flat_map(|n| {
        vec((0..n as u32, 0..n as u32), 0..150)
            .prop_map(move |edges| EdgeList::new(n, edges).simplify())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplify_is_idempotent(el in arb_graph()) {
        prop_assert!(el.is_simple());
        let again = el.clone().simplify();
        prop_assert_eq!(again, el);
    }

    #[test]
    fn csr_preserves_edges(el in arb_graph()) {
        let csr = Csr::from_edge_list(&el);
        prop_assert_eq!(csr.num_edges(), el.num_edges());
        let back: Vec<(u32, u32)> = csr.edges().collect();
        prop_assert_eq!(&back, &el.edges);
        // Symmetry: v in N(u) iff u in N(v).
        for (u, v) in csr.edges() {
            prop_assert!(csr.has_edge(u, v) && csr.has_edge(v, u));
        }
        // Handshake lemma.
        let degsum: u64 = csr.degrees().iter().map(|&d| d as u64).sum();
        prop_assert_eq!(degsum, 2 * el.num_edges() as u64);
    }

    #[test]
    fn dcsr_agrees_with_csr(el in arb_graph()) {
        let csr = Csr::from_edge_list(&el);
        let dcsr = Dcsr::from_csr(&csr);
        prop_assert_eq!(dcsr.num_rows(), csr.num_vertices());
        let visited: usize = dcsr.iter_nonempty().map(|(_, row)| row.len()).sum();
        prop_assert_eq!(visited, csr.num_entries());
        for (r, row) in dcsr.iter_nonempty() {
            prop_assert!(!row.is_empty());
            prop_assert_eq!(row, csr.neighbors(r));
        }
    }

    #[test]
    fn degree_order_is_a_valid_sorting_permutation(el in arb_graph()) {
        let degrees = el.degrees();
        let perm = degree_order(&degrees);
        // Bijection.
        let inv = invert_permutation(&perm);
        prop_assert_eq!(invert_permutation(&inv), perm.clone());
        // Sorted after applying.
        let sorted: Vec<u32> = inv.iter().map(|&old| degrees[old as usize]).collect();
        prop_assert!(is_degree_ordered(&sorted));
        // Relabeled graph has the same degree multiset.
        let (relabeled, _) = relabel_by_degree(el.clone());
        let mut a = degrees;
        let mut b = relabeled.degrees();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn text_io_roundtrip(el in arb_graph()) {
        let mut buf = Vec::new();
        io::write_text_edges(&el, &mut buf).unwrap();
        let back = io::read_text_edges(&buf[..]).unwrap().simplify();
        prop_assert_eq!(back.edges, el.edges);
    }

    #[test]
    fn binary_io_roundtrip(el in arb_graph()) {
        let mut buf = Vec::new();
        io::write_binary_edges(&el, &mut buf).unwrap();
        let back = io::read_binary_edges(&buf[..]).unwrap();
        prop_assert_eq!(back, el);
    }

    #[test]
    fn truss_bounds_hold(el in arb_graph()) {
        let sup = truss::edge_supports(&el);
        let d = truss::truss_decomposition(&el);
        prop_assert_eq!(d.trussness.len(), el.num_edges());
        for (i, &t) in d.trussness.iter().enumerate() {
            // trussness ∈ [2, support + 2]
            prop_assert!(t >= 2);
            prop_assert!(u64::from(t) <= sup[i] + 2);
        }
        // Edges of the k-truss each have >= k-2 triangles *within the
        // k-truss subgraph* — check for the maximum truss level.
        let k = d.max_truss();
        if k >= 3 {
            let sub = EdgeList::new(el.num_vertices, d.truss_edges(k)).simplify();
            let sub_sup = truss::edge_supports(&sub);
            for (&e, &s) in sub.edges.iter().zip(&sub_sup) {
                prop_assert!(s >= u64::from(k) - 2, "edge {e:?} support {s} in {k}-truss");
            }
        }
    }

    #[test]
    fn partition_maps_are_consistent(n in 0usize..200, p in 1usize..17) {
        let b = tc_graph::Block1D::new(n, p);
        let c = tc_graph::Cyclic1D::new(n, p);
        for v in 0..n as u32 {
            prop_assert!(b.owner(v) < p);
            prop_assert_eq!(c.global(c.owner(v), c.local(v)), v);
        }
        let total: usize = (0..p).map(|r| c.count(r)).sum();
        prop_assert_eq!(total, n);
    }
}
