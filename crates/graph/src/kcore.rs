//! k-core decomposition.
//!
//! The wedge-checking comparator (paper §4, Pearce et al.) opens with
//! a 2-core pass — "removes the vertices that cannot be a part of any
//! triangle". This module provides the general serial k-core
//! (degeneracy) decomposition: each vertex's *coreness* is the largest
//! `k` such that the vertex survives in the maximal subgraph of
//! minimum degree `k`. The 2-core special case is the serial reference
//! for the distributed peeling inside `tc_baselines::wedge`.
//!
//! Implementation: the classic O(n + m) bucket peeling of Matula &
//! Beck / Batagelj & Zaversnik.

use crate::csr::Csr;
use crate::edgelist::{EdgeList, VertexId};
use crate::error::GraphError;

/// Coreness per vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `coreness[v]` of vertex `v`.
    pub coreness: Vec<u32>,
}

impl CoreDecomposition {
    /// The degeneracy of the graph (maximum coreness; 0 if empty).
    pub fn degeneracy(&self) -> u32 {
        self.coreness.iter().copied().max().unwrap_or(0)
    }

    /// Vertices of the k-core (coreness ≥ k).
    pub fn core_vertices(&self, k: u32) -> Vec<VertexId> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// The induced subgraph on the k-core.
    pub fn core_subgraph(&self, el: &EdgeList, k: u32) -> EdgeList {
        debug_assert_eq!(self.coreness.len(), el.num_vertices);
        let edges = el
            .edges
            .iter()
            .copied()
            .filter(|&(u, v)| self.coreness[u as usize] >= k && self.coreness[v as usize] >= k)
            .collect();
        EdgeList::new(el.num_vertices, edges)
    }
}

/// Computes the core decomposition of a simplified graph in O(n + m).
///
/// # Panics
///
/// Panics if `el` is not simplified; [`try_core_decomposition`]
/// reports that as a typed error instead.
pub fn core_decomposition(el: &EdgeList) -> CoreDecomposition {
    match try_core_decomposition(el) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`core_decomposition`]: a non-simplified input comes back
/// as [`GraphError::NotSimple`] instead of a panic. Degenerate but
/// valid graphs — empty, edgeless, single-edge, stars, disconnected —
/// are `Ok`.
pub fn try_core_decomposition(el: &EdgeList) -> Result<CoreDecomposition, GraphError> {
    if !el.is_simple() {
        return Err(GraphError::NotSimple("core_decomposition"));
    }
    let csr = Csr::from_edge_list(el);
    let n = csr.num_vertices();
    if n == 0 {
        return Ok(CoreDecomposition { coreness: Vec::new() });
    }
    let mut deg: Vec<u32> = csr.degrees();
    let maxd = *deg.iter().max().unwrap() as usize;

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; maxd + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0usize; n]; // position of v in vert
    let mut vert = vec![0 as VertexId; n]; // vertices sorted by current degree
    {
        let mut cursor = bin[..maxd + 1].to_vec();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }
    // bin[d] = index of the first vertex with degree >= d.
    // (bin currently holds prefix ends shifted by one; rebuild starts.)
    let mut start = vec![0usize; maxd + 1];
    start[..(maxd + 1)].copy_from_slice(&bin[..(maxd + 1)]);

    let mut coreness = vec![0u32; n];
    for i in 0..n {
        let v = vert[i] as usize;
        coreness[v] = deg[v];
        for &w in csr.neighbors(v as u32) {
            let w = w as usize;
            if deg[w] > deg[v] {
                // Move w one bucket down: swap with the first vertex
                // of its current bucket.
                let dw = deg[w] as usize;
                let pw = pos[w];
                let pfirst = start[dw];
                let first = vert[pfirst] as usize;
                if first != w {
                    vert.swap(pw, pfirst);
                    pos[w] = pfirst;
                    pos[first] = pw;
                }
                start[dw] += 1;
                deg[w] -= 1;
            }
        }
    }
    Ok(CoreDecomposition { coreness })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_coreness_is_n_minus_one() {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                edges.push((u, v));
            }
        }
        let el = EdgeList::new(6, edges).simplify();
        let d = core_decomposition(&el);
        assert!(d.coreness.iter().all(|&c| c == 5));
        assert_eq!(d.degeneracy(), 5);
    }

    #[test]
    fn path_is_a_1_core() {
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).simplify();
        let d = core_decomposition(&el);
        assert!(d.coreness.iter().all(|&c| c == 1));
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle (2-core) with a pendant path.
        let el = EdgeList::new(6, vec![(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]).simplify();
        let d = core_decomposition(&el);
        assert_eq!(&d.coreness[0..3], &[2, 2, 2]);
        assert_eq!(&d.coreness[3..6], &[1, 1, 1]);
        assert_eq!(d.core_vertices(2), vec![0, 1, 2]);
        let sub = d.core_subgraph(&el, 2);
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // v is a vertex id
    fn two_core_matches_iterative_peeling() {
        // Reference: repeatedly remove degree<2 vertices.
        let el = tc_generated();
        let d = core_decomposition(&el);
        let mut alive = vec![true; el.num_vertices];
        let csr = Csr::from_edge_list(&el);
        loop {
            let mut changed = false;
            for v in 0..el.num_vertices {
                if alive[v] {
                    let deg =
                        csr.neighbors(v as u32).iter().filter(|&&w| alive[w as usize]).count();
                    if deg < 2 {
                        alive[v] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for v in 0..el.num_vertices {
            assert_eq!(d.coreness[v] >= 2, alive[v], "vertex {v}");
        }
    }

    fn tc_generated() -> EdgeList {
        let mut edges = Vec::new();
        let mut x = 777u64;
        for u in 0..200u32 {
            for v in u + 1..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33) % 40 == 0 {
                    edges.push((u, v));
                }
            }
        }
        EdgeList::new(200, edges).simplify()
    }

    #[test]
    fn empty_graphs() {
        assert_eq!(core_decomposition(&EdgeList::empty(0)).degeneracy(), 0);
        let d = core_decomposition(&EdgeList::empty(4));
        assert_eq!(d.coreness, vec![0, 0, 0, 0]);
    }

    // Regression: degenerate inputs must come back Ok, never panic.

    #[test]
    fn try_variant_accepts_empty_single_edge_and_star() {
        assert_eq!(try_core_decomposition(&EdgeList::empty(0)).unwrap().degeneracy(), 0);
        let single = EdgeList::new(2, vec![(0, 1)]).simplify();
        assert_eq!(try_core_decomposition(&single).unwrap().coreness, vec![1, 1]);
        let star = EdgeList::new(5, (1..5).map(|v| (0, v)).collect()).simplify();
        let d = try_core_decomposition(&star).unwrap();
        assert_eq!(d.coreness, vec![1; 5], "stars are 1-cores everywhere");
        assert_eq!(d.degeneracy(), 1);
    }

    #[test]
    fn try_variant_accepts_disconnected_graph() {
        let el = EdgeList::new(7, vec![(0, 1), (0, 2), (1, 2), (5, 6)]).simplify();
        let d = try_core_decomposition(&el).unwrap();
        assert_eq!(&d.coreness[0..3], &[2, 2, 2]);
        assert_eq!(d.coreness[3], 0, "isolated vertex has coreness 0");
        assert_eq!(&d.coreness[5..7], &[1, 1]);
    }

    #[test]
    fn try_variant_rejects_unsimplified_input() {
        let dup = EdgeList::new(3, vec![(0, 1), (1, 0)]);
        assert!(!dup.is_simple());
        assert_eq!(
            try_core_decomposition(&dup).unwrap_err(),
            GraphError::NotSimple("core_decomposition")
        );
    }

    #[test]
    fn coreness_bounded_by_degree_and_monotone_in_k() {
        let el = tc_generated();
        let csr = Csr::from_edge_list(&el);
        let d = core_decomposition(&el);
        for v in 0..el.num_vertices {
            assert!(d.coreness[v] as usize <= csr.degree(v as u32));
        }
        // k-core vertex sets are nested.
        let mut prev = d.core_vertices(0).len();
        for k in 1..=d.degeneracy() {
            let now = d.core_vertices(k).len();
            assert!(now <= prev);
            prev = now;
        }
    }
}
