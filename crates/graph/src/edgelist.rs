//! Edge-list representation and graph cleaning.
//!
//! All generators and readers produce an [`EdgeList`]; the paper's
//! pipeline assumes "undirected, simple" inputs (§6.1: "We converted
//! all the graph datasets to undirected, simple graphs"), which
//! [`EdgeList::simplify`] performs: drop self loops, canonicalize
//! direction, deduplicate.

/// Vertex identifier. `u32` covers every graph in the paper's testbed
/// (largest: 536M vertices) while halving memory traffic versus `u64`,
/// which matters for the communication-volume experiments.
pub type VertexId = u32;

/// A graph as a bag of edges plus an explicit vertex-count bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices; all edge endpoints are `< num_vertices`.
    pub num_vertices: usize,
    /// Edge endpoints. Interpretation (directed / undirected,
    /// deduplicated or not) depends on the producing stage; after
    /// [`EdgeList::simplify`] each undirected edge appears exactly once
    /// as `(min, max)`.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// Creates an edge list, validating endpoint bounds in debug builds.
    pub fn new(num_vertices: usize, edges: Vec<(VertexId, VertexId)>) -> Self {
        debug_assert!(edges
            .iter()
            .all(|&(u, v)| (u as usize) < num_vertices && (v as usize) < num_vertices));
        Self { num_vertices, edges }
    }

    /// An empty graph on `n` vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Self { num_vertices, edges: Vec::new() }
    }

    /// Number of stored edge records (before simplification this may
    /// include duplicates and self loops).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Converts to a simple undirected graph: removes self loops,
    /// stores each edge once as `(min, max)`, sorted, deduplicated.
    pub fn simplify(mut self) -> Self {
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();
        self
    }

    /// Returns true if already in simplified canonical form.
    pub fn is_simple(&self) -> bool {
        self.edges.iter().all(|&(u, v)| u < v) && self.edges.windows(2).all(|w| w[0] < w[1])
    }

    /// Per-vertex degrees, counting each undirected edge at both
    /// endpoints. Requires a simplified list.
    pub fn degrees(&self) -> Vec<u32> {
        debug_assert!(self.is_simple());
        let mut d = vec![0u32; self.num_vertices];
        for &(u, v) in &self.edges {
            d[u as usize] += 1;
            d[v as usize] += 1;
        }
        d
    }

    /// Applies a vertex relabeling: vertex `v` becomes `perm[v]`.
    /// The result is re-canonicalized.
    pub fn relabel(self, perm: &[VertexId]) -> Self {
        assert_eq!(perm.len(), self.num_vertices, "permutation length mismatch");
        let n = self.num_vertices;
        let edges = self
            .edges
            .into_iter()
            .map(|(u, v)| {
                let (a, b) = (perm[u as usize], perm[v as usize]);
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        let mut out = Self { num_vertices: n, edges };
        out.edges.sort_unstable();
        out.edges.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplify_removes_loops_and_duplicates() {
        let el = EdgeList::new(5, vec![(1, 0), (0, 1), (2, 2), (3, 4), (4, 3), (0, 1)]);
        let s = el.simplify();
        assert_eq!(s.edges, vec![(0, 1), (3, 4)]);
        assert!(s.is_simple());
    }

    #[test]
    fn simplify_empty() {
        let s = EdgeList::empty(3).simplify();
        assert!(s.edges.is_empty());
        assert!(s.is_simple());
        assert_eq!(s.degrees(), vec![0, 0, 0]);
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let s = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]).simplify();
        assert_eq!(s.degrees(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn relabel_reverses_identity() {
        let s = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]).simplify();
        // Reverse permutation: v -> 3 - v.
        let perm: Vec<u32> = (0..4).rev().collect();
        let r = s.clone().relabel(&perm);
        assert_eq!(r.edges, vec![(0, 1), (1, 2), (2, 3)]);
        // Identity round trip.
        let id: Vec<u32> = (0..4).collect();
        assert_eq!(s.clone().relabel(&id), s);
    }

    #[test]
    fn is_simple_detects_disorder() {
        let el = EdgeList::new(3, vec![(1, 0)]);
        assert!(!el.is_simple());
        let el = EdgeList::new(3, vec![(0, 1), (0, 1)]);
        assert!(!el.is_simple());
    }
}
