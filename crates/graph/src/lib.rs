//! # tc-graph — graph substrate
//!
//! Shared graph machinery for the triangle-counting workspace:
//!
//! - [`EdgeList`] — raw edges plus cleaning to simple undirected form.
//! - [`Csr`] / [`Dcsr`] — compressed (and doubly-compressed) sparse
//!   row adjacency storage.
//! - [`degree`] — non-decreasing-degree ordering via counting sort
//!   (sequential reference for the distributed sort in `tc-core`).
//! - [`partition`] — 1D block, 1D cyclic, and 2D cyclic ownership maps
//!   with the paper's `v ÷ √p` local indexing.
//! - [`io`] — text/binary edge lists and Matrix Market reading.
//! - [`stats`] — wedges, transitivity, clustering coefficients.
//! - [`adj`] — mutable per-rank adjacency (owned block + ghost rows),
//!   the backend of the always-on analytics service.

#![warn(missing_docs)]

pub mod adj;
pub mod csr;
pub mod dcsr;
pub mod degree;
pub mod edgelist;
pub mod error;
pub mod io;
pub mod kcore;
pub mod partition;
pub mod stats;
pub mod truss;
pub mod vset;

pub use adj::AdjStore;
pub use csr::Csr;
pub use dcsr::Dcsr;
pub use edgelist::{EdgeList, VertexId};
pub use error::GraphError;
pub use partition::{Block1D, Cyclic1D, Cyclic2D};
pub use vset::VertexSet;
