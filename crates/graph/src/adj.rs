//! Mutable per-rank adjacency storage (owned block + ghost rows).
//!
//! The communication-avoiding data placement of Arifuzzaman et al.'s
//! AOP — each rank stores its 1D block of vertices plus the adjacency
//! lists of remote vertices its edges reference — promoted from
//! `tc-apps` into the graph substrate and made **mutable**: the
//! always-on analytics service (`tc-serve`) applies streams of edge
//! inserts and deletes against this store, so rows are owned sorted
//! vectors rather than borrowed windows into an immutable CSR.
//!
//! The store is communication-free by construction; fabrics that need
//! ghost replication build it with their own exchange (see
//! `tc_apps::adjstore::try_build_from_csr`) and feed the received rows
//! in through [`AdjStore::set_ghost`].

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};

use crate::csr::Csr;
use crate::edgelist::VertexId;
use crate::error::GraphError;
use crate::io::{read_fully, Crc32c, IoError};

/// Preallocation cap (entries), consistent with the hardened readers
/// in [`crate::io`]: sizes declared by untrusted inputs (wire frames,
/// file headers) never reserve more than this up front.
pub const PREALLOC_CAP: usize = 1 << 20;

/// Magic tag of the versioned binary snapshot ("TCADJSNP").
pub const SNAPSHOT_MAGIC: u64 = 0x5443_4144_4A53_4E50;

/// Current snapshot format version; bump on layout changes so an old
/// binary refuses a new checkpoint with a typed error instead of
/// misreading it.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Per-rank mutable adjacency: owned rows for the block `[lo, hi)`
/// plus ghost rows replicated from remote owners.
#[derive(Debug, Clone)]
pub struct AdjStore {
    n: usize,
    lo: u32,
    hi: u32,
    rows: Vec<Vec<VertexId>>,
    ghosts: HashMap<VertexId, Vec<VertexId>>,
}

/// Inserts `x` into the sorted row, returning whether it was absent.
fn sorted_insert(row: &mut Vec<VertexId>, x: VertexId) -> bool {
    match row.binary_search(&x) {
        Ok(_) => false,
        Err(at) => {
            row.insert(at, x);
            true
        }
    }
}

/// Removes `x` from the sorted row, returning whether it was present.
fn sorted_remove(row: &mut Vec<VertexId>, x: VertexId) -> bool {
    match row.binary_search(&x) {
        Ok(at) => {
            row.remove(at);
            true
        }
        Err(_) => false,
    }
}

impl AdjStore {
    /// An empty store owning the vertex block `[lo, hi)` of an
    /// `n`-vertex graph.
    ///
    /// # Panics
    ///
    /// Panics if the block is not a sub-range of `0..n`.
    pub fn new(n: usize, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= n, "block [{lo}, {hi}) is not a sub-range of 0..{n}");
        let mut rows = Vec::with_capacity((hi - lo).min(PREALLOC_CAP));
        rows.resize_with(hi - lo, Vec::new);
        Self { n, lo: lo as u32, hi: hi as u32, rows, ghosts: HashMap::new() }
    }

    /// Builds the store from this rank's block rows of a global CSR
    /// (rows are copied — the store owns and may mutate them).
    pub fn from_csr_block(csr: &Csr, lo: usize, hi: usize) -> Self {
        let mut store = Self::new(csr.num_vertices(), lo, hi);
        for v in lo..hi {
            store.rows[v - lo] = csr.neighbors(v as u32).to_vec();
        }
        store
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The owned block `[lo, hi)`.
    pub fn range(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    /// Whether `v` is owned by this rank.
    pub fn owns(&self, v: VertexId) -> bool {
        v >= self.lo && v < self.hi
    }

    fn check_edge(&self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        for x in [u, v] {
            if x as usize >= self.n {
                return Err(GraphError::VertexOutOfRange { v: x, n: self.n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        Ok(())
    }

    /// Inserts the undirected edge `(u, v)` into every owned endpoint
    /// row. Returns `true` if the edge was absent (judged from the
    /// first owned endpoint); endpoints this rank does not own are
    /// untouched. Ghost rows are deliberately **not** updated — the
    /// service refreshes ghosts by re-exchanging rows when it needs
    /// remote adjacency.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        self.check_edge(u, v)?;
        let mut changed = None;
        for (a, b) in [(u, v), (v, u)] {
            if self.owns(a) {
                let was_new = sorted_insert(&mut self.rows[(a - self.lo) as usize], b);
                changed.get_or_insert(was_new);
            }
        }
        Ok(changed.unwrap_or(false))
    }

    /// Deletes the undirected edge `(u, v)` from every owned endpoint
    /// row. Returns `true` if the edge was present (judged from the
    /// first owned endpoint).
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        self.check_edge(u, v)?;
        let mut changed = None;
        for (a, b) in [(u, v), (v, u)] {
            if self.owns(a) {
                let was_there = sorted_remove(&mut self.rows[(a - self.lo) as usize], b);
                changed.get_or_insert(was_there);
            }
        }
        Ok(changed.unwrap_or(false))
    }

    /// Whether the edge `(u, v)` is present, judged from whichever
    /// endpoint this rank can resolve (owned or ghost).
    ///
    /// # Panics
    ///
    /// Panics if neither endpoint is owned or ghosted — membership of
    /// such an edge is unknowable locally, and answering `false` would
    /// silently corrupt a computation.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        if let Some(row) = self.get(u) {
            row.binary_search(&v).is_ok()
        } else if let Some(row) = self.get(v) {
            row.binary_search(&u).is_ok()
        } else {
            panic!("edge ({u}, {v}): neither endpoint is owned or ghosted")
        }
    }

    /// Sorted full adjacency of `v` — owned or ghost.
    ///
    /// # Panics
    ///
    /// Panics if `v` is remote and was never ghosted (such a vertex
    /// cannot appear in this rank's computations); use
    /// [`AdjStore::get`] for the non-panicking lookup.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.get(v).unwrap_or_else(|| panic!("vertex {v} is neither owned nor ghosted"))
    }

    /// Sorted full adjacency of `v` if this rank can resolve it.
    pub fn get(&self, v: VertexId) -> Option<&[VertexId]> {
        if self.owns(v) {
            Some(self.rows[(v - self.lo) as usize].as_slice())
        } else {
            self.ghosts.get(&v).map(Vec::as_slice)
        }
    }

    /// Installs (or replaces) the ghost row of remote vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is owned — owned rows are mutated through
    /// [`AdjStore::insert`]/[`AdjStore::delete`], never shadowed.
    pub fn set_ghost(&mut self, v: VertexId, row: Vec<VertexId>) {
        assert!(!self.owns(v), "vertex {v} is owned; set_ghost is for remote rows");
        debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "ghost row must be sorted");
        self.ghosts.insert(v, row);
    }

    /// Drops every ghost row (e.g. after a mutation epoch made them
    /// stale).
    pub fn clear_ghosts(&mut self) {
        self.ghosts.clear();
    }

    /// Longest resolvable row (sizes intersection sets).
    pub fn max_row_len(&self) -> usize {
        let owned = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let ghost = self.ghosts.values().map(Vec::len).max().unwrap_or(0);
        owned.max(ghost)
    }

    /// Total ghost entries replicated (the memory-overhead metric).
    pub fn ghost_entries(&self) -> usize {
        self.ghosts.values().map(Vec::len).sum()
    }

    /// Total entries across owned rows. Summed over ranks of a
    /// partition this is exactly `2m` (each edge appears in both
    /// endpoint rows).
    pub fn owned_entries(&self) -> u64 {
        self.rows.iter().map(|r| r.len() as u64).sum()
    }

    /// Iterates the owned rows as `(vertex, sorted adjacency)`.
    pub fn owned_rows(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        self.rows.iter().enumerate().map(|(i, r)| (self.lo + i as u32, r.as_slice()))
    }

    /// Writes a versioned binary snapshot of the owned block: magic,
    /// version, shape header, every owned row, and a trailing CRC32c
    /// over everything before it. Ghost rows are deliberately excluded
    /// — they are derived state, rebuilt by re-exchanging rows after a
    /// restore.
    pub fn write_snapshot(&self, writer: impl Write) -> crate::io::Result<()> {
        let mut w = BufWriter::new(writer);
        let mut crc = Crc32c::new();
        let mut header = Vec::with_capacity(28);
        header.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        header.extend_from_slice(&(self.n as u64).to_le_bytes());
        header.extend_from_slice(&self.lo.to_le_bytes());
        header.extend_from_slice(&self.hi.to_le_bytes());
        crc.update(&header);
        w.write_all(&header)?;
        let mut buf = Vec::new();
        for row in &self.rows {
            buf.clear();
            buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
            for &x in row {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            crc.update(&buf);
            w.write_all(&buf)?;
        }
        w.write_all(&crc.finish().to_le_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads a snapshot written by [`AdjStore::write_snapshot`].
    ///
    /// Every structural defect — bad magic, unknown version, an
    /// impossible shape, truncation anywhere, an unsorted or
    /// out-of-range row, a checksum mismatch — is a typed
    /// [`IoError::Corrupt`] carrying the byte offset, so a torn or
    /// bit-rotted checkpoint can never restore silently wrong
    /// adjacency. The declared sizes are never trusted for the
    /// allocation (capped at [`PREALLOC_CAP`] up front).
    pub fn read_snapshot(reader: impl Read) -> crate::io::Result<Self> {
        let mut r = BufReader::new(reader);
        let mut crc = Crc32c::new();
        let mut buf8 = [0u8; 8];
        let mut buf4 = [0u8; 4];
        read_fully(&mut r, &mut buf8, 0, || "8-byte snapshot magic".into())?;
        let magic = u64::from_le_bytes(buf8);
        if magic != SNAPSHOT_MAGIC {
            return Err(IoError::Corrupt {
                msg: format!("bad snapshot magic {magic:#018x} (expected {SNAPSHOT_MAGIC:#018x})"),
                offset: 0,
            });
        }
        crc.update(&buf8);
        read_fully(&mut r, &mut buf4, 8, || "snapshot version".into())?;
        let version = u32::from_le_bytes(buf4);
        if version != SNAPSHOT_VERSION {
            return Err(IoError::Corrupt {
                msg: format!("unknown snapshot version {version} (expected {SNAPSHOT_VERSION})"),
                offset: 8,
            });
        }
        crc.update(&buf4);
        read_fully(&mut r, &mut buf8, 12, || "vertex-count header".into())?;
        let n64 = u64::from_le_bytes(buf8);
        if n64 > u64::from(u32::MAX) + 1 {
            return Err(IoError::Corrupt {
                msg: format!("vertex count {n64} exceeds the u32 id space"),
                offset: 12,
            });
        }
        crc.update(&buf8);
        let n = n64 as usize;
        read_fully(&mut r, &mut buf4, 20, || "block lower bound".into())?;
        let lo = u32::from_le_bytes(buf4);
        crc.update(&buf4);
        read_fully(&mut r, &mut buf4, 24, || "block upper bound".into())?;
        let hi = u32::from_le_bytes(buf4);
        crc.update(&buf4);
        if lo > hi || hi as usize > n {
            return Err(IoError::Corrupt {
                msg: format!("block [{lo}, {hi}) is not a sub-range of 0..{n}"),
                offset: 20,
            });
        }
        let mut store = Self::new(n, lo as usize, hi as usize);
        let mut off = 28u64;
        for i in 0..(hi - lo) as usize {
            read_fully(&mut r, &mut buf4, off, || format!("length of row {i}"))?;
            let len = u32::from_le_bytes(buf4) as usize;
            crc.update(&buf4);
            off += 4;
            if len >= n.max(1) {
                return Err(IoError::Corrupt {
                    msg: format!("row {i}: length {len} is impossible in an {n}-vertex graph"),
                    offset: off - 4,
                });
            }
            let mut row = Vec::with_capacity(len.min(PREALLOC_CAP));
            let mut prev: Option<u32> = None;
            for j in 0..len {
                read_fully(&mut r, &mut buf4, off, || format!("entry {j} of row {i}"))?;
                let x = u32::from_le_bytes(buf4);
                crc.update(&buf4);
                if x as usize >= n {
                    return Err(IoError::Corrupt {
                        msg: format!("row {i}: neighbor {x} out of range (n = {n})"),
                        offset: off,
                    });
                }
                if prev.is_some_and(|p| p >= x) {
                    return Err(IoError::Corrupt {
                        msg: format!("row {i}: entries not strictly increasing at {x}"),
                        offset: off,
                    });
                }
                prev = Some(x);
                row.push(x);
                off += 4;
            }
            store.rows[i] = row;
        }
        read_fully(&mut r, &mut buf4, off, || "trailing checksum".into())?;
        let stored = u32::from_le_bytes(buf4);
        let computed = crc.finish();
        if stored != computed {
            return Err(IoError::Corrupt {
                msg: format!(
                    "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                ),
                offset: off,
            });
        }
        Ok(store)
    }

    /// Flattens the owned block into `(lo, local xadj, adj)` — the
    /// materialized-rows shape distributed pipelines consume (e.g.
    /// `tc_core::preprocess::BlockInput::Owned`).
    pub fn to_block_parts(&self) -> (u32, Vec<u32>, Vec<u32>) {
        let total: usize = self.rows.iter().map(Vec::len).sum();
        let mut xadj = Vec::with_capacity((self.rows.len() + 1).min(PREALLOC_CAP));
        let mut adj = Vec::with_capacity(total.min(PREALLOC_CAP));
        xadj.push(0u32);
        let mut off = 0u32;
        for row in &self.rows {
            off += row.len() as u32;
            xadj.push(off);
            adj.extend_from_slice(row);
        }
        (self.lo, xadj, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn triangle_store() -> AdjStore {
        // Triangle 0-1-2 plus pendant edge 2-3, whole graph owned.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify();
        AdjStore::from_csr_block(&Csr::from_edge_list(&el), 0, 4)
    }

    #[test]
    fn from_csr_block_copies_rows() {
        let store = triangle_store();
        assert_eq!(store.neighbors(0), &[1, 2]);
        assert_eq!(store.neighbors(2), &[0, 1, 3]);
        assert_eq!(store.max_row_len(), 3);
        assert_eq!(store.owned_entries(), 8);
        assert!(store.contains(0, 1));
        assert!(!store.contains(0, 3));
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let mut store = triangle_store();
        assert_eq!(store.insert(0, 3), Ok(true));
        assert!(store.contains(0, 3));
        assert_eq!(store.neighbors(3), &[0, 2]);
        assert_eq!(store.insert(0, 3), Ok(false), "duplicate insert is a no-op");
        assert_eq!(store.delete(0, 3), Ok(true));
        assert_eq!(store.delete(0, 3), Ok(false), "double delete is a no-op");
        assert_eq!(store.neighbors(3), &[2]);
        // Rows stay sorted through arbitrary churn.
        assert_eq!(store.insert(3, 1), Ok(true));
        assert_eq!(store.neighbors(3), &[1, 2]);
    }

    #[test]
    fn typed_errors_on_bad_edges() {
        let mut store = triangle_store();
        assert_eq!(store.insert(0, 9), Err(GraphError::VertexOutOfRange { v: 9, n: 4 }));
        assert_eq!(store.delete(9, 0), Err(GraphError::VertexOutOfRange { v: 9, n: 4 }));
        assert_eq!(store.insert(2, 2), Err(GraphError::SelfLoop(2)));
    }

    #[test]
    fn partial_ownership_touches_only_owned_rows() {
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify();
        let csr = Csr::from_edge_list(&el);
        // This rank owns only [0, 2).
        let mut store = AdjStore::from_csr_block(&csr, 0, 2);
        assert!(store.owns(1) && !store.owns(2));
        assert_eq!(store.insert(1, 3), Ok(true));
        assert_eq!(store.neighbors(1), &[0, 2, 3]);
        assert_eq!(store.get(3), None, "remote endpoint row untouched");
        assert_eq!(store.insert(2, 3), Ok(false), "fully remote edge is a local no-op");
    }

    #[test]
    fn ghosts_resolve_and_clear() {
        let mut store = AdjStore::new(6, 0, 3);
        store.set_ghost(4, vec![0, 5]);
        assert_eq!(store.neighbors(4), &[0, 5]);
        assert_eq!(store.ghost_entries(), 2);
        assert_eq!(store.max_row_len(), 2);
        assert!(!store.contains(4, 3));
        store.clear_ghosts();
        assert_eq!(store.get(4), None);
    }

    #[test]
    #[should_panic(expected = "neither owned nor ghosted")]
    fn unknown_remote_vertex_panics() {
        triangle_store();
        let store = AdjStore::new(8, 0, 4);
        let _ = store.neighbors(7);
    }

    #[test]
    #[should_panic(expected = "neither endpoint is owned or ghosted")]
    fn contains_refuses_to_guess() {
        let store = AdjStore::new(8, 0, 4);
        let _ = store.contains(6, 7);
    }

    fn snapshot_bytes(store: &AdjStore) -> Vec<u8> {
        let mut bytes = Vec::new();
        store.write_snapshot(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut store = triangle_store();
        store.insert(1, 3).unwrap();
        let bytes = snapshot_bytes(&store);
        let back = AdjStore::read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), store.num_vertices());
        assert_eq!(back.range(), store.range());
        for (v, row) in store.owned_rows() {
            assert_eq!(back.neighbors(v), row);
        }
        // Re-snapshotting the restored store yields the same bytes.
        assert_eq!(snapshot_bytes(&back), bytes);
    }

    #[test]
    fn snapshot_excludes_ghosts() {
        let mut store = AdjStore::new(6, 0, 3);
        store.insert(0, 2).unwrap();
        store.set_ghost(4, vec![0, 5]);
        let back = AdjStore::read_snapshot(snapshot_bytes(&store).as_slice()).unwrap();
        assert_eq!(back.get(4), None, "ghosts are derived state, not persisted");
        assert_eq!(back.neighbors(0), &[2]);
    }

    #[test]
    fn snapshot_rejects_truncation_at_every_prefix() {
        let bytes = snapshot_bytes(&triangle_store());
        for cut in 0..bytes.len() {
            match AdjStore::read_snapshot(&bytes[..cut]) {
                Err(IoError::Corrupt { .. }) => {}
                other => panic!("prefix {cut}/{}: expected Corrupt, got {other:?}", bytes.len()),
            }
        }
    }

    #[test]
    fn snapshot_rejects_bit_rot_via_checksum() {
        let good = snapshot_bytes(&triangle_store());
        // Flip one bit somewhere in a row payload (past the header, so
        // the structural checks may pass and the CRC must catch it).
        let mut bad = good.clone();
        let at = bad.len() - 6;
        bad[at] ^= 0x10;
        match AdjStore::read_snapshot(bad.as_slice()) {
            Err(IoError::Corrupt { msg, .. }) => {
                assert!(
                    msg.contains("checksum") || msg.contains("range") || msg.contains("increasing"),
                    "{msg}"
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_rejects_bad_magic_and_version() {
        let good = snapshot_bytes(&triangle_store());
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        match AdjStore::read_snapshot(bad.as_slice()) {
            Err(IoError::Corrupt { msg, offset: 0 }) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Corrupt at 0, got {other:?}"),
        }
        let mut bad = good;
        bad[8] = 99;
        match AdjStore::read_snapshot(bad.as_slice()) {
            Err(IoError::Corrupt { msg, offset: 8 }) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected Corrupt at 8, got {other:?}"),
        }
    }

    #[test]
    fn to_block_parts_round_trips() {
        let store = triangle_store();
        let (lo, xadj, adj) = store.to_block_parts();
        assert_eq!(lo, 0);
        assert_eq!(xadj, vec![0, 2, 4, 7, 8]);
        assert_eq!(adj, vec![1, 2, 0, 2, 0, 1, 3, 2]);
    }
}
