//! Mutable per-rank adjacency storage (owned block + ghost rows).
//!
//! The communication-avoiding data placement of Arifuzzaman et al.'s
//! AOP — each rank stores its 1D block of vertices plus the adjacency
//! lists of remote vertices its edges reference — promoted from
//! `tc-apps` into the graph substrate and made **mutable**: the
//! always-on analytics service (`tc-serve`) applies streams of edge
//! inserts and deletes against this store, so rows are owned sorted
//! vectors rather than borrowed windows into an immutable CSR.
//!
//! The store is communication-free by construction; fabrics that need
//! ghost replication build it with their own exchange (see
//! `tc_apps::adjstore::try_build_from_csr`) and feed the received rows
//! in through [`AdjStore::set_ghost`].

use std::collections::HashMap;

use crate::csr::Csr;
use crate::edgelist::VertexId;
use crate::error::GraphError;

/// Preallocation cap (entries), consistent with the hardened readers
/// in [`crate::io`]: sizes declared by untrusted inputs (wire frames,
/// file headers) never reserve more than this up front.
pub const PREALLOC_CAP: usize = 1 << 20;

/// Per-rank mutable adjacency: owned rows for the block `[lo, hi)`
/// plus ghost rows replicated from remote owners.
#[derive(Debug, Clone)]
pub struct AdjStore {
    n: usize,
    lo: u32,
    hi: u32,
    rows: Vec<Vec<VertexId>>,
    ghosts: HashMap<VertexId, Vec<VertexId>>,
}

/// Inserts `x` into the sorted row, returning whether it was absent.
fn sorted_insert(row: &mut Vec<VertexId>, x: VertexId) -> bool {
    match row.binary_search(&x) {
        Ok(_) => false,
        Err(at) => {
            row.insert(at, x);
            true
        }
    }
}

/// Removes `x` from the sorted row, returning whether it was present.
fn sorted_remove(row: &mut Vec<VertexId>, x: VertexId) -> bool {
    match row.binary_search(&x) {
        Ok(at) => {
            row.remove(at);
            true
        }
        Err(_) => false,
    }
}

impl AdjStore {
    /// An empty store owning the vertex block `[lo, hi)` of an
    /// `n`-vertex graph.
    ///
    /// # Panics
    ///
    /// Panics if the block is not a sub-range of `0..n`.
    pub fn new(n: usize, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= n, "block [{lo}, {hi}) is not a sub-range of 0..{n}");
        let mut rows = Vec::with_capacity((hi - lo).min(PREALLOC_CAP));
        rows.resize_with(hi - lo, Vec::new);
        Self { n, lo: lo as u32, hi: hi as u32, rows, ghosts: HashMap::new() }
    }

    /// Builds the store from this rank's block rows of a global CSR
    /// (rows are copied — the store owns and may mutate them).
    pub fn from_csr_block(csr: &Csr, lo: usize, hi: usize) -> Self {
        let mut store = Self::new(csr.num_vertices(), lo, hi);
        for v in lo..hi {
            store.rows[v - lo] = csr.neighbors(v as u32).to_vec();
        }
        store
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The owned block `[lo, hi)`.
    pub fn range(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    /// Whether `v` is owned by this rank.
    pub fn owns(&self, v: VertexId) -> bool {
        v >= self.lo && v < self.hi
    }

    fn check_edge(&self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        for x in [u, v] {
            if x as usize >= self.n {
                return Err(GraphError::VertexOutOfRange { v: x, n: self.n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        Ok(())
    }

    /// Inserts the undirected edge `(u, v)` into every owned endpoint
    /// row. Returns `true` if the edge was absent (judged from the
    /// first owned endpoint); endpoints this rank does not own are
    /// untouched. Ghost rows are deliberately **not** updated — the
    /// service refreshes ghosts by re-exchanging rows when it needs
    /// remote adjacency.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        self.check_edge(u, v)?;
        let mut changed = None;
        for (a, b) in [(u, v), (v, u)] {
            if self.owns(a) {
                let was_new = sorted_insert(&mut self.rows[(a - self.lo) as usize], b);
                changed.get_or_insert(was_new);
            }
        }
        Ok(changed.unwrap_or(false))
    }

    /// Deletes the undirected edge `(u, v)` from every owned endpoint
    /// row. Returns `true` if the edge was present (judged from the
    /// first owned endpoint).
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        self.check_edge(u, v)?;
        let mut changed = None;
        for (a, b) in [(u, v), (v, u)] {
            if self.owns(a) {
                let was_there = sorted_remove(&mut self.rows[(a - self.lo) as usize], b);
                changed.get_or_insert(was_there);
            }
        }
        Ok(changed.unwrap_or(false))
    }

    /// Whether the edge `(u, v)` is present, judged from whichever
    /// endpoint this rank can resolve (owned or ghost).
    ///
    /// # Panics
    ///
    /// Panics if neither endpoint is owned or ghosted — membership of
    /// such an edge is unknowable locally, and answering `false` would
    /// silently corrupt a computation.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        if let Some(row) = self.get(u) {
            row.binary_search(&v).is_ok()
        } else if let Some(row) = self.get(v) {
            row.binary_search(&u).is_ok()
        } else {
            panic!("edge ({u}, {v}): neither endpoint is owned or ghosted")
        }
    }

    /// Sorted full adjacency of `v` — owned or ghost.
    ///
    /// # Panics
    ///
    /// Panics if `v` is remote and was never ghosted (such a vertex
    /// cannot appear in this rank's computations); use
    /// [`AdjStore::get`] for the non-panicking lookup.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.get(v).unwrap_or_else(|| panic!("vertex {v} is neither owned nor ghosted"))
    }

    /// Sorted full adjacency of `v` if this rank can resolve it.
    pub fn get(&self, v: VertexId) -> Option<&[VertexId]> {
        if self.owns(v) {
            Some(self.rows[(v - self.lo) as usize].as_slice())
        } else {
            self.ghosts.get(&v).map(Vec::as_slice)
        }
    }

    /// Installs (or replaces) the ghost row of remote vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is owned — owned rows are mutated through
    /// [`AdjStore::insert`]/[`AdjStore::delete`], never shadowed.
    pub fn set_ghost(&mut self, v: VertexId, row: Vec<VertexId>) {
        assert!(!self.owns(v), "vertex {v} is owned; set_ghost is for remote rows");
        debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "ghost row must be sorted");
        self.ghosts.insert(v, row);
    }

    /// Drops every ghost row (e.g. after a mutation epoch made them
    /// stale).
    pub fn clear_ghosts(&mut self) {
        self.ghosts.clear();
    }

    /// Longest resolvable row (sizes intersection sets).
    pub fn max_row_len(&self) -> usize {
        let owned = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let ghost = self.ghosts.values().map(Vec::len).max().unwrap_or(0);
        owned.max(ghost)
    }

    /// Total ghost entries replicated (the memory-overhead metric).
    pub fn ghost_entries(&self) -> usize {
        self.ghosts.values().map(Vec::len).sum()
    }

    /// Total entries across owned rows. Summed over ranks of a
    /// partition this is exactly `2m` (each edge appears in both
    /// endpoint rows).
    pub fn owned_entries(&self) -> u64 {
        self.rows.iter().map(|r| r.len() as u64).sum()
    }

    /// Iterates the owned rows as `(vertex, sorted adjacency)`.
    pub fn owned_rows(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        self.rows.iter().enumerate().map(|(i, r)| (self.lo + i as u32, r.as_slice()))
    }

    /// Flattens the owned block into `(lo, local xadj, adj)` — the
    /// materialized-rows shape distributed pipelines consume (e.g.
    /// `tc_core::preprocess::BlockInput::Owned`).
    pub fn to_block_parts(&self) -> (u32, Vec<u32>, Vec<u32>) {
        let total: usize = self.rows.iter().map(Vec::len).sum();
        let mut xadj = Vec::with_capacity((self.rows.len() + 1).min(PREALLOC_CAP));
        let mut adj = Vec::with_capacity(total.min(PREALLOC_CAP));
        xadj.push(0u32);
        let mut off = 0u32;
        for row in &self.rows {
            off += row.len() as u32;
            xadj.push(off);
            adj.extend_from_slice(row);
        }
        (self.lo, xadj, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn triangle_store() -> AdjStore {
        // Triangle 0-1-2 plus pendant edge 2-3, whole graph owned.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify();
        AdjStore::from_csr_block(&Csr::from_edge_list(&el), 0, 4)
    }

    #[test]
    fn from_csr_block_copies_rows() {
        let store = triangle_store();
        assert_eq!(store.neighbors(0), &[1, 2]);
        assert_eq!(store.neighbors(2), &[0, 1, 3]);
        assert_eq!(store.max_row_len(), 3);
        assert_eq!(store.owned_entries(), 8);
        assert!(store.contains(0, 1));
        assert!(!store.contains(0, 3));
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let mut store = triangle_store();
        assert_eq!(store.insert(0, 3), Ok(true));
        assert!(store.contains(0, 3));
        assert_eq!(store.neighbors(3), &[0, 2]);
        assert_eq!(store.insert(0, 3), Ok(false), "duplicate insert is a no-op");
        assert_eq!(store.delete(0, 3), Ok(true));
        assert_eq!(store.delete(0, 3), Ok(false), "double delete is a no-op");
        assert_eq!(store.neighbors(3), &[2]);
        // Rows stay sorted through arbitrary churn.
        assert_eq!(store.insert(3, 1), Ok(true));
        assert_eq!(store.neighbors(3), &[1, 2]);
    }

    #[test]
    fn typed_errors_on_bad_edges() {
        let mut store = triangle_store();
        assert_eq!(store.insert(0, 9), Err(GraphError::VertexOutOfRange { v: 9, n: 4 }));
        assert_eq!(store.delete(9, 0), Err(GraphError::VertexOutOfRange { v: 9, n: 4 }));
        assert_eq!(store.insert(2, 2), Err(GraphError::SelfLoop(2)));
    }

    #[test]
    fn partial_ownership_touches_only_owned_rows() {
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify();
        let csr = Csr::from_edge_list(&el);
        // This rank owns only [0, 2).
        let mut store = AdjStore::from_csr_block(&csr, 0, 2);
        assert!(store.owns(1) && !store.owns(2));
        assert_eq!(store.insert(1, 3), Ok(true));
        assert_eq!(store.neighbors(1), &[0, 2, 3]);
        assert_eq!(store.get(3), None, "remote endpoint row untouched");
        assert_eq!(store.insert(2, 3), Ok(false), "fully remote edge is a local no-op");
    }

    #[test]
    fn ghosts_resolve_and_clear() {
        let mut store = AdjStore::new(6, 0, 3);
        store.set_ghost(4, vec![0, 5]);
        assert_eq!(store.neighbors(4), &[0, 5]);
        assert_eq!(store.ghost_entries(), 2);
        assert_eq!(store.max_row_len(), 2);
        assert!(!store.contains(4, 3));
        store.clear_ghosts();
        assert_eq!(store.get(4), None);
    }

    #[test]
    #[should_panic(expected = "neither owned nor ghosted")]
    fn unknown_remote_vertex_panics() {
        triangle_store();
        let store = AdjStore::new(8, 0, 4);
        let _ = store.neighbors(7);
    }

    #[test]
    #[should_panic(expected = "neither endpoint is owned or ghosted")]
    fn contains_refuses_to_guess() {
        let store = AdjStore::new(8, 0, 4);
        let _ = store.contains(6, 7);
    }

    #[test]
    fn to_block_parts_round_trips() {
        let store = triangle_store();
        let (lo, xadj, adj) = store.to_block_parts();
        assert_eq!(lo, 0);
        assert_eq!(xadj, vec![0, 2, 4, 7, 8]);
        assert_eq!(adj, vec![1, 2, 0, 2, 0, 1, 3, 2]);
    }
}
