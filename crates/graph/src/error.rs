//! Typed errors for the graph-analytic kernels.
//!
//! The decomposition kernels ([`crate::truss`], [`crate::kcore`]) and
//! the mutable adjacency store ([`crate::adj`]) are fed by long-lived
//! services as well as offline tools; a malformed input must surface
//! as a recoverable error the caller can map to a protocol reply, not
//! as a panic that takes the whole rank fleet down.

use crate::edgelist::VertexId;

/// Why a graph-analytic kernel rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The input edge list is not in simple undirected form (call
    /// [`crate::EdgeList::simplify`] first). The payload names the
    /// kernel that rejected it.
    NotSimple(&'static str),
    /// A vertex id is outside the graph's `0..n` range.
    VertexOutOfRange {
        /// The offending vertex.
        v: VertexId,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied where a proper edge is
    /// required.
    SelfLoop(VertexId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NotSimple(what) => {
                write!(f, "{what} needs a simplified undirected graph (call simplify() first)")
            }
            GraphError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} is out of range for a {n}-vertex graph")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop ({v}, {v}) is not a valid edge"),
        }
    }
}

impl std::error::Error for GraphError {}
