//! Graph statistics built on triangle counts.
//!
//! The paper motivates triangle counting through the clustering
//! coefficient, the transitivity ratio, and k-truss-style analyses
//! (§1). These helpers turn a per-vertex or global triangle count into
//! those statistics, and provide the wedge counts that normalize them.

use crate::csr::Csr;

/// Number of wedges (paths of length 2) centred at `v`: `d(v)·(d(v)−1)/2`.
pub fn wedges_at(csr: &Csr, v: u32) -> u64 {
    let d = csr.degree(v) as u64;
    d * d.saturating_sub(1) / 2
}

/// Total wedge count of the graph.
pub fn total_wedges(csr: &Csr) -> u64 {
    (0..csr.num_vertices() as u32).map(|v| wedges_at(csr, v)).sum()
}

/// Global transitivity ratio `3·triangles / wedges` (0 if no wedges).
pub fn transitivity(csr: &Csr, triangles: u64) -> f64 {
    let w = total_wedges(csr);
    if w == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / w as f64
    }
}

/// Local clustering coefficient of `v` given the number of triangles
/// incident on `v` (0 for degree < 2).
pub fn local_clustering(csr: &Csr, v: u32, triangles_at_v: u64) -> f64 {
    let w = wedges_at(csr, v);
    if w == 0 {
        0.0
    } else {
        triangles_at_v as f64 / w as f64
    }
}

/// Average local clustering coefficient given per-vertex triangle counts.
pub fn average_clustering(csr: &Csr, triangles_per_vertex: &[u64]) -> f64 {
    let n = csr.num_vertices();
    assert_eq!(triangles_per_vertex.len(), n, "need one triangle count per vertex");
    if n == 0 {
        return 0.0;
    }
    let sum: f64 =
        (0..n as u32).map(|v| local_clustering(csr, v, triangles_per_vertex[v as usize])).sum();
    sum / n as f64
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(csr: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; csr.max_degree() + 1];
    for v in 0..csr.num_vertices() as u32 {
        hist[csr.degree(v)] += 1;
    }
    hist
}

/// Average degree `2m/n` (0 for empty graphs).
pub fn average_degree(csr: &Csr) -> f64 {
    if csr.num_vertices() == 0 {
        0.0
    } else {
        csr.num_entries() as f64 / csr.num_vertices() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn k4() -> Csr {
        // Complete graph on 4 vertices: 4 triangles, every wedge closed.
        let edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        Csr::from_edge_list(&EdgeList::new(4, edges).simplify())
    }

    #[test]
    fn wedges_of_k4() {
        let g = k4();
        assert_eq!(wedges_at(&g, 0), 3);
        assert_eq!(total_wedges(&g), 12);
    }

    #[test]
    fn transitivity_of_k4_is_one() {
        let g = k4();
        assert!((transitivity(&g, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transitivity_of_star_is_zero() {
        let g = Csr::from_edge_list(&EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3)]).simplify());
        assert_eq!(transitivity(&g, 0), 0.0);
    }

    #[test]
    fn clustering_of_k4_is_one() {
        let g = k4();
        // Each vertex of K4 sits on 3 triangles.
        assert!((average_clustering(&g, &[3, 3, 3, 3]) - 1.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 0, 3), 1.0);
    }

    #[test]
    fn clustering_handles_low_degree() {
        let g = Csr::from_edge_list(&EdgeList::new(3, vec![(0, 1)]).simplify());
        assert_eq!(local_clustering(&g, 2, 0), 0.0);
        assert_eq!(average_clustering(&g, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = Csr::from_edge_list(&EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3)]).simplify());
        assert_eq!(degree_histogram(&g), vec![0, 3, 0, 1]);
        assert!((average_degree(&g) - 1.5).abs() < 1e-12);
    }
}
