//! Degree-based vertex ordering.
//!
//! "Ordering the vertices in non-decreasing degree before the triangle
//! counting step leads to lower runtimes" (paper §3.1, citing
//! Arifuzzaman et al.); the 2D algorithm additionally *relies* on the
//! ordering for its load-balance argument (§5.1: successive rows have
//! similar non-zero counts) and for the local U/L split (§5.3: degree
//! comparison becomes label comparison). This module provides the
//! sequential counting-sort version; the distributed version lives in
//! `tc-core::preprocess` and is cross-validated against this one.

use crate::edgelist::{EdgeList, VertexId};

/// Computes the non-decreasing-degree permutation by counting sort.
///
/// Returns `perm` with `perm[old] = new`; ties broken by old id so the
/// permutation is deterministic.
pub fn degree_order(degrees: &[u32]) -> Vec<VertexId> {
    let n = degrees.len();
    let dmax = degrees.iter().copied().max().unwrap_or(0) as usize;
    // Histogram and exclusive prefix: start[d] = #vertices with degree < d.
    let mut start = vec![0usize; dmax + 2];
    for &d in degrees {
        start[d as usize + 1] += 1;
    }
    for i in 1..start.len() {
        start[i] += start[i - 1];
    }
    let mut perm = vec![0 as VertexId; n];
    for (old, &d) in degrees.iter().enumerate() {
        perm[old] = start[d as usize] as VertexId;
        start[d as usize] += 1;
    }
    perm
}

/// Inverse of a permutation given as `perm[old] = new`.
pub fn invert_permutation(perm: &[VertexId]) -> Vec<VertexId> {
    let mut inv = vec![0 as VertexId; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as VertexId;
    }
    inv
}

/// Relabels a simplified edge list into non-decreasing-degree order;
/// returns the relabeled list and the permutation (`perm[old] = new`).
pub fn relabel_by_degree(el: EdgeList) -> (EdgeList, Vec<VertexId>) {
    let perm = degree_order(&el.degrees());
    let out = el.relabel(&perm);
    (out, perm)
}

/// Checks the defining property of the ordering: `u < v` implies
/// `degree(u) <= degree(v)`.
pub fn is_degree_ordered(degrees: &[u32]) -> bool {
    degrees.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_degree_with_stable_ties() {
        let degrees = vec![3, 1, 2, 1, 0];
        let perm = degree_order(&degrees);
        // Sorted order: v4(0), v1(1), v3(1), v2(2), v0(3)
        assert_eq!(perm, vec![4, 1, 3, 2, 0]);
        let new_degrees: Vec<u32> = {
            let inv = invert_permutation(&perm);
            inv.iter().map(|&old| degrees[old as usize]).collect()
        };
        assert!(is_degree_ordered(&new_degrees));
    }

    #[test]
    fn invert_roundtrip() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        assert_eq!(invert_permutation(&inv), perm);
    }

    #[test]
    fn relabel_preserves_structure() {
        // Star: vertex 0 has degree 3, leaves degree 1.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3)]).simplify();
        let (out, perm) = relabel_by_degree(el);
        // Hub must get the largest label.
        assert_eq!(perm[0], 3);
        assert_eq!(out.num_edges(), 3);
        let d = out.degrees();
        assert!(is_degree_ordered(&d));
        assert_eq!(d, vec![1, 1, 1, 3]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(degree_order(&[]).is_empty());
        assert_eq!(degree_order(&[5]), vec![0]);
    }

    #[test]
    fn all_equal_degrees_is_identity() {
        let perm = degree_order(&[2, 2, 2, 2]);
        assert_eq!(perm, vec![0, 1, 2, 3]);
    }
}
