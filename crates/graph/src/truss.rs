//! k-truss decomposition.
//!
//! "The computations involved in triangle counting forms an important
//! step in computing the k-truss decomposition of a graph" (paper §1).
//! This module is that downstream application: every edge is assigned
//! its *trussness* — the largest `k` such that the edge survives in
//! the k-truss (the maximal subgraph where every edge sits on at least
//! `k − 2` triangles).
//!
//! The implementation is the standard support-peeling algorithm:
//! compute per-edge triangle supports (exactly the quantity
//! `tc_core::count_per_edge` produces in distributed form), then
//! repeatedly remove the minimum-support edge, decrementing the
//! supports of the other two edges of each triangle it closed.

use std::collections::HashMap;

use crate::csr::Csr;
use crate::edgelist::{EdgeList, VertexId};
use crate::error::GraphError;

/// Trussness per edge, parallel to the (sorted) edge list of the
/// simplified input graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrussDecomposition {
    /// Edges `(u, v)` with `u < v`, sorted.
    pub edges: Vec<(VertexId, VertexId)>,
    /// `trussness[i]` of `edges[i]`; `2` means the edge closes no
    /// surviving triangle.
    pub trussness: Vec<u32>,
}

impl TrussDecomposition {
    /// The maximum trussness over all edges (`2` for triangle-free
    /// graphs, `0` if there are no edges).
    pub fn max_truss(&self) -> u32 {
        self.trussness.iter().copied().max().unwrap_or(0)
    }

    /// Edges of the k-truss subgraph (trussness ≥ k).
    pub fn truss_edges(&self, k: u32) -> Vec<(VertexId, VertexId)> {
        self.edges.iter().zip(&self.trussness).filter(|&(_, &t)| t >= k).map(|(&e, _)| e).collect()
    }

    /// Trussness of a specific edge, if present.
    pub fn trussness_of(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).ok().map(|i| self.trussness[i])
    }
}

/// Computes the per-edge triangle supports of a simplified graph
/// (serial reference for `tc_core::count_per_edge`).
///
/// # Panics
///
/// Panics if `el` is not simplified; [`try_edge_supports`] reports
/// that as a typed error instead.
pub fn edge_supports(el: &EdgeList) -> Vec<u64> {
    match try_edge_supports(el) {
        Ok(sup) => sup,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`edge_supports`]: a non-simplified input comes back as
/// [`GraphError::NotSimple`] instead of a panic. Degenerate but valid
/// graphs — empty, edgeless, single-edge, stars — are `Ok`.
pub fn try_edge_supports(el: &EdgeList) -> Result<Vec<u64>, GraphError> {
    if !el.is_simple() {
        return Err(GraphError::NotSimple("edge_supports"));
    }
    let csr = Csr::from_edge_list(el);
    let idx: HashMap<(u32, u32), usize> =
        el.edges.iter().copied().enumerate().map(|(i, e)| (e, i)).collect();
    let mut sup = vec![0u64; el.edges.len()];
    for (i, &(u, v)) in el.edges.iter().enumerate() {
        // Intersect sorted adjacencies; count each triangle once by
        // requiring w > v (> u as well since u < v).
        let (mut a, mut b) = (csr.neighbors(u), csr.neighbors(v));
        // Skip to entries > v.
        let pa = a.partition_point(|&w| w <= v);
        let pb = b.partition_point(|&w| w <= v);
        a = &a[pa..];
        b = &b[pb..];
        let (mut x, mut y) = (0, 0);
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    let w = a[x];
                    sup[i] += 1;
                    sup[idx[&(u, w)]] += 1;
                    sup[idx[&(v, w)]] += 1;
                    x += 1;
                    y += 1;
                }
            }
        }
    }
    Ok(sup)
}

/// Runs the full truss decomposition.
///
/// # Panics
///
/// Panics if `el` is not simplified; [`try_truss_decomposition`]
/// reports that as a typed error instead.
pub fn truss_decomposition(el: &EdgeList) -> TrussDecomposition {
    match try_truss_decomposition(el) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`truss_decomposition`]: a non-simplified input comes back
/// as [`GraphError::NotSimple`] instead of a panic. Degenerate but
/// valid graphs — empty, edgeless, single-edge, stars, disconnected —
/// are `Ok`.
pub fn try_truss_decomposition(el: &EdgeList) -> Result<TrussDecomposition, GraphError> {
    let mut sup: Vec<u64> = try_edge_supports(el)?;
    let m = el.edges.len();
    let csr = Csr::from_edge_list(el);
    let idx: HashMap<(u32, u32), usize> =
        el.edges.iter().copied().enumerate().map(|(i, e)| (e, i)).collect();
    let mut alive = vec![true; m];
    let mut trussness = vec![2u32; m];

    // Bucket queue over supports (support < n, and only decreases).
    let max_sup = sup.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_sup + 1];
    for (i, &s) in sup.iter().enumerate() {
        buckets[s as usize].push(i);
    }

    let mut k = 2u32; // current truss level being peeled
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < m {
        // Find the lowest non-empty bucket (entries may be stale —
        // validated against `sup` on pop).
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let i = match buckets.get_mut(cursor).and_then(|b| b.pop()) {
            Some(i) => i,
            None => break,
        };
        if !alive[i] || sup[i] as usize != cursor {
            continue; // stale entry
        }
        // Peeling an edge with support s assigns trussness s + 2,
        // monotone in the peel order.
        k = k.max(cursor as u32 + 2);
        trussness[i] = k;
        alive[i] = false;
        processed += 1;

        // Decrement the supports of the companion edges of every
        // still-alive triangle through edge i.
        let (u, v) = el.edges[i];
        let (a, b) = (csr.neighbors(u), csr.neighbors(v));
        let (mut x, mut y) = (0, 0);
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    let w = a[x];
                    x += 1;
                    y += 1;
                    if w == u || w == v {
                        continue;
                    }
                    let e1 = idx[&(u.min(w), u.max(w))];
                    let e2 = idx[&(v.min(w), v.max(w))];
                    if alive[e1] && alive[e2] {
                        for &e in &[e1, e2] {
                            if sup[e] > 0 {
                                sup[e] -= 1;
                                let s = sup[e] as usize;
                                buckets[s].push(e);
                                cursor = cursor.min(s);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(TrussDecomposition { edges: el.edges.clone(), trussness })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u32) -> EdgeList {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        EdgeList::new(n as usize, edges).simplify()
    }

    #[test]
    fn complete_graph_is_a_kn_truss() {
        // Every edge of K5 sits on 3 triangles -> trussness 5.
        let d = truss_decomposition(&k(5));
        assert!(d.trussness.iter().all(|&t| t == 5));
        assert_eq!(d.max_truss(), 5);
        assert_eq!(d.truss_edges(5).len(), 10);
        assert!(d.truss_edges(6).is_empty());
    }

    #[test]
    fn triangle_is_a_3_truss() {
        let el = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify();
        let d = truss_decomposition(&el);
        assert_eq!(d.trussness, vec![3, 3, 3]);
    }

    #[test]
    fn tree_edges_have_trussness_2() {
        let el = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]).simplify();
        let d = truss_decomposition(&el);
        assert_eq!(d.trussness, vec![2, 2, 2]);
        assert_eq!(d.max_truss(), 2);
    }

    #[test]
    fn pendant_triangle_on_k4() {
        // K4 (trussness 4) plus a triangle hanging off vertex 3 via
        // vertices 4 and 5 (trussness 3).
        let mut edges = k(4).edges;
        edges.extend([(3, 4), (3, 5), (4, 5)]);
        let el = EdgeList::new(6, edges).simplify();
        let d = truss_decomposition(&el);
        for &(u, v) in &k(4).edges {
            assert_eq!(d.trussness_of(u, v), Some(4), "({u},{v})");
        }
        assert_eq!(d.trussness_of(3, 4), Some(3));
        assert_eq!(d.trussness_of(4, 5), Some(3));
        assert_eq!(d.trussness_of(9, 9), None);
    }

    #[test]
    fn supports_match_triangle_incidence() {
        let el = k(4);
        let sup = edge_supports(&el);
        // Every K4 edge closes 2 triangles.
        assert!(sup.iter().all(|&s| s == 2));
        // Sum of supports = 3 × triangle count (each triangle has 3 edges).
        assert_eq!(sup.iter().sum::<u64>(), 3 * 4);
    }

    #[test]
    fn empty_and_edgeless() {
        let d = truss_decomposition(&EdgeList::empty(5));
        assert_eq!(d.max_truss(), 0);
        assert!(d.edges.is_empty());
    }

    // Regression: degenerate inputs must come back Ok, never panic.

    #[test]
    fn try_variants_accept_empty_graph() {
        let el = EdgeList::empty(0);
        assert_eq!(try_edge_supports(&el), Ok(vec![]));
        let d = try_truss_decomposition(&el).unwrap();
        assert_eq!(d.max_truss(), 0);
    }

    #[test]
    fn try_variants_accept_single_edge() {
        let el = EdgeList::new(2, vec![(0, 1)]).simplify();
        assert_eq!(try_edge_supports(&el), Ok(vec![0]));
        let d = try_truss_decomposition(&el).unwrap();
        assert_eq!(d.trussness, vec![2]);
    }

    #[test]
    fn try_variants_accept_star_graph() {
        // A star closes no triangles: every edge has support 0 and
        // trussness 2.
        let star = EdgeList::new(6, (1..6).map(|v| (0, v)).collect()).simplify();
        assert_eq!(try_edge_supports(&star), Ok(vec![0; 5]));
        let d = try_truss_decomposition(&star).unwrap();
        assert_eq!(d.trussness, vec![2; 5]);
        assert_eq!(d.max_truss(), 2);
    }

    #[test]
    fn try_variants_accept_disconnected_graph() {
        // Two components: a triangle and a far-away single edge.
        let el = EdgeList::new(8, vec![(0, 1), (0, 2), (1, 2), (6, 7)]).simplify();
        let d = try_truss_decomposition(&el).unwrap();
        assert_eq!(d.trussness_of(0, 1), Some(3));
        assert_eq!(d.trussness_of(6, 7), Some(2));
    }

    #[test]
    fn try_variants_reject_unsimplified_input() {
        let dup = EdgeList::new(3, vec![(0, 1), (1, 0), (1, 2)]);
        assert!(!dup.is_simple());
        assert_eq!(try_edge_supports(&dup), Err(GraphError::NotSimple("edge_supports")));
        assert_eq!(
            try_truss_decomposition(&dup).unwrap_err(),
            GraphError::NotSimple("edge_supports")
        );
    }
}
