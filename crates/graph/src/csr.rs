//! Compressed sparse row (CSR) adjacency storage.
//!
//! The paper stores graphs "using compressed sparse row (CSR) format
//! prior to triangle counting" (§5). [`Csr`] is the symmetric
//! (full-adjacency) form; the upper/lower triangular splits used by
//! the 2D algorithm are built in `tc-core` from relabeled edge lists.

use crate::edgelist::{EdgeList, VertexId};

/// Immutable CSR adjacency structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Row pointer array, length `n + 1`.
    xadj: Vec<usize>,
    /// Concatenated adjacency lists, length `2·|E|` for symmetric graphs.
    adjncy: Vec<VertexId>,
}

impl Csr {
    /// Builds the symmetric CSR of a simplified edge list; every
    /// adjacency list is sorted ascending.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        debug_assert!(el.is_simple(), "CSR requires a simplified edge list");
        let n = el.num_vertices;
        let mut deg = vec![0usize; n];
        for &(u, v) in &el.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        let mut acc = 0usize;
        for d in &deg {
            acc += d;
            xadj.push(acc);
        }
        let mut adjncy = vec![0 as VertexId; acc];
        let mut cursor = xadj[..n].to_vec();
        for &(u, v) in &el.edges {
            adjncy[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges arrive sorted by (u, v) so rows of the `u` side are
        // already ascending, but the `v`-side insertions interleave;
        // sort each row to guarantee the invariant.
        for v in 0..n {
            adjncy[xadj[v]..xadj[v + 1]].sort_unstable();
        }
        Self { xadj, adjncy }
    }

    /// Builds directly from raw arrays (used by tests and converters).
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent.
    pub fn from_parts(xadj: Vec<usize>, adjncy: Vec<VertexId>) -> Self {
        assert!(!xadj.is_empty(), "xadj must have at least one entry");
        assert_eq!(*xadj.last().unwrap(), adjncy.len(), "xadj end must equal adjncy length");
        assert!(xadj.windows(2).all(|w| w[0] <= w[1]), "xadj must be non-decreasing");
        Self { xadj, adjncy }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Total adjacency entries (2·|E| for symmetric graphs).
    pub fn num_entries(&self) -> usize {
        self.adjncy.len()
    }

    /// Number of undirected edges (assumes symmetric storage).
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Adjacency list of `v` (sorted ascending).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjncy[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices()).map(|v| (self.xadj[v + 1] - self.xadj[v]) as u32).collect()
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices()).map(|v| self.xadj[v + 1] - self.xadj[v]).max().unwrap_or(0)
    }

    /// Row pointer array.
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Adjacency array.
    pub fn adjncy(&self) -> &[VertexId] {
        &self.adjncy
    }

    /// Membership test via binary search (rows are sorted).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates `(u, v)` with `u < v` once per undirected edge.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Csr {
        // 0-1, 0-2, 1-2, 2-3
        Csr::from_edge_list(&EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify())
    }

    #[test]
    fn builds_sorted_symmetric_rows() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn degree_and_max_degree() {
        let g = triangle_plus_tail();
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degrees(), vec![2, 2, 3, 1]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn isolated_vertices_have_empty_rows() {
        let g = Csr::from_edge_list(&EdgeList::new(5, vec![(1, 3)]).simplify());
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::empty(0));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "xadj end")]
    fn from_parts_validates() {
        let _ = Csr::from_parts(vec![0, 2], vec![1]);
    }
}
