//! Ownership maps for distributed decompositions.
//!
//! Three distributions appear in the paper's pipeline:
//!
//! 1. **1D block** — the assumed *input* distribution (§5.3: "each
//!    processor has n/p vertices and its associated adjacency lists").
//! 2. **1D cyclic** — the initial redistribution that breaks up
//!    localized dense regions (§5.3 "Initial redistribution").
//! 3. **2D cyclic** — the distribution of the task matrix and of the
//!    `U`/`L` operand blocks over the `√p × √p` grid (§5.1), with the
//!    local "transformed index `v ÷ √p`" addressing scheme.

use crate::edgelist::VertexId;

/// 1D block distribution of `n` vertices over `p` ranks: rank `r` owns
/// the contiguous range `[r·⌈n/p⌉ .. min((r+1)·⌈n/p⌉, n))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block1D {
    /// Total vertex count.
    pub n: usize,
    /// Rank count.
    pub p: usize,
}

impl Block1D {
    /// Creates the map.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        Self { n, p }
    }

    /// Vertices per rank (last rank may own fewer).
    pub fn chunk(&self) -> usize {
        self.n.div_ceil(self.p)
    }

    /// Owner of vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.n);
        if self.n == 0 {
            0
        } else {
            (v as usize / self.chunk()).min(self.p - 1)
        }
    }

    /// Vertex range `[lo, hi)` owned by `rank`.
    pub fn range(&self, rank: usize) -> (usize, usize) {
        let c = self.chunk();
        let lo = (rank * c).min(self.n);
        let hi = ((rank + 1) * c).min(self.n);
        (lo, hi)
    }

    /// Local index of `v` on its owner.
    pub fn local(&self, v: VertexId) -> usize {
        v as usize - self.range(self.owner(v)).0
    }
}

/// 1D cyclic distribution: rank `r` owns every vertex `v ≡ r (mod p)`;
/// the local index is `v ÷ p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cyclic1D {
    /// Total vertex count.
    pub n: usize,
    /// Rank count.
    pub p: usize,
}

impl Cyclic1D {
    /// Creates the map.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        Self { n, p }
    }

    /// Owner of vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        v as usize % self.p
    }

    /// Local index of `v` on its owner (`v ÷ p`).
    pub fn local(&self, v: VertexId) -> usize {
        v as usize / self.p
    }

    /// Global id of the `i`-th local vertex on `rank`.
    pub fn global(&self, rank: usize, i: usize) -> VertexId {
        (i * self.p + rank) as VertexId
    }

    /// Number of vertices owned by `rank`.
    pub fn count(&self, rank: usize) -> usize {
        if self.n == 0 {
            0
        } else {
            (self.n + self.p - 1 - rank) / self.p
        }
    }
}

/// 2D cyclic distribution over a `q × q` processor grid.
///
/// A matrix entry `(row, col)` belongs to grid cell
/// `(row % q, col % q)`; within a grid row the local row index is
/// `row ÷ q` (the paper's "transformed index `vᵢ ÷ √p`").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cyclic2D {
    /// Grid side length `√p`.
    pub q: usize,
}

impl Cyclic2D {
    /// Creates the map.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "grid side must be positive");
        Self { q }
    }

    /// Grid cell owning matrix entry `(row, col)`.
    pub fn owner(&self, row: VertexId, col: VertexId) -> (usize, usize) {
        (row as usize % self.q, col as usize % self.q)
    }

    /// Grid row class of a vertex used as a matrix row.
    pub fn row_class(&self, v: VertexId) -> usize {
        v as usize % self.q
    }

    /// Local (strided) index of a vertex within its class.
    pub fn local(&self, v: VertexId) -> usize {
        v as usize / self.q
    }

    /// Global vertex id for local index `i` in class `c`.
    pub fn global(&self, class: usize, i: usize) -> VertexId {
        (i * self.q + class) as VertexId
    }

    /// Number of vertices of `class` when the global count is `n`.
    pub fn class_count(&self, n: usize, class: usize) -> usize {
        if n == 0 {
            0
        } else {
            (n + self.q - 1 - class) / self.q
        }
    }

    /// Grid cell that *initially* holds operand block `U(row_class, col_class)`
    /// under the Cannon alignment: `P(x, y)` starts with
    /// `U(x, (x + y) % q)`, so block `U(r, c)` starts at column `(c − r) mod q`.
    pub fn u_initial_holder(&self, row_class: usize, col_class: usize) -> (usize, usize) {
        (row_class, (col_class + self.q - row_class) % self.q)
    }

    /// Grid cell that initially holds operand block `L(row_class, col_class)`:
    /// `P(x, y)` starts with `L((x + y) % q, y)`, so block `L(r, c)`
    /// starts at row `(r − c) mod q`.
    pub fn l_initial_holder(&self, row_class: usize, col_class: usize) -> (usize, usize) {
        ((row_class + self.q - col_class) % self.q, col_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block1d_ranges_cover_exactly() {
        for (n, p) in [(10, 3), (9, 3), (1, 4), (0, 2), (17, 5)] {
            let b = Block1D::new(n, p);
            let mut covered = 0;
            for r in 0..p {
                let (lo, hi) = b.range(r);
                assert!(lo <= hi);
                covered += hi - lo;
                for v in lo..hi {
                    assert_eq!(b.owner(v as VertexId), r, "n={n} p={p} v={v}");
                    assert_eq!(b.local(v as VertexId), v - lo);
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn cyclic1d_owner_local_global_consistency() {
        let c = Cyclic1D::new(23, 5);
        let mut seen = 0;
        for r in 0..5 {
            for i in 0..c.count(r) {
                let v = c.global(r, i);
                assert!(v < 23);
                assert_eq!(c.owner(v), r);
                assert_eq!(c.local(v), i);
                seen += 1;
            }
        }
        assert_eq!(seen, 23);
    }

    #[test]
    fn cyclic1d_counts_sum_to_n() {
        for (n, p) in [(0, 3), (1, 3), (100, 7), (13, 13), (12, 13)] {
            let c = Cyclic1D::new(n, p);
            let total: usize = (0..p).map(|r| c.count(r)).sum();
            assert_eq!(total, n, "n={n} p={p}");
        }
    }

    #[test]
    fn cyclic2d_local_global_roundtrip() {
        let m = Cyclic2D::new(4);
        for v in 0u32..37 {
            let c = m.row_class(v);
            let i = m.local(v);
            assert_eq!(m.global(c, i), v);
        }
        let total: usize = (0..4).map(|c| m.class_count(37, c)).sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn cyclic2d_owner_is_mod_pair() {
        let m = Cyclic2D::new(3);
        assert_eq!(m.owner(7, 5), (1, 2));
        assert_eq!(m.owner(0, 0), (0, 0));
        assert_eq!(m.owner(3, 3), (0, 0));
    }

    #[test]
    fn cannon_initial_alignment_is_consistent() {
        // P(x, y) starts with U(x, (x+y)%q) and L((x+y)%q, y); verify
        // the inverse maps agree for every block.
        let q = 5;
        let m = Cyclic2D::new(q);
        for r in 0..q {
            for c in 0..q {
                let (ux, uy) = m.u_initial_holder(r, c);
                assert_eq!(ux, r);
                assert_eq!((ux + uy) % q, c, "U({r},{c})");
                let (lx, ly) = m.l_initial_holder(r, c);
                assert_eq!(ly, c);
                assert_eq!((lx + ly) % q, r, "L({r},{c})");
            }
        }
    }
}
