//! Graph input/output.
//!
//! Three interchange formats:
//!
//! - **Text edge list** — one `u v` pair per line, `#`/`%` comments.
//! - **Binary edge list** — little-endian `u64 n, u64 m` header
//!   followed by `m` pairs of `u32`; the format used by the workload
//!   cache in `tc-bench` so large synthetic graphs are generated once.
//! - **Matrix Market** (`%%MatrixMarket matrix coordinate pattern
//!   general|symmetric`) — the format most public graph repositories
//!   (SuiteSparse, Graph Challenge — the paper's twitter/friendster
//!   sources) distribute.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edgelist::{EdgeList, VertexId};

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid content (message, 1-based line if known).
    Parse(String, Option<usize>),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(msg, Some(line)) => write!(f, "parse error at line {line}: {msg}"),
            IoError::Parse(msg, None) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Result alias for this module.
pub type Result<T> = std::result::Result<T, IoError>;

fn parse_pair(line: &str, lineno: usize) -> Result<Option<(u64, u64)>> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let mut it = t.split_whitespace();
    let a =
        it.next().ok_or_else(|| IoError::Parse("missing first endpoint".into(), Some(lineno)))?;
    let b =
        it.next().ok_or_else(|| IoError::Parse("missing second endpoint".into(), Some(lineno)))?;
    let a: u64 =
        a.parse().map_err(|_| IoError::Parse(format!("bad vertex id {a:?}"), Some(lineno)))?;
    let b: u64 =
        b.parse().map_err(|_| IoError::Parse(format!("bad vertex id {b:?}"), Some(lineno)))?;
    Ok(Some((a, b)))
}

/// Reads a text edge list; vertex count is `max id + 1`.
pub fn read_text_edges(reader: impl Read) -> Result<EdgeList> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        if let Some((a, b)) = parse_pair(&line, lineno)? {
            if a > u32::MAX as u64 || b > u32::MAX as u64 {
                return Err(IoError::Parse("vertex id exceeds u32".into(), Some(lineno)));
            }
            max_id = max_id.max(a).max(b);
            edges.push((a as VertexId, b as VertexId));
        }
    }
    let n = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    Ok(EdgeList::new(n, edges))
}

/// Reads a text edge-list file.
pub fn read_text_edges_path(path: impl AsRef<Path>) -> Result<EdgeList> {
    read_text_edges(File::open(path)?)
}

/// Writes a simplified edge list as text (`# n m` header comment).
pub fn write_text_edges(el: &EdgeList, writer: impl Write) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", el.num_vertices, el.num_edges())?;
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

const BIN_MAGIC: u64 = 0x5443_4247_5241_5048; // "TCBGRAPH"

/// Writes the compact binary format.
pub fn write_binary_edges(el: &EdgeList, writer: impl Write) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&BIN_MAGIC.to_le_bytes())?;
    w.write_all(&(el.num_vertices as u64).to_le_bytes())?;
    w.write_all(&(el.edges.len() as u64).to_le_bytes())?;
    for &(u, v) in &el.edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the binary format to a file path.
pub fn write_binary_edges_path(el: &EdgeList, path: impl AsRef<Path>) -> Result<()> {
    write_binary_edges(el, File::create(path)?)
}

/// Reads the compact binary format.
pub fn read_binary_edges(reader: impl Read) -> Result<EdgeList> {
    let mut r = BufReader::new(reader);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    if u64::from_le_bytes(buf8) != BIN_MAGIC {
        return Err(IoError::Parse("bad binary magic".into(), None));
    }
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut edges = Vec::with_capacity(m);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        if u as usize >= n || v as usize >= n {
            return Err(IoError::Parse("edge endpoint out of range".into(), None));
        }
        edges.push((u, v));
    }
    Ok(EdgeList::new(n, edges))
}

/// Reads the binary format from a file path.
pub fn read_binary_edges_path(path: impl AsRef<Path>) -> Result<EdgeList> {
    read_binary_edges(File::open(path)?)
}

/// Reads a Matrix Market coordinate-pattern file (1-based indices;
/// `general` or `symmetric`). Entry values, if present, are ignored
/// (pattern semantics), matching how graph repositories ship adjacency
/// matrices.
pub fn read_matrix_market(reader: impl Read) -> Result<EdgeList> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(IoError::Parse("empty file".into(), Some(1)));
    }
    let header = line.trim().to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket") {
        return Err(IoError::Parse("missing MatrixMarket banner".into(), Some(1)));
    }
    if !header.contains("coordinate") {
        return Err(IoError::Parse("only coordinate format supported".into(), Some(1)));
    }
    if !(header.contains("general") || header.contains("symmetric")) {
        return Err(IoError::Parse("only general/symmetric symmetry supported".into(), Some(1)));
    }

    // Skip comments to the size line.
    let mut lineno = 1usize;
    let (rows, cols, nnz) = loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(IoError::Parse("missing size line".into(), Some(lineno)));
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<u64> = t
            .split_whitespace()
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| IoError::Parse(format!("bad size field {s:?}"), Some(lineno)))
            })
            .collect::<Result<_>>()?;
        if parts.len() != 3 {
            return Err(IoError::Parse("size line needs 3 fields".into(), Some(lineno)));
        }
        break (parts[0], parts[1], parts[2]);
    };
    if rows != cols {
        return Err(IoError::Parse("adjacency matrix must be square".into(), Some(lineno)));
    }
    let n = rows as usize;
    let mut edges = Vec::with_capacity(nnz as usize);
    let mut seen = 0u64;
    while seen < nnz {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(IoError::Parse(
                format!("expected {nnz} entries, found {seen}"),
                Some(lineno),
            ));
        }
        lineno += 1;
        if let Some((a, b)) = parse_pair(&line, lineno)? {
            if a == 0 || b == 0 || a > rows || b > cols {
                return Err(IoError::Parse("index out of range (1-based)".into(), Some(lineno)));
            }
            edges.push(((a - 1) as VertexId, (b - 1) as VertexId));
            seen += 1;
        }
    }
    Ok(EdgeList::new(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let el = EdgeList::new(5, vec![(0, 1), (2, 4), (1, 3)]).simplify();
        let mut buf = Vec::new();
        write_text_edges(&el, &mut buf).unwrap();
        let back = read_text_edges(&buf[..]).unwrap().simplify();
        assert_eq!(back, el);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let src = "# comment\n\n0 1\n% more\n1 2\n";
        let el = read_text_edges(src.as_bytes()).unwrap();
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(el.num_vertices, 3);
    }

    #[test]
    fn text_reports_bad_line() {
        let src = "0 1\nfoo bar\n";
        let err = read_text_edges(src.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse(_, Some(2))));
    }

    #[test]
    fn binary_roundtrip() {
        let el = EdgeList::new(100, vec![(0, 99), (50, 51), (2, 3)]).simplify();
        let mut buf = Vec::new();
        write_binary_edges(&el, &mut buf).unwrap();
        let back = read_binary_edges(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_corruption() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let mut buf = Vec::new();
        write_binary_edges(&el, &mut buf).unwrap();
        buf[0] ^= 0xff;
        assert!(read_binary_edges(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_endpoint() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&super::BIN_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes()); // n = 2
        buf.extend_from_slice(&1u64.to_le_bytes()); // m = 1
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes()); // 7 >= n
        assert!(read_binary_edges(&buf[..]).is_err());
    }

    #[test]
    fn matrix_market_symmetric() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   % triangle\n\
                   3 3 3\n\
                   2 1\n3 1\n3 2\n";
        let el = read_matrix_market(src.as_bytes()).unwrap().simplify();
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn matrix_market_general_with_values_field() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 2\n\
                   1 2 1.0\n2 1 1.0\n";
        let el = read_matrix_market(src.as_bytes()).unwrap().simplify();
        assert_eq!(el.edges, vec![(0, 1)]);
    }

    #[test]
    fn matrix_market_rejects_rectangular() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_zero_index() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_truncated() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }
}
