//! Graph input/output.
//!
//! Three interchange formats:
//!
//! - **Text edge list** — one `u v` pair per line, `#`/`%` comments.
//! - **Binary edge list** — little-endian `u64 n, u64 m` header
//!   followed by `m` pairs of `u32`; the format used by the workload
//!   cache in `tc-bench` so large synthetic graphs are generated once.
//! - **Matrix Market** (`%%MatrixMarket matrix coordinate pattern
//!   general|symmetric`) — the format most public graph repositories
//!   (SuiteSparse, Graph Challenge — the paper's twitter/friendster
//!   sources) distribute.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edgelist::{EdgeList, VertexId};

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid content (message, 1-based line if known).
    Parse(String, Option<usize>),
    /// Structurally invalid binary content; `offset` is the absolute
    /// byte position of the offending (or missing) bytes.
    Corrupt {
        /// What is wrong with the bytes at `offset`.
        msg: String,
        /// Absolute byte offset from the start of the stream.
        offset: u64,
    },
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(msg, Some(line)) => write!(f, "parse error at line {line}: {msg}"),
            IoError::Parse(msg, None) => write!(f, "parse error: {msg}"),
            IoError::Corrupt { msg, offset } => {
                write!(f, "corrupt binary at byte {offset}: {msg}")
            }
        }
    }
}

impl std::error::Error for IoError {}

/// Hard ceiling on the edge-record count a reader accepts from an
/// untrusted header (duplicates included). Far above any real graph,
/// but low enough that `records × 8` bytes can never overflow the
/// address computations downstream.
pub const MAX_EDGE_RECORDS: u64 = (usize::MAX / 32) as u64;

/// Result alias for this module.
pub type Result<T> = std::result::Result<T, IoError>;

fn parse_pair(line: &str, lineno: usize) -> Result<Option<(u64, u64)>> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let mut it = t.split_whitespace();
    let a =
        it.next().ok_or_else(|| IoError::Parse("missing first endpoint".into(), Some(lineno)))?;
    let b =
        it.next().ok_or_else(|| IoError::Parse("missing second endpoint".into(), Some(lineno)))?;
    let a: u64 =
        a.parse().map_err(|_| IoError::Parse(format!("bad vertex id {a:?}"), Some(lineno)))?;
    let b: u64 =
        b.parse().map_err(|_| IoError::Parse(format!("bad vertex id {b:?}"), Some(lineno)))?;
    Ok(Some((a, b)))
}

/// Reads a text edge list; vertex count is `max id + 1`.
pub fn read_text_edges(reader: impl Read) -> Result<EdgeList> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        if let Some((a, b)) = parse_pair(&line, lineno)? {
            if a > u32::MAX as u64 || b > u32::MAX as u64 {
                return Err(IoError::Parse("vertex id exceeds u32".into(), Some(lineno)));
            }
            max_id = max_id.max(a).max(b);
            edges.push((a as VertexId, b as VertexId));
        }
    }
    let n = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    Ok(EdgeList::new(n, edges))
}

/// Reads a text edge-list file.
pub fn read_text_edges_path(path: impl AsRef<Path>) -> Result<EdgeList> {
    read_text_edges(File::open(path)?)
}

/// Writes a simplified edge list as text (`# n m` header comment).
pub fn write_text_edges(el: &EdgeList, writer: impl Write) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", el.num_vertices, el.num_edges())?;
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

const BIN_MAGIC: u64 = 0x5443_4247_5241_5048; // "TCBGRAPH"

/// Writes the compact binary format.
pub fn write_binary_edges(el: &EdgeList, writer: impl Write) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&BIN_MAGIC.to_le_bytes())?;
    w.write_all(&(el.num_vertices as u64).to_le_bytes())?;
    w.write_all(&(el.edges.len() as u64).to_le_bytes())?;
    for &(u, v) in &el.edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the binary format to a file path.
pub fn write_binary_edges_path(el: &EdgeList, path: impl AsRef<Path>) -> Result<()> {
    write_binary_edges(el, File::create(path)?)
}

/// Reads `buf.len()` bytes starting at absolute offset `offset`,
/// turning a short read into a [`IoError::Corrupt`] that names what
/// was expected there. Shared by every hardened binary reader in the
/// crate (edge lists here, adjacency snapshots in [`crate::adj`]).
pub(crate) fn read_fully(
    r: &mut impl Read,
    buf: &mut [u8],
    offset: u64,
    what: impl FnOnce() -> String,
) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            IoError::Corrupt { msg: format!("truncated: {} missing", what()), offset }
        } else {
            IoError::Io(e)
        }
    })
}

/// Streaming CRC32c (Castagnoli) — the checksum behind the versioned
/// binary snapshots in [`crate::adj`]. Same polynomial as the `tc-mps`
/// wire frames, reimplemented here so the graph substrate stays
/// dependency-free.
#[derive(Debug, Clone)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Self(!0u32)
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.0 = (self.0 >> 8) ^ CRC32C_TABLE[((self.0 ^ byte as u32) & 0xff) as usize];
        }
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

/// CRC32c of one slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

const CRC32C_TABLE: [u32; 256] = build_crc32c_table();

const fn build_crc32c_table() -> [u32; 256] {
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Reads the compact binary format.
///
/// Every structural defect — truncation (at the header or mid-edge),
/// a vertex count outside the u32 id space, an edge count that could
/// not fit in memory, an endpoint `>= n` — is a typed
/// [`IoError::Corrupt`] carrying the byte offset and, for per-edge
/// defects, the edge index. The header's edge count is never trusted
/// for the allocation, so a hostile 16-byte file cannot reserve
/// gigabytes before its first record fails to parse.
pub fn read_binary_edges(reader: impl Read) -> Result<EdgeList> {
    let mut r = BufReader::new(reader);
    let mut buf8 = [0u8; 8];
    read_fully(&mut r, &mut buf8, 0, || "8-byte magic".into())?;
    let magic = u64::from_le_bytes(buf8);
    if magic != BIN_MAGIC {
        return Err(IoError::Corrupt {
            msg: format!("bad magic {magic:#018x} (expected {BIN_MAGIC:#018x})"),
            offset: 0,
        });
    }
    read_fully(&mut r, &mut buf8, 8, || "vertex-count header".into())?;
    let n64 = u64::from_le_bytes(buf8);
    if n64 > u64::from(u32::MAX) + 1 {
        return Err(IoError::Corrupt {
            msg: format!("vertex count {n64} exceeds the u32 id space"),
            offset: 8,
        });
    }
    let n = n64 as usize;
    read_fully(&mut r, &mut buf8, 16, || "edge-count header".into())?;
    let m64 = u64::from_le_bytes(buf8);
    if m64 > MAX_EDGE_RECORDS {
        return Err(IoError::Corrupt {
            msg: format!(
                "edge count {m64} overflows the record limit {MAX_EDGE_RECORDS} \
                 (duplicates included)"
            ),
            offset: 16,
        });
    }
    let m = m64 as usize;
    let mut edges = Vec::with_capacity(m.min(1 << 20));
    let mut buf4 = [0u8; 4];
    let mut off = 24u64;
    for i in 0..m {
        read_fully(&mut r, &mut buf4, off, || format!("edge {i} of {m}"))?;
        let u = u32::from_le_bytes(buf4);
        read_fully(&mut r, &mut buf4, off + 4, || format!("edge {i} of {m}"))?;
        let v = u32::from_le_bytes(buf4);
        if u as usize >= n || v as usize >= n {
            let bad = if u as usize >= n { u } else { v };
            return Err(IoError::Corrupt {
                msg: format!("edge {i}: endpoint {bad} out of range (n = {n})"),
                offset: off,
            });
        }
        edges.push((u, v));
        off += 8;
    }
    Ok(EdgeList::new(n, edges))
}

/// Reads the binary format from a file path.
pub fn read_binary_edges_path(path: impl AsRef<Path>) -> Result<EdgeList> {
    read_binary_edges(File::open(path)?)
}

/// Reads a Matrix Market coordinate-pattern file (1-based indices;
/// `general` or `symmetric`). Entry values, if present, are ignored
/// (pattern semantics), matching how graph repositories ship adjacency
/// matrices.
pub fn read_matrix_market(reader: impl Read) -> Result<EdgeList> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(IoError::Parse("empty file".into(), Some(1)));
    }
    let header = line.trim().to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket") {
        return Err(IoError::Parse("missing MatrixMarket banner".into(), Some(1)));
    }
    if !header.contains("coordinate") {
        return Err(IoError::Parse("only coordinate format supported".into(), Some(1)));
    }
    if !(header.contains("general") || header.contains("symmetric")) {
        return Err(IoError::Parse("only general/symmetric symmetry supported".into(), Some(1)));
    }

    // Skip comments to the size line.
    let mut lineno = 1usize;
    let (rows, cols, nnz) = loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(IoError::Parse("missing size line".into(), Some(lineno)));
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<u64> = t
            .split_whitespace()
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| IoError::Parse(format!("bad size field {s:?}"), Some(lineno)))
            })
            .collect::<Result<_>>()?;
        if parts.len() != 3 {
            return Err(IoError::Parse("size line needs 3 fields".into(), Some(lineno)));
        }
        break (parts[0], parts[1], parts[2]);
    };
    if rows != cols {
        return Err(IoError::Parse("adjacency matrix must be square".into(), Some(lineno)));
    }
    if nnz > MAX_EDGE_RECORDS {
        return Err(IoError::Parse(
            format!("entry count {nnz} overflows the record limit {MAX_EDGE_RECORDS}"),
            Some(lineno),
        ));
    }
    let n = rows as usize;
    // Entries arrive one text line each; trust actual lines, not the
    // header, for the allocation.
    let mut edges = Vec::with_capacity((nnz as usize).min(1 << 20));
    let mut seen = 0u64;
    while seen < nnz {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(IoError::Parse(
                format!("expected {nnz} entries, found {seen}"),
                Some(lineno),
            ));
        }
        lineno += 1;
        if let Some((a, b)) = parse_pair(&line, lineno)? {
            if a == 0 || b == 0 || a > rows || b > cols {
                return Err(IoError::Parse("index out of range (1-based)".into(), Some(lineno)));
            }
            edges.push(((a - 1) as VertexId, (b - 1) as VertexId));
            seen += 1;
        }
    }
    Ok(EdgeList::new(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let el = EdgeList::new(5, vec![(0, 1), (2, 4), (1, 3)]).simplify();
        let mut buf = Vec::new();
        write_text_edges(&el, &mut buf).unwrap();
        let back = read_text_edges(&buf[..]).unwrap().simplify();
        assert_eq!(back, el);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let src = "# comment\n\n0 1\n% more\n1 2\n";
        let el = read_text_edges(src.as_bytes()).unwrap();
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(el.num_vertices, 3);
    }

    #[test]
    fn text_reports_bad_line() {
        let src = "0 1\nfoo bar\n";
        let err = read_text_edges(src.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse(_, Some(2))));
    }

    #[test]
    fn binary_roundtrip() {
        let el = EdgeList::new(100, vec![(0, 99), (50, 51), (2, 3)]).simplify();
        let mut buf = Vec::new();
        write_binary_edges(&el, &mut buf).unwrap();
        let back = read_binary_edges(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_corruption() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let mut buf = Vec::new();
        write_binary_edges(&el, &mut buf).unwrap();
        buf[0] ^= 0xff;
        assert!(read_binary_edges(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_endpoint() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&super::BIN_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes()); // n = 2
        buf.extend_from_slice(&1u64.to_le_bytes()); // m = 1
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes()); // 7 >= n
        match read_binary_edges(&buf[..]).unwrap_err() {
            IoError::Corrupt { msg, offset } => {
                assert_eq!(offset, 24, "offset of the bad edge record");
                assert!(msg.contains("edge 0"), "{msg}");
                assert!(msg.contains('7'), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_truncated_header_reports_offset() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let mut buf = Vec::new();
        write_binary_edges(&el, &mut buf).unwrap();
        buf.truncate(20); // mid edge-count field
        match read_binary_edges(&buf[..]).unwrap_err() {
            IoError::Corrupt { msg, offset } => {
                assert_eq!(offset, 16);
                assert!(msg.contains("edge-count header"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_truncated_mid_stream_reports_edge_and_offset() {
        let el = EdgeList::new(10, vec![(0, 1), (2, 3), (4, 5)]);
        let mut buf = Vec::new();
        write_binary_edges(&el, &mut buf).unwrap();
        buf.truncate(buf.len() - 2); // lose half of the last endpoint
        match read_binary_edges(&buf[..]).unwrap_err() {
            IoError::Corrupt { msg, offset } => {
                assert_eq!(offset, 24 + 2 * 8 + 4, "offset of the missing endpoint");
                assert!(msg.contains("edge 2 of 3"), "{msg}");
                assert!(msg.contains("truncated"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_overflowing_edge_count_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&super::BIN_MAGIC.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd m
        match read_binary_edges(&buf[..]).unwrap_err() {
            IoError::Corrupt { msg, offset } => {
                assert_eq!(offset, 16);
                assert!(msg.contains("edge count"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_huge_plausible_edge_count_does_not_preallocate() {
        // Claims 2^40 edges but carries none: must fail on truncation
        // at edge 0 without first reserving 8 TiB for the header's m.
        let mut buf = Vec::new();
        buf.extend_from_slice(&super::BIN_MAGIC.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        match read_binary_edges(&buf[..]).unwrap_err() {
            IoError::Corrupt { msg, offset } => {
                assert_eq!(offset, 24);
                assert!(msg.contains("edge 0"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_vertex_count_beyond_u32() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&super::BIN_MAGIC.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_binary_edges(&buf[..]).unwrap_err() {
            IoError::Corrupt { msg, offset } => {
                assert_eq!(offset, 8);
                assert!(msg.contains("vertex count"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_error_display_names_the_offset() {
        let e = IoError::Corrupt { msg: "truncated: edge 2 of 3 missing".into(), offset: 44 };
        let s = e.to_string();
        assert!(s.contains("byte 44"), "{s}");
        assert!(s.contains("edge 2 of 3"), "{s}");
    }

    #[test]
    fn matrix_market_symmetric() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   % triangle\n\
                   3 3 3\n\
                   2 1\n3 1\n3 2\n";
        let el = read_matrix_market(src.as_bytes()).unwrap().simplify();
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn matrix_market_general_with_values_field() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 2\n\
                   1 2 1.0\n2 1 1.0\n";
        let el = read_matrix_market(src.as_bytes()).unwrap().simplify();
        assert_eq!(el.edges, vec![(0, 1)]);
    }

    #[test]
    fn matrix_market_rejects_rectangular() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_zero_index() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_truncated() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn crc32c_known_answer_and_streaming() {
        // The canonical CRC32c check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        let mut c = Crc32c::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xE306_9283, "streaming matches one-shot");
    }
}
