//! Fast open-addressing vertex set.
//!
//! Map-based set intersection dominates triangle-counting kernels
//! (paper §3.1: "map-based approaches are faster than list-based"),
//! so this set is tuned for that use: `u32` keys, multiply-shift
//! hashing, linear probing, and O(1) reuse between rows via generation
//! stamps instead of clearing.

use crate::edgelist::VertexId;

const HASH_MULT: u32 = 0x9e37_79b1; // 2^32 / golden ratio

/// A reusable set of vertex ids with stamped O(1) reset.
#[derive(Debug, Clone)]
pub struct VertexSet {
    keys: Vec<VertexId>,
    stamps: Vec<u32>,
    generation: u32,
    mask: u32,
    shift: u32,
    len: usize,
}

impl VertexSet {
    /// Creates a set able to hold `capacity` elements with load factor
    /// ≤ 0.5 (table size = next power of two ≥ 2·capacity).
    pub fn with_capacity(capacity: usize) -> Self {
        let size = (2 * capacity.max(1)).next_power_of_two();
        Self {
            keys: vec![0; size],
            stamps: vec![0; size],
            generation: 1,
            mask: (size - 1) as u32,
            shift: 32 - size.trailing_zeros(),
            len: 0,
        }
    }

    /// Table size (power of two).
    pub fn table_size(&self) -> usize {
        self.keys.len()
    }

    /// Number of elements currently present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, key: VertexId) -> u32 {
        key.wrapping_mul(HASH_MULT) >> self.shift
    }

    /// Empties the set in O(1) by advancing the generation stamp.
    pub fn clear(&mut self) {
        self.len = 0;
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: old stamps could alias; hard reset.
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    /// Inserts `key`; returns true if newly added.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the table is over-full — construction sizes
    /// for the caller's maximum row length, so this is a logic error.
    #[inline]
    pub fn insert(&mut self, key: VertexId) -> bool {
        debug_assert!(self.len < self.keys.len(), "vertex set over capacity");
        let mut i = self.slot(key);
        loop {
            if self.stamps[i as usize] != self.generation {
                self.stamps[i as usize] = self.generation;
                self.keys[i as usize] = key;
                self.len += 1;
                return true;
            }
            if self.keys[i as usize] == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, key: VertexId) -> bool {
        let mut i = self.slot(key);
        loop {
            if self.stamps[i as usize] != self.generation {
                return false;
            }
            if self.keys[i as usize] == key {
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts every element of `row` (convenience for hashing an
    /// adjacency list).
    pub fn insert_all(&mut self, row: &[VertexId]) {
        for &k in row {
            self.insert(k);
        }
    }

    /// Counts how many elements of `probes` are present.
    #[inline]
    pub fn count_hits(&self, probes: &[VertexId]) -> u64 {
        probes.iter().filter(|&&k| self.contains(k)).count() as u64
    }
}

/// Counts `|a ∩ b|` for two sorted slices by merging (the paper's
/// "list-based" intersection, kept as the reference and as the
/// baseline the map-based kernels are benchmarked against).
pub fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_basic() {
        let mut s = VertexSet::with_capacity(8);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(1000));
        assert!(s.contains(5));
        assert!(s.contains(1000));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_is_cheap_and_complete() {
        let mut s = VertexSet::with_capacity(4);
        s.insert_all(&[1, 2, 3, 4]);
        s.clear();
        assert!(s.is_empty());
        for k in 1..=4 {
            assert!(!s.contains(k));
        }
        s.insert(2);
        assert!(s.contains(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn survives_generation_wrap() {
        let mut s = VertexSet::with_capacity(2);
        s.generation = u32::MAX - 1;
        s.insert(7);
        s.clear(); // -> u32::MAX
        s.clear(); // wraps -> hard reset to 1
        assert!(!s.contains(7));
        s.insert(9);
        assert!(s.contains(9));
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        // Table of size 2*cap; force many inserts mapping around.
        let mut s = VertexSet::with_capacity(64);
        let keys: Vec<u32> = (0..64).map(|i| i * 1024).collect();
        for &k in &keys {
            s.insert(k);
        }
        for &k in &keys {
            assert!(s.contains(k), "missing {k}");
        }
        assert_eq!(s.count_hits(&keys), 64);
        assert_eq!(s.count_hits(&[3, 5, 7]), 0);
    }

    #[test]
    fn sorted_intersection_reference() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn set_agrees_with_sorted_intersection() {
        let a: Vec<u32> = (0..200).step_by(3).collect();
        let b: Vec<u32> = (0..200).step_by(7).collect();
        let mut s = VertexSet::with_capacity(a.len());
        s.insert_all(&a);
        assert_eq!(s.count_hits(&b), sorted_intersection_count(&a, &b));
    }
}
