//! Doubly-compressed sparse row storage.
//!
//! With a 2D cyclic decomposition "multiple vertices allocated to a
//! processor may not contain any adjacent vertices" (paper §5.2); the
//! fix — inspired by Buluç & Gilbert's DCSR — keeps an auxiliary list
//! of the rows that are non-empty so kernels skip empty rows without
//! losing O(1) row indexing. [`Dcsr`] is that structure: a plain CSR
//! plus the non-empty row index.

use crate::csr::Csr;
use crate::edgelist::VertexId;

/// CSR plus an index of non-empty rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dcsr {
    xadj: Vec<usize>,
    adjncy: Vec<VertexId>,
    /// Row ids with at least one entry, ascending.
    nonempty: Vec<VertexId>,
}

impl Dcsr {
    /// Wraps raw CSR arrays, computing the non-empty row index.
    pub fn from_parts(xadj: Vec<usize>, adjncy: Vec<VertexId>) -> Self {
        assert!(!xadj.is_empty(), "xadj must have at least one entry");
        assert_eq!(*xadj.last().unwrap(), adjncy.len(), "xadj end must equal adjncy length");
        let nonempty =
            (0..xadj.len() - 1).filter(|&r| xadj[r + 1] > xadj[r]).map(|r| r as VertexId).collect();
        Self { xadj, adjncy, nonempty }
    }

    /// Converts a full CSR.
    pub fn from_csr(csr: &Csr) -> Self {
        Self::from_parts(csr.xadj().to_vec(), csr.adjncy().to_vec())
    }

    /// Number of rows (including empty ones).
    pub fn num_rows(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of stored entries.
    pub fn num_entries(&self) -> usize {
        self.adjncy.len()
    }

    /// Number of non-empty rows.
    pub fn num_nonempty(&self) -> usize {
        self.nonempty.len()
    }

    /// Entries of row `r` (possibly empty).
    pub fn row(&self, r: usize) -> &[VertexId] {
        &self.adjncy[self.xadj[r]..self.xadj[r + 1]]
    }

    /// The non-empty row index (ascending row ids).
    pub fn nonempty_rows(&self) -> &[VertexId] {
        &self.nonempty
    }

    /// Iterates `(row, entries)` over non-empty rows only — the
    /// "doubly sparse traversal" of the paper.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        self.nonempty.iter().map(move |&r| (r, self.row(r as usize)))
    }

    /// Fraction of rows that are empty (diagnostic for the
    /// optimization's benefit).
    pub fn empty_fraction(&self) -> f64 {
        if self.num_rows() == 0 {
            0.0
        } else {
            1.0 - self.nonempty.len() as f64 / self.num_rows() as f64
        }
    }

    /// Raw row-pointer array.
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw adjacency array.
    pub fn adjncy(&self) -> &[VertexId] {
        &self.adjncy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    #[test]
    fn nonempty_index_skips_holes() {
        // Rows: 0 -> [5], 1 -> [], 2 -> [], 3 -> [7, 9], 4 -> []
        let d = Dcsr::from_parts(vec![0, 1, 1, 1, 3, 3], vec![5, 7, 9]);
        assert_eq!(d.num_rows(), 5);
        assert_eq!(d.nonempty_rows(), &[0, 3]);
        assert_eq!(d.row(3), &[7, 9]);
        assert_eq!(d.row(1), &[] as &[u32]);
        let visited: Vec<_> = d.iter_nonempty().map(|(r, _)| r).collect();
        assert_eq!(visited, vec![0, 3]);
    }

    #[test]
    fn empty_fraction_diagnostic() {
        let d = Dcsr::from_parts(vec![0, 1, 1, 1, 3, 3], vec![5, 7, 9]);
        assert!((d.empty_fraction() - 0.6).abs() < 1e-12);
        let all_empty = Dcsr::from_parts(vec![0, 0, 0], vec![]);
        assert!((all_empty.empty_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_csr_matches_rows() {
        let csr = Csr::from_edge_list(&EdgeList::new(4, vec![(0, 2), (2, 3)]).simplify());
        let d = Dcsr::from_csr(&csr);
        assert_eq!(d.num_rows(), 4);
        assert_eq!(d.nonempty_rows(), &[0, 2, 3]);
        assert_eq!(d.row(2), csr.neighbors(2));
        assert_eq!(d.num_entries(), csr.num_entries());
    }

    #[test]
    fn zero_rows() {
        let d = Dcsr::from_parts(vec![0], vec![]);
        assert_eq!(d.num_rows(), 0);
        assert_eq!(d.num_nonempty(), 0);
        assert_eq!(d.iter_nonempty().count(), 0);
    }
}
