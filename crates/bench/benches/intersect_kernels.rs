//! Adaptive intersection-kernel micro-benchmarks: the per-shift kernel
//! under each [`tc_core::KernelStrategy`] across a density × skew
//! sweep, against both owned [`SparseBlock`]s and borrowed
//! [`SparseBlockRef`] views (the zero-copy pipeline's operand form),
//! plus the raw merge primitive against its scalar fallback.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc_core::blocks::{BlockView, SparseBlock, SparseBlockRef};
use tc_core::count::count_shift;
use tc_core::intersect::{intersect_count, intersect_count_scalar, KernelState};
use tc_core::{KernelStrategy, TcConfig};
use tc_gen::{er::gnm, graph500};
use tc_graph::EdgeList;

/// Single-rank (q = 1) block set from an edge list: one `(a, b)` task
/// per edge, upper adjacency as both operands (kernel_edge_cases'
/// harness shape).
fn blocks_of(el: &EdgeList) -> (SparseBlock, SparseBlock, SparseBlock) {
    let n = el.num_vertices.max(1);
    let mut u_pairs = el.edges.clone();
    let mut p_pairs = el.edges.clone();
    let mut t_pairs: Vec<(u32, u32)> = el.edges.iter().map(|&(u, v)| (v, u)).collect();
    (
        SparseBlock::from_pairs(n, 1, &mut t_pairs),
        SparseBlock::from_pairs(n, 1, &mut u_pairs),
        SparseBlock::from_pairs(n, 1, &mut p_pairs),
    )
}

const STRATEGIES: [(&str, KernelStrategy); 4] = [
    ("auto", KernelStrategy::Auto),
    ("hash", KernelStrategy::Hash),
    ("merge", KernelStrategy::Merge),
    ("bitmap", KernelStrategy::Bitmap),
];

fn bench_strategies(c: &mut Criterion) {
    // Skew sweep: RMAT (heavy hubs) vs Erdős–Rényi (uniform degrees)
    // at sparse and dense edge factors.
    let cases: Vec<(&str, EdgeList)> = vec![
        ("rmat_s9", graph500(9, 42).simplify()),
        ("er_sparse", gnm(512, 2048, 42)),
        ("er_dense", gnm(512, 16384, 42)),
    ];
    for (name, el) in &cases {
        let (task, ub, pb) = blocks_of(el);
        let mut group = c.benchmark_group(format!("count_shift_{name}"));
        for (sname, strategy) in STRATEGIES {
            let cfg = TcConfig::default().with_kernel(strategy);
            group.bench_function(format!("owned_{sname}"), |b| {
                let mut ks = KernelState::new(ub.max_row_len(), 1);
                b.iter(|| {
                    let mut tasks = 0u64;
                    count_shift(black_box(&task), &ub, &pb, &mut ks, 1, &cfg, &mut tasks)
                });
            });
            // Borrowed views of wire bytes: the steady-state operand
            // form of the overlapped pipeline.
            let (ub_blob, pb_blob) = (ub.to_blob(), pb.to_blob());
            group.bench_function(format!("borrowed_{sname}"), |b| {
                let hash = SparseBlockRef::from_blob(&ub_blob);
                let probe = SparseBlockRef::from_blob(&pb_blob);
                let mut ks = KernelState::new(hash.max_row_len(), 1);
                b.iter(|| {
                    let mut tasks = 0u64;
                    count_shift(black_box(&task), &hash, &probe, &mut ks, 1, &cfg, &mut tasks)
                });
            });
        }
        group.finish();
    }
}

fn bench_merge_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_primitive");
    for (dname, gap) in [("dense", 2u32), ("sparse", 17)] {
        for len in [16usize, 128, 1024] {
            let a: Vec<u32> = (0..len as u32).map(|i| i * gap).collect();
            let b: Vec<u32> = (0..len as u32).map(|i| i * gap + gap / 2 + (i & 1)).collect();
            group.bench_function(format!("simd_{dname}_len{len}"), |bch| {
                bch.iter(|| intersect_count(black_box(&a), black_box(&b)));
            });
            group.bench_function(format!("scalar_{dname}_len{len}"), |bch| {
                bch.iter(|| intersect_count_scalar(black_box(&a), black_box(&b)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_merge_primitive);
criterion_main!(benches);
