//! Serial kernel micro-benchmarks: the §3.1 design space (list vs map
//! intersection × ⟨i,j,k⟩ vs ⟨j,i,k⟩ enumeration) that motivates the
//! paper's choice of map-based ⟨j,i,k⟩.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tc_baselines::serial::{count_oriented, Enumeration, Intersection, Oriented};
use tc_gen::graph500;

fn bench_kernels(c: &mut Criterion) {
    let el = graph500(12, 42).simplify();
    let g = Oriented::build(&el);
    let mut group = c.benchmark_group("serial_kernels_g500_s12");
    for (name, e, m) in [
        ("list_ijk", Enumeration::Ijk, Intersection::List),
        ("map_ijk", Enumeration::Ijk, Intersection::Map),
        ("list_jik", Enumeration::Jik, Intersection::List),
        ("map_jik", Enumeration::Jik, Intersection::Map),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| count_oriented(black_box(&g), e, m));
        });
    }
    group.finish();
}

fn bench_shared_threads(c: &mut Criterion) {
    let el = graph500(12, 42).simplify();
    let g = Oriented::build(&el);
    let mut group = c.benchmark_group("shared_memory_threads");
    for t in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| tc_baselines::shared::count_shared_oriented(black_box(&g), t));
        });
    }
    group.finish();
}

fn bench_orientation_build(c: &mut Criterion) {
    let el = graph500(12, 42).simplify();
    c.bench_function("orientation_build_g500_s12", |b| {
        b.iter(|| Oriented::build(black_box(&el)));
    });
}

criterion_group!(benches, bench_kernels, bench_shared_threads, bench_orientation_build);
criterion_main!(benches);
