//! Message-passing substrate micro-benchmarks: collective latency and
//! all-to-all throughput at the grid sizes the algorithm uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc_mps::Universe;

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(20);
    for p in [4usize, 16] {
        group.bench_function(format!("barrier_x100_p{p}"), |b| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    for _ in 0..100 {
                        comm.barrier().unwrap();
                    }
                })
            });
        });
        group.bench_function(format!("allreduce_x100_p{p}"), |b| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    let mut acc = comm.rank() as u64;
                    for _ in 0..100 {
                        acc = comm.allreduce_sum_u64(acc).unwrap() % 1_000_003;
                    }
                    acc
                })
            });
        });
    }
    group.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoallv");
    group.sample_size(20);
    for (p, per_dest) in [(4usize, 10_000usize), (16, 2_500)] {
        group.bench_function(format!("p{p}_{per_dest}u32_each"), |b| {
            b.iter(|| {
                Universe::run(p, |comm| {
                    let sends: Vec<Vec<u32>> = (0..p).map(|d| vec![d as u32; per_dest]).collect();
                    let r = comm.alltoallv(black_box(&sends)).unwrap();
                    r.iter().map(|v| v.len()).sum::<usize>()
                })
            });
        });
    }
    group.finish();
}

fn bench_spawn_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("universe_spawn");
    group.sample_size(20);
    for p in [4usize, 16, 64] {
        group.bench_function(format!("p{p}"), |b| {
            b.iter(|| Universe::run(p, |comm| comm.rank()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_barrier, bench_alltoallv, bench_spawn_overhead);
criterion_main!(benches);
