//! Generator throughput benchmarks (the paper generates its synthetic
//! inputs in-process before every run, so generation speed matters to
//! the harness).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc_gen::{graph500, rmat, RmatParams};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_scale12");
    group.sample_size(10);
    group.bench_function("rmat_graph500", |b| {
        b.iter(|| graph500(black_box(12), 42).num_edges());
    });
    group.bench_function("rmat_uniform", |b| {
        b.iter(|| {
            rmat(black_box(12), 16, RmatParams { a: 0.25, b: 0.25, c: 0.25 }, 42).num_edges()
        });
    });
    group.bench_function("erdos_renyi", |b| {
        b.iter(|| tc_gen::er::gnm(black_box(1 << 12), 16 << 12, 42).num_edges());
    });
    group.bench_function("barabasi_albert", |b| {
        b.iter(|| tc_gen::ba::barabasi_albert(black_box(1 << 12), 16, 42).num_edges());
    });
    group.bench_function("simplify", |b| {
        let el = graph500(12, 42);
        b.iter(|| black_box(el.clone()).simplify().num_edges());
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
