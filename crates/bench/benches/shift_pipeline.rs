//! Shift-operand staging micro-benchmarks: what one Cannon shift step
//! pays to stage its operands.
//!
//! The synchronous schedule deserializes the received blob into an
//! owned [`SparseBlock`] and re-serializes it before forwarding
//! (`owned_roundtrip`); the zero-copy pipeline constructs a borrowed
//! [`SparseBlockRef`] over the wire bytes and forwards the refcounted
//! buffer verbatim (`borrowed_passthrough`). The gap between the two
//! is the per-shift staging cost the overlap pipeline removes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc_core::blocks::{BlockView, SparseBlock, SparseBlockRef};

/// A block shaped like a shift operand: `rows` rows of ~4 entries.
fn sample_block(rows: usize) -> SparseBlock {
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(rows * 4);
    for r in 0..rows as u32 {
        for j in 0..4u32 {
            pairs.push((r, r.wrapping_mul(2654435761).wrapping_add(j * 97) % (4 * rows as u32)));
        }
    }
    SparseBlock::from_pairs(rows, 1, &mut pairs)
}

/// Touches every row so the staging cost isn't optimized away and both
/// variants pay the same traversal.
fn touch<B: BlockView>(block: &B) -> u64 {
    let mut acc = 0u64;
    for lr in 0..block.num_rows() {
        if let Some(&k) = block.row(lr).first() {
            acc += k as u64;
        }
    }
    acc
}

fn bench_shift_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("shift_pipeline");
    for rows in [1_000usize, 100_000] {
        let blob = sample_block(rows).to_blob();

        // Synchronous schedule: deserialize to an owned block, use it,
        // re-serialize to forward.
        group.bench_function(format!("owned_roundtrip_rows{rows}"), |b| {
            b.iter(|| {
                let block = SparseBlock::from_blob(black_box(blob.clone()));
                let acc = touch(&block);
                (acc, block.to_blob().len())
            });
        });

        // Zero-copy pipeline: borrow a view of the wire bytes, forward
        // the refcounted buffer as-is.
        group.bench_function(format!("borrowed_passthrough_rows{rows}"), |b| {
            b.iter(|| {
                let view = SparseBlockRef::from_blob(black_box(&blob));
                let acc = touch(&view);
                (acc, blob.clone().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shift_pipeline);
criterion_main!(benches);
