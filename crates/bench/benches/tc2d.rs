//! End-to-end 2D triangle counting benchmarks: full runs across grid
//! sizes and the §7.3 ablation variants, Criterion-tracked so kernel
//! regressions are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tc_core::{count_triangles, Enumeration, TcConfig};
use tc_gen::graph500;

fn bench_grids(c: &mut Criterion) {
    let el = graph500(12, 42).simplify();
    let mut group = c.benchmark_group("tc2d_g500_s12");
    group.sample_size(10);
    for p in [1usize, 4, 9, 16] {
        group.bench_with_input(BenchmarkId::new("ranks", p), &p, |b, &p| {
            b.iter(|| count_triangles(black_box(&el), p, &TcConfig::paper()).triangles);
        });
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let el = graph500(12, 42).simplify();
    let mut group = c.benchmark_group("tc2d_ablation_p9");
    group.sample_size(10);
    let variants: &[(&str, TcConfig)] = &[
        ("paper", TcConfig::paper()),
        ("no_doubly_sparse", TcConfig::paper().with_doubly_sparse(false)),
        ("no_direct_hash", TcConfig::paper().with_direct_hash(false)),
        ("no_early_break", TcConfig::paper().with_reverse_early_break(false)),
        ("ijk", TcConfig::paper().with_enumeration(Enumeration::Ijk)),
        ("unoptimized", TcConfig::unoptimized()),
    ];
    for (name, cfg) in variants {
        group.bench_function(*name, |b| {
            b.iter(|| count_triangles(black_box(&el), 9, cfg).triangles);
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let el = graph500(12, 42).simplify();
    let mut group = c.benchmark_group("algorithms_p4_g500_s12");
    group.sample_size(10);
    group.bench_function("ours_2d", |b| {
        b.iter(|| count_triangles(black_box(&el), 4, &TcConfig::paper()).triangles);
    });
    group.bench_function("aop_1d", |b| {
        b.iter(|| tc_baselines::count_aop1d(black_box(&el), 4).triangles);
    });
    group.bench_function("push_1d", |b| {
        b.iter(|| tc_baselines::count_push1d(black_box(&el), 4).triangles);
    });
    group.bench_function("psp_1d", |b| {
        b.iter(|| tc_baselines::count_psp1d(black_box(&el), 4, 8).triangles);
    });
    group.bench_function("wedge", |b| {
        b.iter(|| tc_baselines::count_wedge(black_box(&el), 4).triangles);
    });
    group.bench_function("serial", |b| {
        b.iter(|| tc_baselines::serial::count_default(black_box(&el)));
    });
    group.finish();
}

criterion_group!(benches, bench_grids, bench_ablation, bench_baselines);
criterion_main!(benches);
