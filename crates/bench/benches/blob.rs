//! Blob-serialization micro-benchmarks: the paper's single-allocation
//! block transport (§5.2) versus field-by-field serialization.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc_mps::{BlobBuilder, BlobReader};

fn sample_arrays(n: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let xadj: Vec<u32> = (0..n as u32 + 1).map(|i| i * 4).collect();
    let cols: Vec<u32> = (0..4 * n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let nonempty: Vec<u32> = (0..n as u32).collect();
    (xadj, cols, nonempty)
}

fn bench_blob_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("blob");
    for n in [1_000usize, 100_000] {
        let (xadj, cols, nonempty) = sample_arrays(n);
        group.bench_function(format!("encode_rows{n}"), |b| {
            b.iter(|| {
                BlobBuilder::new()
                    .push(black_box(&xadj))
                    .push(black_box(&cols))
                    .push(black_box(&nonempty))
                    .finish()
            });
        });
        let blob = BlobBuilder::new().push(&xadj).push(&cols).push(&nonempty).finish();
        group.bench_function(format!("decode_rows{n}"), |b| {
            b.iter(|| {
                let r = BlobReader::new(black_box(blob.clone()));
                (r.typed::<u32>(0).len(), r.typed::<u32>(1).len(), r.typed::<u32>(2).len())
            });
        });
        // The naive alternative: three separate buffer copies with
        // their own length prefixes (what "serializing field by field"
        // costs, per §5.2).
        group.bench_function(format!("naive_field_by_field_rows{n}"), |b| {
            b.iter(|| {
                let enc = |v: &[u32]| -> Bytes {
                    let mut buf = Vec::with_capacity(8 + 4 * v.len());
                    buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    for &x in v {
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                    Bytes::from(buf)
                };
                (enc(black_box(&xadj)), enc(black_box(&cols)), enc(black_box(&nonempty)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blob_roundtrip);
criterion_main!(benches);
