//! Intersection-map micro-benchmarks: the direct bitwise-AND fast path
//! versus probing (§5.2's "modifying the hashing routine"), and the
//! map-based versus sorted-merge intersection primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc_core::hashmap::IntersectMap;
use tc_graph::vset::{sorted_intersection_count, VertexSet};

/// A block-like row: entries congruent mod q, strided sparsely.
fn block_row(len: usize, q: u32, stride: u32, class: u32) -> Vec<u32> {
    (0..len as u32).map(|i| class + q * (i * stride)).collect()
}

fn bench_load_modes(c: &mut Criterion) {
    let q = 4u32;
    let row = block_row(64, q, 3, 1);
    let probes = block_row(64, q, 5, 1);
    let mut group = c.benchmark_group("intersect_map_row64");
    group.bench_function("direct_load_probe", |b| {
        let mut m = IntersectMap::new(64, q as usize);
        b.iter(|| {
            m.load_row(black_box(&row), true);
            let mut hits = 0u64;
            for &k in &probes {
                if m.contains(k) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.bench_function("hashed_load_probe", |b| {
        let mut m = IntersectMap::new(64, q as usize);
        b.iter(|| {
            m.load_row(black_box(&row), false);
            let mut hits = 0u64;
            for &k in &probes {
                if m.contains(k) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.bench_function("sorted_merge", |b| {
        b.iter(|| sorted_intersection_count(black_box(&row), black_box(&probes)));
    });
    group.bench_function("vertex_set", |b| {
        let mut s = VertexSet::with_capacity(64);
        b.iter(|| {
            s.clear();
            s.insert_all(black_box(&row));
            s.count_hits(black_box(&probes))
        });
    });
    group.finish();
}

fn bench_row_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_scaling");
    for len in [8usize, 64, 512, 4096] {
        let a = block_row(len, 1, 3, 0);
        let bb = block_row(len, 1, 5, 0);
        group.bench_function(format!("map_len{len}"), |b| {
            let mut m = IntersectMap::new(len, 1);
            b.iter(|| {
                m.load_row(black_box(&a), true);
                let mut hits = 0u64;
                for &k in &bb {
                    if m.contains(k) {
                        hits += 1;
                    }
                }
                hits
            });
        });
        group.bench_function(format!("merge_len{len}"), |b| {
            b.iter(|| sorted_intersection_count(black_box(&a), black_box(&bb)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_modes, bench_row_lengths);
criterion_main!(benches);
