//! Design-choice ablation: Cannon shifts on a square grid versus SUMMA
//! panel broadcasts (the paper's §8 extension) at equal rank counts,
//! including rectangular shapes and panel-count sensitivity.

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::table::Table;
use tc_core::SummaGrid;
use tc_gen::Preset;

fn main() {
    let args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    let preset = args.preset.unwrap_or(Preset::G500 { scale: args.scale });
    let el = build_dataset(preset, args.seed);
    let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
    let mut t = Table::new(
        &format!("Ablation: Cannon vs SUMMA, {}", preset.name()),
        &["variant", "ranks", "ppt-model(s)", "tct-model(s)", "bytes-sent", "tasks"],
    );
    let cfg = args.base_config();

    let mut push = |name: String, r: tc_core::TcResult| {
        t.row(vec![
            name,
            r.num_ranks.to_string(),
            format!("{:.3}", r.modeled_ppt_time().as_secs_f64()),
            format!("{:.3}", r.modeled_tct_time().as_secs_f64()),
            r.total_bytes_sent().to_string(),
            r.total_tasks().to_string(),
        ]);
    };

    // Square comparisons at every perfect square in the sweep.
    for &p in &args.ranks {
        if let Some(q) = tc_mps::perfect_square_side(p) {
            push(format!("cannon-{q}x{q}"), rs.count_2d(&el, p, &cfg, "paper"));
            push(
                format!("summa-{q}x{q}"),
                rs.count_summa(&el, SummaGrid::new(q, q), &cfg, "paper"),
            );
        }
    }
    // Rectangles with the same area as the largest square.
    if let Some(&pmax) = args.ranks.iter().max() {
        if let Some(q) = tc_mps::perfect_square_side(pmax) {
            for (pr, pc) in [(q / 2, q * 2), (1, pmax)] {
                if pr >= 1 && pr * pc == pmax {
                    push(
                        format!("summa-{pr}x{pc}"),
                        rs.count_summa(&el, SummaGrid::new(pr, pc), &cfg, "paper"),
                    );
                }
            }
            // Panel-count sensitivity on the square SUMMA grid.
            for k in [q, 2 * q, 4 * q] {
                push(
                    format!("summa-{q}x{q}-panels{k}"),
                    rs.count_summa(&el, SummaGrid::new(q, q).with_panels(k), &cfg, "paper"),
                );
            }
        }
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
