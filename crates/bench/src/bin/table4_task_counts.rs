//! Table 4 — growth of the number of map-based set-intersection tasks
//! with the rank count (the paper's redundant-work measurement:
//! g500-s29 grew +25 % from 16→25 ranks and +20 % from 25→36).

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::table::Table;
use tc_gen::Preset;

fn main() {
    let mut args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    if args.ranks == tc_bench::DEFAULT_RANKS {
        args.ranks = vec![16, 25, 36];
    }
    let preset = args.preset.unwrap_or(Preset::G500 { scale: args.scale });
    let el = build_dataset(preset, args.seed);
    let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
    let mut t = Table::new(
        &format!("Table 4: task-count growth, {}", preset.name()),
        &["ranks", "task-counts", "increase-vs-previous-%"],
    );
    let mut prev: Option<u64> = None;
    for &p in &args.ranks {
        let r = rs.count_2d_default(&el, p);
        let tasks = r.total_tasks();
        let pct = match prev {
            Some(q) if q > 0 => format!("{:.0}%", 100.0 * (tasks as f64 - q as f64) / q as f64),
            _ => String::new(),
        };
        prev = Some(tasks);
        t.row(vec![p.to_string(), tasks.to_string(), pct]);
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
