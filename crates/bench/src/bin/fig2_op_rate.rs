//! Figure 2 — aggregate operation rate (kOps/s) of the preprocessing
//! phase and the triangle counting phase as the rank count grows, on
//! the largest dataset of the testbed (the paper plots g500-s29).
//!
//! Operations: for ppt, adjacency entries processed across all
//! preprocessing passes; for tct, hash-map inserts + lookups. Rates
//! divide by the critical-path model times (slowest rank's CPU time).

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::table::Table;
use tc_gen::Preset;

fn main() {
    let args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    // Largest dataset only, unless a preset was forced.
    let preset = args.preset.unwrap_or(Preset::G500 { scale: args.scale });
    let el = build_dataset(preset, args.seed);
    let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
    let mut t = Table::new(
        &format!("Figure 2: operation rate, {}", preset.name()),
        &["ranks", "ppt-kops/s", "tct-kops/s", "ppt-ops", "tct-ops"],
    );
    for &p in &args.ranks {
        let r = rs.count_2d_default(&el, p);
        let ppt_ops: u64 = r.ranks.iter().map(|m| m.ppt_ops).sum();
        let tct_ops: u64 = r.ranks.iter().map(|m| m.tct_ops).sum();
        let ppt_rate = ppt_ops as f64 / r.modeled_ppt_time().as_secs_f64().max(1e-12) / 1e3;
        let tct_rate = tct_ops as f64 / r.modeled_tct_time().as_secs_f64().max(1e-12) / 1e3;
        t.row(vec![
            p.to_string(),
            format!("{ppt_rate:.0}"),
            format!("{tct_rate:.0}"),
            r.ranks.iter().map(|m| m.ppt_ops).sum::<u64>().to_string(),
            r.ranks.iter().map(|m| m.tct_ops).sum::<u64>().to_string(),
        ]);
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
