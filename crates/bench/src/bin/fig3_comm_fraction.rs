//! Figure 3 — fraction of phase time spent in communication for the
//! preprocessing and triangle counting phases, versus rank count, on
//! the largest dataset (the paper plots g500-s29 and observes the
//! fraction growing with ranks while compute still dominates).

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::table::Table;
use tc_gen::Preset;

fn main() {
    let args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    let preset = args.preset.unwrap_or(Preset::G500 { scale: args.scale });
    let el = build_dataset(preset, args.seed);
    let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
    let mut t = Table::new(
        &format!("Figure 3: communication fraction, {}", preset.name()),
        &["ranks", "ppt-comm-%", "tct-comm-%", "bytes-sent"],
    );
    for &p in &args.ranks {
        let r = rs.count_2d_default(&el, p);
        t.row(vec![
            p.to_string(),
            format!("{:.1}", 100.0 * r.ppt_comm_fraction()),
            format!("{:.1}", 100.0 * r.tct_comm_fraction()),
            r.total_bytes_sent().to_string(),
        ]);
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
