//! Weak scaling (extension experiment): grow the problem with the
//! rank count so per-rank work stays constant, and check the §5.4 cost
//! model's prediction — the triangle-counting phase's per-rank work is
//! `(n/√p)·(d²_avg/p)` per shift over `√p` shifts, so with `m ∝ p` the
//! modeled phase time should stay roughly flat while redundant work
//! (Table 4's effect) pushes it up slowly.
//!
//! The paper's OPT-PSP comparison (§7.4) references this style of
//! scaling study; the paper itself only reports strong scaling.

use tc_bench::args::ExpArgs;
use tc_bench::table::Table;
use tc_gen::graph500;

fn main() {
    let mut args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    if args.ranks == tc_bench::DEFAULT_RANKS {
        args.ranks = vec![4, 16, 64];
    }
    // Scale the edge budget with p: every 4x in ranks doubles the
    // scale twice (2^scale vertices, edge factor fixed at 16).
    let base_scale = args.scale.saturating_sub(4);
    let mut t = Table::new(
        "Weak scaling: ~constant edges per rank",
        &[
            "ranks",
            "scale",
            "edges",
            "edges/rank",
            "ppt-model(s)",
            "tct-model(s)",
            "tasks/rank",
            "triangles",
        ],
    );
    for &p in &args.ranks {
        // p = 4^k -> scale = base + 2k keeps m/p constant.
        let k = (p as f64).log(4.0).round() as u32;
        let scale = base_scale + 2 * k;
        let el = graph500(scale, args.seed).simplify();
        let rs = tc_bench::RunScope::new(&args, th.as_ref(), &format!("g500-s{scale}"));
        let r = rs.count_2d_default(&el, p);
        t.row(vec![
            p.to_string(),
            scale.to_string(),
            el.num_edges().to_string(),
            (el.num_edges() / p).to_string(),
            format!("{:.3}", r.modeled_ppt_time().as_secs_f64()),
            format!("{:.3}", r.modeled_tct_time().as_secs_f64()),
            (r.total_tasks() / p as u64).to_string(),
            r.triangles.to_string(),
        ]);
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
