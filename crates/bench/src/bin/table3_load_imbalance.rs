//! Table 3 — per-shift compute-time load imbalance: the summed
//! per-shift maximum rank time, the summed per-shift mean, and their
//! ratio (the paper reports 1.05 at 25 ranks and 1.14 at 36 ranks on
//! g500-s29), plus the task-placement imbalance the paper quotes as
//! "less than 6 %".

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::secs;
use tc_bench::table::Table;
use tc_gen::Preset;

fn main() {
    let mut args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    // The paper measures 25 and 36 ranks; keep that default.
    if args.ranks == tc_bench::DEFAULT_RANKS {
        args.ranks = vec![25, 36];
    }
    let preset = args.preset.unwrap_or(Preset::G500 { scale: args.scale });
    let el = build_dataset(preset, args.seed);
    let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
    let mut t = Table::new(
        &format!("Table 3: per-shift load imbalance, {}", preset.name()),
        &["ranks", "max-runtime(s)", "avg-runtime(s)", "load-imbalance", "task-imbalance"],
    );
    for &p in &args.ranks {
        let r = rs.count_2d_default(&el, p);
        let (mx, avg, imb) = r.shift_imbalance();
        t.row(vec![
            p.to_string(),
            secs(mx),
            secs(avg),
            format!("{imb:.2}"),
            format!("{:.3}", r.task_imbalance()),
        ]);
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
