//! Table 6 — the twitter-graph comparison against the 1D
//! distributed-memory approaches: AOP (communication-avoiding,
//! overlapping partitions), Surrogate (space-efficient push), and
//! OPT-PSP (blocked push). The paper quotes numbers from the original
//! papers on different machines; here all four algorithms run on the
//! same substrate and the same rank count, which makes the comparison
//! stricter than the paper's.

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::secs;
use tc_bench::table::Table;
use tc_gen::Preset;

fn main() {
    let args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    let p = *args.ranks.iter().max().expect("non-empty rank sweep");
    let preset = args.preset.unwrap_or(Preset::TwitterLike { scale: args.scale.saturating_sub(1) });
    let el = build_dataset(preset, args.seed);
    let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());

    let mut t = Table::new(
        &format!("Table 6: {} runtime vs 1D approaches ({p} ranks)", preset.name()),
        &["algorithm", "setup(s)", "count(s)", "total(s)", "bytes-sent", "peak-ghost-entries"],
    );

    let ours = rs.count_2d_default(&el, p);
    t.row(vec![
        "our-2d".into(),
        secs(ours.ppt_time()),
        secs(ours.tct_time()),
        secs(ours.overall_time()),
        ours.total_bytes_sent().to_string(),
        "0".into(),
    ]);

    let expect = ours.triangles;
    let aop = rs.count_aop1d(&el, p);
    assert_eq!(aop.triangles, expect);
    t.row(vec![
        "aop-1d".into(),
        secs(aop.setup),
        secs(aop.count),
        secs(aop.total()),
        aop.bytes_sent.to_string(),
        aop.max_ghost_entries.to_string(),
    ]);

    let push = rs.count_push1d(&el, p);
    assert_eq!(push.triangles, expect);
    t.row(vec![
        "surrogate-push-1d".into(),
        secs(push.setup),
        secs(push.count),
        secs(push.total()),
        push.bytes_sent.to_string(),
        push.max_ghost_entries.to_string(),
    ]);

    let psp = rs.count_psp1d(&el, p, 8);
    assert_eq!(psp.triangles, expect);
    t.row(vec![
        "opt-psp-1d(8 blocks)".into(),
        secs(psp.setup),
        secs(psp.count),
        secs(psp.total()),
        psp.bytes_sent.to_string(),
        psp.max_ghost_entries.to_string(),
    ]);

    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
    println!("triangles: {expect}");
}
