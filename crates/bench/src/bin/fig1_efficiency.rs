//! Figure 1 — parallel efficiency of the preprocessing step, the
//! triangle counting step, and the overall runtime, using the first
//! grid of the sweep as the baseline (the paper's Fig. 1 uses the
//! 4×4 grid): `E(p) = p₀·T(p₀) / (p·T(p))`.
//!
//! Uses the critical-path model times (slowest rank's CPU time per
//! phase) — see the Table 2 binary for why.

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::table::Table;

fn main() {
    let args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    for preset in args.datasets() {
        let el = build_dataset(preset, args.seed);
        let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
        let mut t = Table::new(
            &format!("Figure 1: efficiency vs ranks, {}", preset.name()),
            &["ranks", "eff-ppt", "eff-tct", "eff-overall"],
        );
        let mut base: Option<(f64, f64, f64, f64)> = None;
        for &p in &args.ranks {
            let r = rs.count_2d_default(&el, p);
            let (ppt, tct) =
                (r.modeled_ppt_time().as_secs_f64(), r.modeled_tct_time().as_secs_f64());
            let all = ppt + tct;
            let (b_ppt, b_tct, b_all, b_p) = *base.get_or_insert((ppt, tct, all, p as f64));
            let eff = |b: f64, x: f64| b_p * b / (p as f64 * x.max(1e-12));
            t.row(vec![
                p.to_string(),
                format!("{:.3}", eff(b_ppt, ppt)),
                format!("{:.3}", eff(b_tct, tct)),
                format!("{:.3}", eff(b_all, all)),
            ]);
        }
        t.print();
        t.maybe_csv(&args.csv);
        t.maybe_json(&args.json);
    }
}
