//! Standalone benchmark-regression checker: compares two (or more)
//! `tc-run-v1` JSON-lines reports produced by the experiment binaries'
//! `--json` flag and fails on noise-adjusted regressions. The same
//! logic is reachable as `tricount benchdiff`; see `tc_metrics::diff`
//! for the matching and threshold rules.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(tc_metrics::diff::cli_main(&args));
}
