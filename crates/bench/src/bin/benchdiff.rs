//! Standalone benchmark-regression checker: compares two (or more)
//! `tc-run-v2` JSON-lines reports (v1 reports are read as single-try
//! runs) produced by the experiment binaries' `--json` flag and fails
//! on noise-adjusted regressions. The same logic is reachable as
//! `tricount benchdiff`; see `tc_metrics::diff` for the matching,
//! effect-size, and threshold rules.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(tc_metrics::diff::cli_main(&args));
}
