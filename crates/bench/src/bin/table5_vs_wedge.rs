//! Table 5 — comparison against the Havoq-style wedge-checking
//! pipeline: its 2-core time, its directed-wedge counting time, our
//! triangle-counting time, and the resulting speedup. The paper
//! measured 6.2–14.6× on the g500/twitter inputs with Havoq *slower*,
//! and friendster as the one case where wedge checking wins.

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::secs;
use tc_bench::table::Table;

fn main() {
    let args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    // One rank count for the whole table; the paper used 169 for its
    // side and 1152 for Havoq — same substrate here, so use the sweep
    // maximum for both.
    let p = *args.ranks.iter().max().expect("non-empty rank sweep");
    let mut t = Table::new(
        &format!("Table 5: vs wedge-checking (both at {p} ranks)"),
        &[
            "dataset",
            "2core(s)",
            "wedge-count(s)",
            "wedge-total(s)",
            "our-tct(s)",
            "speedup",
            "wedges",
            "triangles",
        ],
    );
    for preset in args.datasets() {
        let el = build_dataset(preset, args.seed);
        let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
        let w = rs.count_wedge(&el, p);
        let ours = rs.count_2d_default(&el, p);
        assert_eq!(w.triangles, ours.triangles, "algorithms disagree on {}", preset.name());
        let speedup = w.total().as_secs_f64() / ours.tct_time().as_secs_f64().max(1e-12);
        t.row(vec![
            preset.name(),
            secs(w.two_core),
            secs(w.wedge_count),
            secs(w.total()),
            secs(ours.tct_time()),
            format!("{speedup:.1}"),
            w.wedges.to_string(),
            ours.triangles.to_string(),
        ]);
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
