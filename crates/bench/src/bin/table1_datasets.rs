//! Table 1 — dataset inventory: vertices, edges, triangle counts.
//!
//! Paper values (at scales 26–29 / real twitter & friendster) are
//! printed alongside for shape comparison; absolute sizes differ
//! because the stand-ins run at laptop scale.

use tc_bench::args::ExpArgs;
use tc_bench::table::Table;
use tc_bench::{build_dataset, timed_tries};

fn main() {
    let args = ExpArgs::parse();
    let mut t = Table::new(
        "Table 1: datasets used in the experiments",
        &["graph", "#vertices", "#edges", "#triangles", "serial-tct(s)"],
    );
    for preset in args.datasets() {
        let el = build_dataset(preset, args.seed);
        let (tri, stats) = timed_tries(&args, || tc_baselines::serial::count_default(&el));
        t.row(vec![
            preset.name(),
            el.num_vertices.to_string(),
            el.num_edges().to_string(),
            tri.to_string(),
            format!("{:.3}", stats.mean / 1e9),
        ]);
    }
    t.print();
    t.maybe_csv(&args.csv);
    t.maybe_json(&args.json);
}
