//! Table 2 — strong-scaling sweep: preprocessing time (ppt), triangle
//! counting time (tct), overall runtime, and speedups relative to the
//! smallest grid in the sweep (the paper uses its 16-rank run as the
//! baseline; here the first entry of `--ranks` plays that role).
//!
//! Times are the **critical-path model**: per phase, the slowest
//! rank's thread-CPU time (per shift for tct). On a host with one core
//! per rank this equals phase wall time; on an oversubscribed host it
//! is the only metric that still measures scaling (wall time would
//! just measure the scheduler). The wall column is printed too.

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::table::Table;

fn main() {
    let args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    for preset in args.datasets() {
        let el = build_dataset(preset, args.seed);
        let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());
        let mut t = Table::new(
            &format!("Table 2: parallel performance, {}", preset.name()),
            &[
                "ranks",
                "expected-speedup",
                "ppt(s)",
                "ppt-speedup",
                "tct(s)",
                "tct-speedup",
                "overall(s)",
                "overall-speedup",
                "wall(s)",
                "triangles",
            ],
        );
        let mut base: Option<(f64, f64, f64, usize)> = None;
        for &p in &args.ranks {
            let r = rs.count_2d_default(&el, p);
            let ppt = r.modeled_ppt_time().as_secs_f64();
            let tct = r.modeled_tct_time().as_secs_f64();
            let overall = ppt + tct;
            let (bppt, btct, ball, bp) = *base.get_or_insert((ppt, tct, overall, p));
            t.row(vec![
                p.to_string(),
                format!("{:.2}", p as f64 / bp as f64),
                format!("{ppt:.3}"),
                format!("{:.2}", bppt / ppt.max(1e-12)),
                format!("{tct:.3}"),
                format!("{:.2}", btct / tct.max(1e-12)),
                format!("{overall:.3}"),
                format!("{:.2}", ball / overall.max(1e-12)),
                format!("{:.3}", r.overall_time().as_secs_f64()),
                r.triangles.to_string(),
            ]);
        }
        t.print();
        t.maybe_csv(&args.csv);
        t.maybe_json(&args.json);
    }
}
