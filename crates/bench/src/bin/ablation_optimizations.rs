//! §7.3 — quantifying the gains of the optimizations: triangle
//! counting time with each §5.2 optimization disabled in turn, plus
//! the ⟨j,i,k⟩ vs ⟨i,j,k⟩ enumeration comparison. The paper reports,
//! on g500-s29: doubly-sparse −10 %/−15 % (16/100 ranks), modified
//! hashing −1.2 %/−8.7 %, and ⟨j,i,k⟩ beating ⟨i,j,k⟩ by 72.8 %.

use tc_bench::args::ExpArgs;
use tc_bench::build_dataset;
use tc_bench::secs;
use tc_bench::table::Table;
use tc_core::{Enumeration, KernelStrategy, TcConfig};
use tc_gen::Preset;

fn main() {
    let mut args = ExpArgs::parse();
    let tscope = tc_bench::TraceScope::begin(args.trace.as_ref());
    let th = tscope.handle();
    if args.ranks == tc_bench::DEFAULT_RANKS {
        // The paper ablates at 16 and 100 ranks.
        args.ranks = vec![16, 100];
    }
    let preset = args.preset.unwrap_or(Preset::G500 { scale: args.scale });
    let el = build_dataset(preset, args.seed);
    let rs = tc_bench::RunScope::new(&args, th.as_ref(), &preset.name());

    // The legacy variants honor the invocation's --kernel/TC_KERNEL
    // override; the kernel-* rows force each intersection strategy so
    // the kernel ablation is always present (CI gates on the bitmap
    // row absorbing physical probe lookups relative to the hash row).
    let base = args.base_config();
    let variants: Vec<(&str, TcConfig)> = vec![
        ("all-optimizations", base),
        ("no-doubly-sparse", base.with_doubly_sparse(false)),
        ("no-direct-hash", base.with_direct_hash(false)),
        ("no-early-break", base.with_reverse_early_break(false)),
        ("enumeration-ijk", base.with_enumeration(Enumeration::Ijk)),
        ("no-overlap", base.with_overlap_shifts(false)),
        ("unoptimized", TcConfig::unoptimized()),
        ("kernel-hash", TcConfig::paper().with_kernel(KernelStrategy::Hash)),
        ("kernel-merge", TcConfig::paper().with_kernel(KernelStrategy::Merge)),
        ("kernel-bitmap", TcConfig::paper().with_kernel(KernelStrategy::Bitmap)),
    ];

    for &p in &args.ranks {
        let mut t = Table::new(
            &format!("Ablation (sec. 7.3): {} at {p} ranks", preset.name()),
            &["variant", "tct(s)", "vs-all-opt-%", "lookups", "probes", "direct-rows"],
        );
        let mut base: Option<f64> = None;
        for (name, cfg) in &variants {
            let r = rs.count_2d(&el, p, cfg, name);
            let tct = r.tct_time().as_secs_f64();
            let b = *base.get_or_insert(tct);
            t.row(vec![
                name.to_string(),
                secs(r.tct_time()),
                format!("{:+.1}%", 100.0 * (tct - b) / b.max(1e-12)),
                r.total_lookups().to_string(),
                r.total_probes().to_string(),
                r.ranks.iter().map(|m| m.direct_rows).sum::<u64>().to_string(),
            ]);
        }
        t.print();
        t.maybe_csv(&args.csv);
        t.maybe_json(&args.json);
    }
}
