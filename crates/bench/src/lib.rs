//! # tc-bench — experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the paper's evaluation section (see `src/bin/`), plus
//! Criterion micro-benchmarks of the hot kernels (see `benches/`).
//!
//! Every experiment binary accepts:
//!
//! - `--scale N` — log2 of the base dataset size (default 13; the
//!   paper's runs used 26–29, which do not fit a laptop),
//! - `--ranks a,b,c` — the rank sweep (must be perfect squares),
//! - `--preset NAME` — a single dataset instead of the full testbed,
//! - `--seed S` — generator seed,
//! - `--csv PATH` — also dump machine-readable rows,
//! - `--json PATH` — append each table as one JSON-lines record,
//! - `--trace PATH` — record every distributed run into one Chrome
//!   trace-event file (open in Perfetto / chrome://tracing).

#![warn(missing_docs)]

pub mod args;
pub mod table;

use tc_gen::Preset;
use tc_graph::EdgeList;

/// The default rank sweep: perfect squares like the paper's 16…169
/// sweep, scaled down (thread oversubscription makes the largest grids
/// unrepresentative on a laptop; pass `--ranks` to extend).
pub const DEFAULT_RANKS: &[usize] = &[4, 9, 16, 25, 36, 49, 64];

/// Builds a dataset and reports basic facts while doing so.
pub fn build_dataset(preset: Preset, seed: u64) -> EdgeList {
    let t = std::time::Instant::now();
    let el = preset.build(seed);
    eprintln!(
        "# built {} : {} vertices, {} edges ({:.2?})",
        preset.name(),
        el.num_vertices,
        el.num_edges(),
        t.elapsed()
    );
    el
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// An experiment-scoped trace recorder: holds the [`tc_trace`]
/// session alive for the duration of the binary and exports the
/// Chrome trace file when dropped. With no `--trace` path this is a
/// no-op shell — the recorder gate stays closed and the instrumented
/// code paths cost one atomic load each.
pub struct TraceScope {
    session: Option<tc_trace::TraceSession>,
    path: Option<String>,
}

impl TraceScope {
    /// Starts recording when `path` is set; inert otherwise.
    pub fn begin(path: Option<&String>) -> Self {
        Self { session: path.map(|_| tc_trace::TraceSession::begin()), path: path.cloned() }
    }

    /// Handle to pass to `*_traced` entry points (`None` when inert).
    pub fn handle(&self) -> Option<tc_trace::TraceHandle> {
        self.session.as_ref().map(|s| s.handle())
    }
}

/// 2D count under `cfg`, recording into `trace` when set; panics on
/// runtime failure (experiment binaries have no recovery path).
pub fn count_2d(
    el: &EdgeList,
    p: usize,
    cfg: &tc_core::TcConfig,
    trace: Option<&tc_trace::TraceHandle>,
) -> tc_core::TcResult {
    tc_core::try_count_triangles_traced(el, p, cfg, trace).unwrap_or_else(|e| panic!("{e}"))
}

/// [`count_2d`] with the default configuration.
pub fn count_2d_default(
    el: &EdgeList,
    p: usize,
    trace: Option<&tc_trace::TraceHandle>,
) -> tc_core::TcResult {
    count_2d(el, p, &tc_core::TcConfig::default(), trace)
}

/// SUMMA count on `grid`, recording into `trace` when set.
pub fn count_summa(
    el: &EdgeList,
    grid: tc_core::SummaGrid,
    cfg: &tc_core::TcConfig,
    trace: Option<&tc_trace::TraceHandle>,
) -> tc_core::TcResult {
    tc_core::try_count_triangles_summa_traced(el, grid, cfg, trace)
        .unwrap_or_else(|e| panic!("{e}"))
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let (Some(session), Some(path)) = (self.session.take(), self.path.take()) {
            let trace = session.finish();
            match tc_trace::chrome::write_chrome_json(&trace, std::path::Path::new(&path)) {
                Ok(()) => eprintln!(
                    "# trace: {} events ({} dropped) -> {path}",
                    trace.events.len(),
                    trace.dropped
                ),
                Err(e) => eprintln!("warning: failed to write trace {path}: {e}"),
            }
        }
    }
}
