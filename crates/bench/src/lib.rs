//! # tc-bench — experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the paper's evaluation section (see `src/bin/`), plus
//! Criterion micro-benchmarks of the hot kernels (see `benches/`).
//!
//! Every experiment binary accepts:
//!
//! - `--scale N` — log2 of the base dataset size (default 13; the
//!   paper's runs used 26–29, which do not fit a laptop),
//! - `--ranks a,b,c` — the rank sweep (must be perfect squares),
//! - `--preset NAME` — a single dataset instead of the full testbed,
//! - `--seed S` — generator seed,
//! - `--csv PATH` — also dump machine-readable rows.

#![warn(missing_docs)]

pub mod args;
pub mod table;

use tc_gen::Preset;
use tc_graph::EdgeList;

/// The default rank sweep: perfect squares like the paper's 16…169
/// sweep, scaled down (thread oversubscription makes the largest grids
/// unrepresentative on a laptop; pass `--ranks` to extend).
pub const DEFAULT_RANKS: &[usize] = &[4, 9, 16, 25, 36, 49, 64];

/// Builds a dataset and reports basic facts while doing so.
pub fn build_dataset(preset: Preset, seed: u64) -> EdgeList {
    let t = std::time::Instant::now();
    let el = preset.build(seed);
    eprintln!(
        "# built {} : {} vertices, {} edges ({:.2?})",
        preset.name(),
        el.num_vertices,
        el.num_edges(),
        t.elapsed()
    );
    el
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
