//! # tc-bench — experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the paper's evaluation section (see `src/bin/`), plus
//! Criterion micro-benchmarks of the hot kernels (see `benches/`).
//!
//! Every experiment binary accepts:
//!
//! - `--scale N` — log2 of the base dataset size (default 13; the
//!   paper's runs used 26–29, which do not fit a laptop),
//! - `--ranks a,b,c` — the rank sweep (must be perfect squares),
//! - `--preset NAME` — a single dataset instead of the full testbed,
//! - `--seed S` — generator seed,
//! - `--csv PATH` — also dump machine-readable rows,
//! - `--json PATH` — append each table as one JSON-lines record,
//! - `--trace PATH` — record every distributed run into one Chrome
//!   trace-event file (open in Perfetto / chrome://tracing),
//! - `--tries N` — measured repetitions per configuration; timings in
//!   the `tc-run-v2` report become mean/stddev/median summaries,
//! - `--warmup K` — discarded warm-up repetitions before measuring.

#![warn(missing_docs)]

pub mod args;
pub mod table;

use tc_gen::Preset;
use tc_graph::EdgeList;

/// The default rank sweep: perfect squares like the paper's 16…169
/// sweep, scaled down (thread oversubscription makes the largest grids
/// unrepresentative on a laptop; pass `--ranks` to extend).
pub const DEFAULT_RANKS: &[usize] = &[4, 9, 16, 25, 36, 49, 64];

/// Builds a dataset and reports basic facts while doing so.
pub fn build_dataset(preset: Preset, seed: u64) -> EdgeList {
    let t = std::time::Instant::now();
    let el = preset.build(seed);
    eprintln!(
        "# built {} : {} vertices, {} edges ({:.2?})",
        preset.name(),
        el.num_vertices,
        el.num_edges(),
        t.elapsed()
    );
    el
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// An experiment-scoped trace recorder: holds the [`tc_trace`]
/// session alive for the duration of the binary and exports the
/// Chrome trace file when dropped. With no `--trace` path this is a
/// no-op shell — the recorder gate stays closed and the instrumented
/// code paths cost one atomic load each.
pub struct TraceScope {
    session: Option<tc_trace::TraceSession>,
    path: Option<String>,
}

impl TraceScope {
    /// Starts recording when `path` is set; inert otherwise.
    pub fn begin(path: Option<&String>) -> Self {
        Self { session: path.map(|_| tc_trace::TraceSession::begin()), path: path.cloned() }
    }

    /// Handle to pass to `*_traced` entry points (`None` when inert).
    pub fn handle(&self) -> Option<tc_trace::TraceHandle> {
        self.session.as_ref().map(|s| s.handle())
    }
}

/// 2D count under `cfg`, recording into `trace` when set; panics on
/// runtime failure (experiment binaries have no recovery path).
pub fn count_2d(
    el: &EdgeList,
    p: usize,
    cfg: &tc_core::TcConfig,
    trace: Option<&tc_trace::TraceHandle>,
) -> tc_core::TcResult {
    tc_core::try_count_triangles_traced(el, p, cfg, trace).unwrap_or_else(|e| panic!("{e}"))
}

/// [`count_2d`] with the default configuration.
pub fn count_2d_default(
    el: &EdgeList,
    p: usize,
    trace: Option<&tc_trace::TraceHandle>,
) -> tc_core::TcResult {
    count_2d(el, p, &tc_core::TcConfig::default(), trace)
}

/// SUMMA count on `grid`, recording into `trace` when set.
pub fn count_summa(
    el: &EdgeList,
    grid: tc_core::SummaGrid,
    cfg: &tc_core::TcConfig,
    trace: Option<&tc_trace::TraceHandle>,
) -> tc_core::TcResult {
    tc_core::try_count_triangles_summa_traced(el, grid, cfg, trace)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Repeats a serial (single-process) measurement honoring `--warmup`
/// and `--tries`: warm-up runs are discarded, each measured run's
/// wall time is sampled, and the samples summarize into one
/// [`tc_metrics::TimingStats`]. Returns the last run's output with
/// the summary. For distributed runs use [`RunScope`], which also
/// checks cross-try determinism.
pub fn timed_tries<T>(
    args: &args::ExpArgs,
    mut f: impl FnMut() -> T,
) -> (T, tc_metrics::TimingStats) {
    for _ in 0..args.warmup {
        f();
    }
    let tries = args.tries.max(1);
    let mut samples = Vec::with_capacity(tries as usize);
    let mut out = None;
    for _ in 0..tries {
        let t0 = std::time::Instant::now();
        out = Some(f());
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    let stats = tc_metrics::TimingStats::from_samples(&samples).expect("at least one try");
    (out.expect("at least one try"), stats)
}

/// Appends one line to a JSON-lines report file.
pub fn append_json_line(path: &str, line: &str) {
    use std::io::Write;
    let res = std::fs::OpenOptions::new().create(true).append(true).open(path).and_then(|f| {
        let mut f = std::io::BufWriter::new(f);
        writeln!(f, "{line}")?;
        f.flush()
    });
    if let Err(e) = res {
        eprintln!("warning: failed to append to {path}: {e}");
    }
}

/// Per-dataset measurement context for the experiment binaries — the
/// shared n-try repeat-runner.
///
/// Each configuration launched through its methods first executes
/// `--warmup` discarded iterations (no tracing, no metrics), then
/// `--tries` measured iterations, each under its own fresh
/// `tc-metrics` session (only when `--json` or `--metrics` asks for
/// output — otherwise the registry gate stays closed and every
/// instrumentation point costs one relaxed atomic load). The measured
/// tries aggregate into one `tc-run-v2` record per configuration:
/// timings become [`tc_metrics::TimingStats`] summaries while
/// deterministic counters and the triangle count must agree across
/// tries exactly — any drift aborts the experiment. With `--metrics`,
/// every try additionally appends its full per-rank snapshot as one
/// JSON line.
pub struct RunScope<'a> {
    args: &'a args::ExpArgs,
    trace: Option<&'a tc_trace::TraceHandle>,
    dataset: String,
}

impl<'a> RunScope<'a> {
    /// A scope for runs over one dataset.
    pub fn new(
        args: &'a args::ExpArgs,
        trace: Option<&'a tc_trace::TraceHandle>,
        dataset: &str,
    ) -> Self {
        Self { args, trace, dataset: dataset.to_string() }
    }

    /// Runs `f` warmup+tries times, aggregates the measured tries and
    /// reports the pooled run record. Returns the last try's output.
    fn measured<T>(
        &self,
        algorithm: &str,
        config: &str,
        ranks: usize,
        triangles_of: impl Fn(&T) -> u64,
        mut f: impl FnMut(tc_mps::Observe<'_>) -> T,
    ) -> T {
        for _ in 0..self.args.warmup {
            f(tc_mps::Observe::none());
        }
        if self.args.json.is_none() && self.args.metrics.is_none() {
            let mut out = f(tc_mps::Observe::trace(self.trace));
            for _ in 1..self.args.tries {
                out = f(tc_mps::Observe::trace(self.trace));
            }
            return out;
        }
        let mut records = Vec::with_capacity(self.args.tries.max(1) as usize);
        let mut out = None;
        for _ in 0..self.args.tries.max(1) {
            let session = tc_metrics::MetricsSession::begin();
            let handle = session.handle();
            let t = f(tc_mps::Observe {
                trace: self.trace,
                metrics: Some(&handle),
                ..tc_mps::Observe::none()
            });
            let snap = session.finish();
            records.push(tc_metrics::RunRecord::from_snapshot(
                &self.dataset,
                algorithm,
                ranks as u64,
                config,
                triangles_of(&t),
                &snap,
            ));
            if let Some(path) = &self.args.metrics {
                append_json_line(path, &snap.to_json());
            }
            out = Some(t);
        }
        let rec = tc_metrics::RunRecord::aggregate(&records).unwrap_or_else(|e| {
            panic!(
                "non-deterministic repeats for {}/{algorithm}/p{ranks}/{config}: {e}",
                self.dataset
            )
        });
        if let Some(path) = &self.args.json {
            append_json_line(path, &rec.to_json_line());
        }
        out.expect("at least one measured try")
    }

    /// Measured 2D Cannon count under `cfg` (`config` names the
    /// configuration in the run record).
    pub fn count_2d(
        &self,
        el: &EdgeList,
        p: usize,
        cfg: &tc_core::TcConfig,
        config: &str,
    ) -> tc_core::TcResult {
        self.measured(
            "2d-cannon",
            config,
            p,
            |r: &tc_core::TcResult| r.triangles,
            |obs| {
                tc_core::try_count_triangles_observed(el, p, cfg, obs)
                    .unwrap_or_else(|e| panic!("{e}"))
            },
        )
    }

    /// Measured 2D count with the default configuration (honoring the
    /// invocation's `--kernel`/`TC_KERNEL` strategy override — the
    /// deterministic counters are strategy-invariant, so the run
    /// record key stays `default`).
    pub fn count_2d_default(&self, el: &EdgeList, p: usize) -> tc_core::TcResult {
        self.count_2d(el, p, &self.args.base_config(), "default")
    }

    /// Measured SUMMA count; the grid shape joins the config key.
    pub fn count_summa(
        &self,
        el: &EdgeList,
        grid: tc_core::SummaGrid,
        cfg: &tc_core::TcConfig,
        config: &str,
    ) -> tc_core::TcResult {
        let cfg_key = format!("{config}/{}x{}k{}", grid.pr, grid.pc, grid.panels);
        self.measured(
            "2d-summa",
            &cfg_key,
            grid.size(),
            |r: &tc_core::TcResult| r.triangles,
            |obs| {
                tc_core::try_count_triangles_summa_observed(el, grid, cfg, obs)
                    .unwrap_or_else(|e| panic!("{e}"))
            },
        )
    }

    /// Measured AOP 1D baseline run.
    pub fn count_aop1d(&self, el: &EdgeList, p: usize) -> tc_baselines::Dist1dResult {
        self.measured(
            "aop1d",
            "default",
            p,
            |r: &tc_baselines::Dist1dResult| r.triangles,
            |obs| {
                tc_baselines::try_count_aop1d_observed(el, p, obs).unwrap_or_else(|e| panic!("{e}"))
            },
        )
    }

    /// Measured push-based 1D baseline run.
    pub fn count_push1d(&self, el: &EdgeList, p: usize) -> tc_baselines::Dist1dResult {
        self.measured(
            "push1d",
            "default",
            p,
            |r: &tc_baselines::Dist1dResult| r.triangles,
            |obs| {
                tc_baselines::try_count_push1d_observed(el, p, obs)
                    .unwrap_or_else(|e| panic!("{e}"))
            },
        )
    }

    /// Measured blocked-push 1D baseline run.
    pub fn count_psp1d(
        &self,
        el: &EdgeList,
        p: usize,
        num_super_blocks: usize,
    ) -> tc_baselines::Dist1dResult {
        self.measured(
            "psp1d",
            &format!("sb{num_super_blocks}"),
            p,
            |r: &tc_baselines::Dist1dResult| r.triangles,
            |obs| {
                tc_baselines::try_count_psp1d_observed(el, p, num_super_blocks, obs)
                    .unwrap_or_else(|e| panic!("{e}"))
            },
        )
    }

    /// Measured wedge-checking baseline run.
    pub fn count_wedge(&self, el: &EdgeList, p: usize) -> tc_baselines::WedgeResult {
        self.measured(
            "wedge",
            "default",
            p,
            |r: &tc_baselines::WedgeResult| r.triangles,
            |obs| {
                tc_baselines::try_count_wedge_observed(el, p, obs).unwrap_or_else(|e| panic!("{e}"))
            },
        )
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let (Some(session), Some(path)) = (self.session.take(), self.path.take()) {
            let trace = session.finish();
            match tc_trace::chrome::write_chrome_json(&trace, std::path::Path::new(&path)) {
                Ok(()) => eprintln!(
                    "# trace: {} events ({} dropped) -> {path}",
                    trace.events.len(),
                    trace.dropped
                ),
                Err(e) => eprintln!("warning: failed to write trace {path}: {e}"),
            }
        }
    }
}
