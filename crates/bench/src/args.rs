//! Minimal command-line parsing shared by the experiment binaries
//! (kept dependency-free: the offline crate set has no argument
//! parser, and the flags are few).

use tc_gen::Preset;

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Base dataset scale (log2 vertices of the largest instance).
    pub scale: u32,
    /// Rank sweep.
    pub ranks: Vec<usize>,
    /// Restrict to one preset, if given.
    pub preset: Option<Preset>,
    /// Generator seed.
    pub seed: u64,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Optional JSON-lines run-report path.
    pub json: Option<String>,
    /// Optional Chrome trace-event output path: when set, every
    /// distributed run of the experiment records into one trace file.
    pub trace: Option<String>,
    /// Optional metrics-snapshot output path: when set, every
    /// distributed run appends its full per-rank `tc-metrics-v1`
    /// snapshot as one JSON line.
    pub metrics: Option<String>,
    /// Measured repetitions per configuration (≥ 1). Timings in the
    /// emitted `tc-run-v2` record summarize all tries; deterministic
    /// counters must agree across tries exactly.
    pub tries: u64,
    /// Discarded warm-up repetitions run before the measured tries.
    pub warmup: u64,
    /// Intersection-kernel strategy override for the 2D/SUMMA runs.
    /// `None` keeps each experiment's own default. Seeded by the
    /// `TC_KERNEL` environment variable (strict parse) in [`ExpArgs::parse`];
    /// an explicit `--kernel` flag wins over the environment.
    pub kernel: Option<tc_core::KernelStrategy>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: 13,
            ranks: crate::DEFAULT_RANKS.to_vec(),
            preset: None,
            seed: tc_gen::DEFAULT_SEED,
            csv: None,
            json: None,
            trace: None,
            metrics: None,
            tries: 1,
            warmup: 0,
            kernel: None,
        }
    }
}

/// Strict non-negative integer parse, mirroring the `MPS_*` env
/// family: digits only — rejects empty strings, signs, whitespace and
/// anything non-numeric.
fn parse_count(flag: &str, v: &str) -> Result<u64, String> {
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad {flag}: expected a non-negative integer, got {v:?}"));
    }
    v.parse().map_err(|e| format!("bad {flag}: {e}"))
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(mut a) => {
                // The flag wins; TC_KERNEL fills the gap (strict: a
                // garbage value panics loudly naming the variable).
                if a.kernel.is_none() {
                    a.kernel = tc_core::KernelStrategy::from_env();
                }
                a
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: <bin> [--scale N] [--ranks a,b,c] [--preset NAME] \
                     [--seed S] [--csv PATH] [--json PATH] [--trace PATH] \
                     [--metrics PATH] [--tries N] [--warmup K] \
                     [--kernel auto|hash|merge|bitmap]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "--scale" => {
                    out.scale =
                        value("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--seed" => {
                    out.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--ranks" => {
                    let v = value("--ranks")?;
                    out.ranks = v
                        .split(',')
                        .map(|s| s.trim().parse::<usize>().map_err(|e| format!("bad rank: {e}")))
                        .collect::<Result<_, _>>()?;
                    for &p in &out.ranks {
                        if tc_mps::perfect_square_side(p).is_none() {
                            return Err(format!("rank count {p} is not a perfect square"));
                        }
                    }
                }
                "--preset" => {
                    let name = value("--preset")?;
                    out.preset = Some(
                        Preset::parse(&name).ok_or_else(|| format!("unknown preset {name:?}"))?,
                    );
                }
                "--csv" => out.csv = Some(value("--csv")?),
                "--json" => out.json = Some(value("--json")?),
                "--trace" => out.trace = Some(value("--trace")?),
                "--metrics" => out.metrics = Some(value("--metrics")?),
                "--tries" => {
                    out.tries = parse_count("--tries", &value("--tries")?)?;
                    if out.tries == 0 {
                        return Err("bad --tries: need at least one measured try".into());
                    }
                }
                "--warmup" => out.warmup = parse_count("--warmup", &value("--warmup")?)?,
                "--kernel" => out.kernel = Some(value("--kernel")?.parse()?),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// The paper configuration with this invocation's kernel override
    /// applied — the base config every experiment should start from.
    pub fn base_config(&self) -> tc_core::TcConfig {
        match self.kernel {
            Some(k) => tc_core::TcConfig::paper().with_kernel(k),
            None => tc_core::TcConfig::paper(),
        }
    }

    /// The datasets this invocation covers: the single `--preset`, or
    /// the Table 1 testbed at `--scale`.
    pub fn datasets(&self) -> Vec<Preset> {
        match self.preset {
            Some(p) => vec![p],
            None => tc_gen::table1_testbed(self.scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse_from(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, 13);
        assert_eq!(a.ranks, crate::DEFAULT_RANKS);
        assert!(a.preset.is_none());
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--scale",
            "10",
            "--ranks",
            "4,9,16",
            "--preset",
            "g500-s9",
            "--seed",
            "7",
            "--csv",
            "/tmp/x.csv",
            "--json",
            "/tmp/x.json",
            "--trace",
            "/tmp/x.trace.json",
            "--metrics",
            "/tmp/x.metrics.json",
            "--tries",
            "5",
            "--warmup",
            "1",
        ])
        .unwrap();
        assert_eq!(a.scale, 10);
        assert_eq!(a.ranks, vec![4, 9, 16]);
        assert_eq!(a.preset, Some(Preset::G500 { scale: 9 }));
        assert_eq!(a.seed, 7);
        assert_eq!(a.csv.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
        assert_eq!(a.trace.as_deref(), Some("/tmp/x.trace.json"));
        assert_eq!(a.metrics.as_deref(), Some("/tmp/x.metrics.json"));
        assert_eq!((a.tries, a.warmup), (5, 1));
    }

    #[test]
    fn tries_and_warmup_default_to_single_cold_run() {
        let a = parse(&[]).unwrap();
        assert_eq!((a.tries, a.warmup), (1, 0));
    }

    #[test]
    fn tries_and_warmup_parse_strictly() {
        assert!(parse(&["--tries", "0"]).is_err());
        assert!(parse(&["--tries", ""]).is_err());
        assert!(parse(&["--tries", "+3"]).is_err());
        assert!(parse(&["--tries", "-1"]).is_err());
        assert!(parse(&["--tries", "3x"]).is_err());
        assert!(parse(&["--tries", " 3"]).is_err());
        assert!(parse(&["--tries"]).is_err());
        assert!(parse(&["--warmup", "abc"]).is_err());
        assert!(parse(&["--warmup", "1.5"]).is_err());
        let a = parse(&["--tries", "3", "--warmup", "0"]).unwrap();
        assert_eq!((a.tries, a.warmup), (3, 0));
    }

    #[test]
    fn kernel_flag_parses_strictly_and_feeds_base_config() {
        use tc_core::KernelStrategy;
        let a = parse(&[]).unwrap();
        assert_eq!(a.kernel, None);
        assert_eq!(a.base_config(), tc_core::TcConfig::paper());
        let a = parse(&["--kernel", "bitmap"]).unwrap();
        assert_eq!(a.kernel, Some(KernelStrategy::Bitmap));
        assert_eq!(a.base_config().kernel, KernelStrategy::Bitmap);
        assert!(parse(&["--kernel"]).is_err());
        assert!(parse(&["--kernel", "simd"]).is_err());
        assert!(parse(&["--kernel", "Hash"]).is_err(), "strict: no case folding");
    }

    #[test]
    fn rejects_non_square_ranks() {
        assert!(parse(&["--ranks", "4,10"]).is_err());
    }

    #[test]
    fn rejects_unknown_flag_and_preset() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--preset", "nope"]).is_err());
        assert!(parse(&["--scale"]).is_err());
    }

    #[test]
    fn datasets_prefers_explicit_preset() {
        let a = parse(&["--preset", "g500-s8"]).unwrap();
        assert_eq!(a.datasets().len(), 1);
        let b = parse(&["--scale", "11"]).unwrap();
        assert_eq!(b.datasets().len(), 6);
    }
}
