//! Plain-text table rendering and CSV emission for the experiment
//! binaries — the output mirrors the row/column structure of the
//! paper's tables so side-by-side comparison is mechanical.

use std::io::Write;

/// An in-memory table with a title, header, and string rows.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Appends the rows as CSV to `path` (with a header line naming
    /// the table in a comment and the columns).
    pub fn write_csv(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        );
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }

    /// Writes CSV if a path was provided.
    pub fn maybe_csv(&self, path: &Option<String>) {
        if let Some(p) = path {
            if let Err(e) = self.write_csv(p) {
                eprintln!("warning: failed to write {p}: {e}");
            }
        }
    }

    /// Renders the table as one machine-readable JSON object:
    /// `{"title": ..., "columns": [...], "rows": [[...], ...]}`.
    pub fn to_json(&self) -> String {
        // `escape` returns the quoted JSON string literal.
        use tc_trace::json::escape;
        let mut out = String::new();
        out.push_str(&format!("{{\"title\":{},\"columns\":[", escape(&self.title)));
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(h));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, c) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&escape(c));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Appends the table as one JSON line to `path` (JSON-lines: each
    /// table an experiment emits becomes one self-describing record).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        );
        writeln!(f, "{}", self.to_json())?;
        f.flush()
    }

    /// Writes the JSON run report if a path was provided.
    pub fn maybe_json(&self, path: &Option<String>) {
        if let Some(p) = path {
            if let Err(e) = self.write_json(p) {
                eprintln!("warning: failed to write {p}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "b"]);
        t.row(vec!["1".into(), "2".into(), "333333".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn json_report_parses_back() {
        let mut t = Table::new("demo \"quoted\"", &["ranks", "tct(s)"]);
        t.row(vec!["4".into(), "0.123".into()]);
        t.row(vec!["9".into(), "0.456".into()]);
        let doc = tc_trace::json::parse(&t.to_json()).expect("valid JSON");
        assert_eq!(doc.get("title").and_then(|v| v.as_str()), Some("demo \"quoted\""));
        let cols = doc.get("columns").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(cols.len(), 2);
        let rows = doc.get("rows").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].as_arr().unwrap()[1].as_str(), Some("0.456"));
    }

    #[test]
    fn json_lines_append() {
        let dir = std::env::temp_dir().join(format!("tcbench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let p = path.to_str().unwrap().to_string();
        let mut t = Table::new("one", &["a"]);
        t.row(vec!["1".into()]);
        t.write_json(&p).unwrap();
        t.write_json(&p).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            tc_trace::json::parse(line).expect("each line is a JSON object");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tcbench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let p = path.to_str().unwrap().to_string();
        let mut t = Table::new("csv", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(&p).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("x,y"));
        assert!(content.contains("1,2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
