//! Plain-text table rendering and CSV emission for the experiment
//! binaries — the output mirrors the row/column structure of the
//! paper's tables so side-by-side comparison is mechanical.

use std::io::Write;

/// An in-memory table with a title, header, and string rows.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Appends the rows as CSV to `path` (with a header line naming
    /// the table in a comment and the columns).
    pub fn write_csv(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        );
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }

    /// Writes CSV if a path was provided.
    pub fn maybe_csv(&self, path: &Option<String>) {
        if let Some(p) = path {
            if let Err(e) = self.write_csv(p) {
                eprintln!("warning: failed to write {p}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "b"]);
        t.row(vec!["1".into(), "2".into(), "333333".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tcbench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let p = path.to_str().unwrap().to_string();
        let mut t = Table::new("csv", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(&p).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("x,y"));
        assert!(content.contains("1,2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
