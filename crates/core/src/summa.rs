//! SUMMA-style triangle counting on rectangular processor grids.
//!
//! The paper's conclusion notes that the formulation "can be easily
//! extended to deal with rectangular processor grids using the SUMMA
//! algorithm" — this module is that extension. Instead of Cannon's
//! point-to-point shifts on a square grid, the inner dimension (the
//! triangle-closing vertices `k`) is cut into `K` contiguous panels;
//! at step `w` the owner column of `U`-panel `w` broadcasts it along
//! each grid row and the owner row of `L`-panel `w` broadcasts it down
//! each grid column, and every rank runs the same intersection kernel
//! as the Cannon path (`count::count_shift`).
//!
//! Tasks are distributed 2D-cyclically over the `pr × pc` grid exactly
//! as in the square formulation, so correctness rests on the same
//! partition argument: the panels partition the `k` axis, hence the
//! per-panel intersection counts sum to the exact per-edge count.

use std::time::Instant;

use bytes::Bytes;
use tc_graph::{Csr, EdgeList};
use tc_metrics::{names as mnames, MemScope};
use tc_mps::{Comm, MpsResult, Observe, RecvRequest, SocketConfig, Universe};

use crate::blocks::{SparseBlock, SparseBlockRef};
use crate::config::{Enumeration, TcConfig};
use crate::intersect::KernelState;
use crate::metrics::{CommPhase, RankMetrics, TcResult};
use crate::preprocess::{relabel_phase_from, BlockInput};

/// Rectangular grid geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaGrid {
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
    /// Number of inner-dimension panels (`K`).
    pub panels: usize,
}

impl SummaGrid {
    /// A `pr × pc` grid with the default panel count `max(pr, pc)`.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0, "grid dimensions must be positive");
        Self { pr, pc, panels: pr.max(pc) }
    }

    /// Overrides the panel count.
    pub fn with_panels(mut self, k: usize) -> Self {
        assert!(k > 0, "need at least one panel");
        self.panels = k;
        self
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    fn rank_of(&self, x: usize, y: usize) -> usize {
        x * self.pc + y
    }

    fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }

    /// Panel index of inner vertex `k` for an `n`-vertex graph.
    fn panel_of(&self, k: u32, n: usize) -> usize {
        let width = n.div_ceil(self.panels).max(1);
        (k as usize / width).min(self.panels - 1)
    }

    /// Rows owned by grid-row class `x` (stride `pr`).
    fn row_count(&self, n: usize, x: usize) -> usize {
        if n == 0 {
            0
        } else {
            (n + self.pr - 1 - x) / self.pr
        }
    }

    /// Rows owned by grid-column class `y` (stride `pc`).
    fn col_count(&self, n: usize, y: usize) -> usize {
        if n == 0 {
            0
        } else {
            (n + self.pc - 1 - y) / self.pc
        }
    }
}

/// Reserved user-tag base for SUMMA broadcasts.
const SUMMA_TAG: u64 = (1 << 46) + 0x51;

/// Broadcasts `mine` (present on the root) within an explicit rank
/// group; linear fan-out is fine at grid-row/column sizes.
fn group_bcast(
    comm: &Comm,
    root: usize,
    members: &[usize],
    tag: u64,
    mine: Option<Bytes>,
) -> MpsResult<Bytes> {
    if comm.rank() == root {
        let data = mine.expect("root must hold the panel");
        for &m in members {
            if m != root {
                comm.send_bytes(m, tag, data.clone());
            }
        }
        Ok(data)
    } else {
        comm.recv_bytes(root, tag)
    }
}

/// A panel broadcast in flight: the root already holds the serialized
/// panel, every other group member holds its posted receive.
enum PendingPanel<'c> {
    Root(Bytes),
    Fetch(RecvRequest<'c>),
}

impl PendingPanel<'_> {
    fn finish(self) -> MpsResult<Bytes> {
        match self {
            PendingPanel::Root(b) => Ok(b),
            PendingPanel::Fetch(r) => r.wait(),
        }
    }
}

/// Nonblocking [`group_bcast`]: the root serializes the panel and
/// eagerly sends it to the group, receivers post the matching irecv;
/// either side completes in [`PendingPanel::finish`].
fn group_bcast_start<'c>(
    comm: &'c Comm,
    root: usize,
    members: &[usize],
    tag: u64,
    mine: Option<&SparseBlock>,
) -> PendingPanel<'c> {
    if comm.rank() == root {
        let data = mine.expect("root must hold the panel").to_blob();
        tc_metrics::counter_add(mnames::SHIFT_BYTES_SERIALIZED, data.len() as u64);
        for &m in members {
            if m != root {
                let _ = comm.isend_bytes(m, tag, data.clone());
            }
        }
        PendingPanel::Root(data)
    } else {
        PendingPanel::Fetch(comm.irecv_bytes(root, tag))
    }
}

/// Starts both broadcasts of panel step `w` (the `U` panel along the
/// grid row, the `L` panel down the grid column).
#[allow(clippy::too_many_arguments)] // internal glue over the grid geometry
fn start_panel_step<'c>(
    comm: &'c Comm,
    grid: &SummaGrid,
    x: usize,
    y: usize,
    row_members: &[usize],
    col_members: &[usize],
    w: usize,
    u_mine: Option<SparseBlock>,
    l_mine: Option<SparseBlock>,
) -> (PendingPanel<'c>, PendingPanel<'c>) {
    let u_root = grid.rank_of(x, w % grid.pc);
    let l_root = grid.rank_of(w % grid.pr, y);
    let tag = SUMMA_TAG + (w as u64) * 4;
    let pu = group_bcast_start(comm, u_root, row_members, tag, u_mine.as_ref());
    let pl = group_bcast_start(comm, l_root, col_members, tag + 1, l_mine.as_ref());
    (pu, pl)
}

/// Counts triangles on a `pr × pc` grid with SUMMA broadcasts.
///
/// # Panics
///
/// Panics if `el` is not simplified.
pub fn count_triangles_summa(el: &EdgeList, grid: SummaGrid, cfg: &TcConfig) -> TcResult {
    match try_count_triangles_summa(el, grid, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_triangles_summa`]: runtime failures come back as
/// [`tc_mps::MpsError`] instead of a panic.
pub fn try_count_triangles_summa(
    el: &EdgeList,
    grid: SummaGrid,
    cfg: &TcConfig,
) -> MpsResult<TcResult> {
    try_count_triangles_summa_traced(el, grid, cfg, None)
}

/// [`try_count_triangles_summa`] with an optional trace session. Panel
/// steps record the same `shift_compute` spans as Cannon shifts (the
/// `z` argument is the panel index), so the trace analyzer treats both
/// paths uniformly.
pub fn try_count_triangles_summa_traced(
    el: &EdgeList,
    grid: SummaGrid,
    cfg: &TcConfig,
    trace: Option<&tc_trace::TraceHandle>,
) -> MpsResult<TcResult> {
    try_count_triangles_summa_observed(el, grid, cfg, Observe::trace(trace))
}

/// [`try_count_triangles_summa`] with optional trace and metrics
/// sessions.
pub fn try_count_triangles_summa_observed(
    el: &EdgeList,
    grid: SummaGrid,
    cfg: &TcConfig,
    obs: Observe<'_>,
) -> MpsResult<TcResult> {
    assert!(el.is_simple(), "input must be a simplified undirected graph");
    let p = grid.size();
    let global = Csr::from_edge_list(el);

    let (rank_outs, comm_stats) = Universe::try_run_config(p, &obs.to_config(), |comm| {
        summa_rank(comm, &grid, &global, cfg)
    })?;

    let triangles = rank_outs[0].0;
    let mut ranks = Vec::with_capacity(p);
    for ((t, mut m), cs) in rank_outs.into_iter().zip(comm_stats) {
        assert_eq!(t, triangles, "ranks disagree on the reduced count");
        m.bytes_sent = cs.bytes_sent;
        ranks.push(m);
    }
    Ok(TcResult { triangles, num_ranks: p, ranks })
}

/// SUMMA counting as one rank of a multi-process socket universe: the
/// grid must satisfy `grid.size() == sock.peers.len()`, and every
/// process must be launched with the same graph, grid, and config.
/// Returns the reduced triangle count and this rank's metrics.
pub fn try_count_triangles_summa_socket(
    el: &EdgeList,
    grid: SummaGrid,
    cfg: &TcConfig,
    sock: &SocketConfig,
) -> MpsResult<(u64, RankMetrics)> {
    assert!(el.is_simple(), "input must be a simplified undirected graph");
    assert_eq!(
        grid.size(),
        sock.peers.len(),
        "grid geometry and socket peer list disagree on the rank count"
    );
    let global = Csr::from_edge_list(el);
    let ((triangles, mut metrics), stats) =
        Universe::try_run_socket(sock, |comm| summa_rank(comm, &grid, &global, cfg))?;
    metrics.bytes_sent = stats.bytes_sent;
    Ok((triangles, metrics))
}

/// The per-rank body of the SUMMA pipeline, shared by the in-process
/// and socket entry points (see [`crate::driver`]'s rank-body note).
fn summa_rank(
    comm: &Comm,
    grid: &SummaGrid,
    global: &Csr,
    cfg: &TcConfig,
) -> MpsResult<(u64, RankMetrics)> {
    summa_rank_from(comm, grid, global.num_vertices(), &BlockInput::Shared(global), cfg)
}

/// The SUMMA rank body over an explicit per-rank input source: this
/// rank contributes its 1D block of an `n`-vertex graph (shared CSR
/// window or materialized rows) and participates in the full panel
/// pipeline. Returns the globally reduced triangle count (identical on
/// every rank) and this rank's metrics — the rectangular-grid recount
/// oracle counterpart of [`crate::driver::count_rank_from`].
pub fn summa_rank_from(
    comm: &Comm,
    grid: &SummaGrid,
    n: usize,
    input: &BlockInput<'_>,
    cfg: &TcConfig,
) -> MpsResult<(u64, RankMetrics)> {
    let p = grid.size();
    {
        let mut metrics = RankMetrics::default();
        let (x, y) = grid.coords(comm.rank());

        // ---- preprocessing ----
        let phase = CommPhase::begin(comm, tc_trace::names::PHASE_PPT)?;
        let relabeled = relabel_phase_from(comm, n, input)?;
        let mut ops = relabeled.ops;

        // Route every upper entry to its task cell, U-panel owner, and
        // L-panel owner.
        let mut u_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
        let mut l_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
        let mut t_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
        for &(nv, nk) in &relabeled.entries {
            ops += 1;
            let w = grid.panel_of(nk, n);
            u_sends[grid.rank_of(nv as usize % grid.pr, w % grid.pc)].push([nv, nk]);
            l_sends[grid.rank_of(w % grid.pr, nv as usize % grid.pc)].push([nv, nk]);
            let (a_vert, b_vert) = match cfg.enumeration {
                Enumeration::Jik => (nk, nv),
                Enumeration::Ijk => (nv, nk),
            };
            t_sends[grid.rank_of(a_vert as usize % grid.pr, b_vert as usize % grid.pc)]
                .push([a_vert, b_vert]);
        }
        drop(relabeled);
        let staged: usize =
            [&u_sends, &l_sends, &t_sends].iter().flat_map(|s| s.iter()).map(|v| v.len() * 8).sum();
        let prep_mem = MemScope::track(mnames::MEM_PREP_STAGING, staged as u64);
        let u_recv = comm.alltoallv(&u_sends)?;
        drop(u_sends);
        let l_recv = comm.alltoallv(&l_sends)?;
        drop(l_sends);
        let t_recv = comm.alltoallv(&t_sends)?;
        drop(t_sends);
        drop(prep_mem);

        // Build this rank's panels, bucketed by panel index.
        let bucket = |msgs: Vec<Vec<[u32; 2]>>| -> Vec<Vec<(u32, u32)>> {
            let mut by_panel: Vec<Vec<(u32, u32)>> = vec![Vec::new(); grid.panels];
            for msg in msgs {
                for [v, k] in msg {
                    by_panel[grid.panel_of(k, n)].push((v, k));
                }
            }
            by_panel
        };
        let mut u_panels: Vec<Option<SparseBlock>> = vec![None; grid.panels];
        for (w, mut pairs) in bucket(u_recv).into_iter().enumerate() {
            if w % grid.pc == y {
                ops += pairs.len() as u64;
                u_panels[w] =
                    Some(SparseBlock::from_pairs(grid.row_count(n, x), grid.pr, &mut pairs));
            } else {
                debug_assert!(pairs.is_empty(), "panel routed to wrong owner");
            }
        }
        let mut l_panels: Vec<Option<SparseBlock>> = vec![None; grid.panels];
        for (w, mut pairs) in bucket(l_recv).into_iter().enumerate() {
            if w % grid.pr == x {
                ops += pairs.len() as u64;
                l_panels[w] =
                    Some(SparseBlock::from_pairs(grid.col_count(n, y), grid.pc, &mut pairs));
            } else {
                debug_assert!(pairs.is_empty(), "panel routed to wrong owner");
            }
        }
        let mut t_pairs: Vec<(u32, u32)> =
            t_recv.into_iter().flatten().map(|[a, b]| (a, b)).collect();
        ops += t_pairs.len() as u64;
        let task = SparseBlock::from_pairs(grid.row_count(n, x), grid.pr, &mut t_pairs);

        let local_max_row = u_panels.iter().flatten().map(|b| b.max_row_len()).max().unwrap_or(0);
        let max_hash_row = comm.allreduce_max_u64(local_max_row as u64)? as usize;
        metrics.finish_ppt(phase.finish()?, ops);

        // Resident panel storage held across the whole counting loop
        // (entries dominate; 8 bytes per (v, k) pair).
        let panel_bytes: usize =
            u_panels.iter().chain(l_panels.iter()).flatten().map(|b| b.num_entries() * 8).sum();
        let panel_mem = MemScope::track(mnames::MEM_SUMMA_PANELS, panel_bytes as u64);

        // ---- counting: K panel steps, row + column broadcasts ----
        let phase = CommPhase::begin(comm, tc_trace::names::PHASE_TCT)?;
        // Panels are contiguous in k, so the map hashes raw ids
        // (stride 1) rather than the Cannon path's `k ÷ q` transform.
        let mut ks = KernelState::new(max_hash_row, 1);
        let mut local = 0u64;
        let mut tasks = 0u64;
        let row_members: Vec<usize> = (0..grid.pc).map(|yy| grid.rank_of(x, yy)).collect();
        let col_members: Vec<usize> = (0..grid.pr).map(|xx| grid.rank_of(xx, y)).collect();
        let mut shift_compute = Vec::with_capacity(grid.panels);
        if cfg.overlap_shifts {
            // Zero-copy pipeline: each panel is serialized once (at
            // its root) and broadcast as a refcounted buffer; the
            // next step's broadcasts are posted before computing the
            // current step against borrowed views of the wire bytes.
            let mut cur = {
                let _xchg_span =
                    tc_trace::span(tc_trace::names::SHIFT_XCHG, tc_trace::Category::Shift)
                        .arg("z", 0u64);
                let (pu, pl) = start_panel_step(
                    comm,
                    grid,
                    x,
                    y,
                    &row_members,
                    &col_members,
                    0,
                    u_panels[0].take(),
                    l_panels[0].take(),
                );
                (pu.finish()?, pl.finish()?)
            };
            for w in 0..grid.panels {
                let step0 = tc_mps::CpuTimer::start();
                let next = (w + 1 < grid.panels).then(|| {
                    let step = start_panel_step(
                        comm,
                        grid,
                        x,
                        y,
                        &row_members,
                        &col_members,
                        w + 1,
                        u_panels[w + 1].take(),
                        l_panels[w + 1].take(),
                    );
                    (step, Instant::now())
                });
                let (u_blob, l_blob) = &cur;
                tc_metrics::hist_record(mnames::SHIFT_BYTES, u_blob.len() as u64);
                tc_metrics::hist_record(mnames::SHIFT_BYTES, l_blob.len() as u64);
                let tasks_before = tasks;
                let mut compute_span =
                    tc_trace::span(tc_trace::names::SHIFT_COMPUTE, tc_trace::Category::Shift)
                        .arg("z", w as u64);
                let hash_block = SparseBlockRef::from_blob(u_blob);
                let probe_block = SparseBlockRef::from_blob(l_blob);
                local += crate::count::count_shift(
                    &task,
                    &hash_block,
                    &probe_block,
                    &mut ks,
                    grid.pc,
                    cfg,
                    &mut tasks,
                );
                compute_span.record_arg("tasks", tasks - tasks_before);
                drop(compute_span);
                if let Some(((pu, pl), posted)) = next {
                    tc_metrics::hist_record(
                        mnames::SHIFT_OVERLAP_WINDOW_NS,
                        posted.elapsed().as_nanos() as u64,
                    );
                    let _xchg_span =
                        tc_trace::span(tc_trace::names::SHIFT_XCHG, tc_trace::Category::Shift)
                            .arg("z", (w + 1) as u64);
                    cur = (pu.finish()?, pl.finish()?);
                }
                shift_compute.push(step0.elapsed());
            }
        } else {
            // Synchronous ablation schedule: blocking broadcasts and
            // owned deserialized operands, one panel at a time.
            for w in 0..grid.panels {
                let step0 = tc_mps::CpuTimer::start();
                let u_root = grid.rank_of(x, w % grid.pc);
                let serialize = |b: SparseBlock| {
                    let blob = b.to_blob();
                    tc_metrics::counter_add(mnames::SHIFT_BYTES_SERIALIZED, blob.len() as u64);
                    blob
                };
                let xchg_span =
                    tc_trace::span(tc_trace::names::SHIFT_XCHG, tc_trace::Category::Shift)
                        .arg("z", w as u64);
                let u_blob = group_bcast(
                    comm,
                    u_root,
                    &row_members,
                    SUMMA_TAG + (w as u64) * 4,
                    u_panels[w].take().map(serialize),
                )?;
                let l_root = grid.rank_of(w % grid.pr, y);
                let l_blob = group_bcast(
                    comm,
                    l_root,
                    &col_members,
                    SUMMA_TAG + (w as u64) * 4 + 1,
                    l_panels[w].take().map(serialize),
                )?;
                drop(xchg_span);
                tc_metrics::hist_record(mnames::SHIFT_BYTES, u_blob.len() as u64);
                tc_metrics::hist_record(mnames::SHIFT_BYTES, l_blob.len() as u64);
                let tasks_before = tasks;
                let mut compute_span =
                    tc_trace::span(tc_trace::names::SHIFT_COMPUTE, tc_trace::Category::Shift)
                        .arg("z", w as u64);
                let hash_block = SparseBlock::from_blob(u_blob);
                let probe_block = SparseBlock::from_blob(l_blob);
                local += crate::count::count_shift(
                    &task,
                    &hash_block,
                    &probe_block,
                    &mut ks,
                    grid.pc,
                    cfg,
                    &mut tasks,
                );
                compute_span.record_arg("tasks", tasks - tasks_before);
                drop(compute_span);
                shift_compute.push(step0.elapsed());
            }
        }
        let triangles = comm.allreduce_sum_u64(local)?;
        drop(panel_mem);
        metrics.finish_tct(phase.finish()?);

        tc_metrics::gauge_max(mnames::HASH_SLOTS, ks.map.table_size() as u64);
        tc_metrics::gauge_max(mnames::HASH_MAX_ROW, max_hash_row as u64);
        tc_metrics::gauge_max(
            mnames::HASH_LOAD_PCT,
            (max_hash_row * 100 / ks.map.table_size().max(1)) as u64,
        );
        metrics.record_kernel(&ks.map.stats, &ks.stats, tasks, local);
        metrics.record_shift_compute(shift_compute);
        Ok((triangles, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let g = SummaGrid::new(2, 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.panels, 3);
        assert_eq!(g.coords(5), (1, 2));
        assert_eq!(g.rank_of(1, 2), 5);
        assert_eq!(g.with_panels(7).panels, 7);
    }

    #[test]
    fn panel_of_covers_range() {
        let g = SummaGrid::new(2, 2).with_panels(4);
        let n = 10;
        for k in 0..10u32 {
            let w = g.panel_of(k, n);
            assert!(w < 4, "k={k} w={w}");
        }
        assert_eq!(g.panel_of(0, n), 0);
        assert_eq!(g.panel_of(9, n), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dim() {
        SummaGrid::new(0, 3);
    }
}
