//! Cannon-pattern orchestration of the counting phase (paper §5.1).
//!
//! The counting phase performs, in order:
//!
//! 1. the **initial skew**: `U(x, y)` moves left by `x` so that
//!    `P(x, y)` holds `U(x, (x+y) % q)`, and `L` moves up by `y` so
//!    that `P(x, y)` holds `L((x+y) % q, y)`;
//! 2. `q = √p` **compute steps**, each counting against the currently
//!    held operand pair (Eq. 6's term `z`), separated by single-step
//!    shifts (`U` left, `L` up), with operands travelling as single
//!    contiguous blobs;
//! 3. a final **global reduction** of the per-rank counts.

use std::time::{Duration, Instant};

use bytes::Bytes;
use tc_metrics::{names as mnames, MemScope};
use tc_mps::{Comm, Grid, MpsError, MpsResult};

use crate::blocks::{BlockView, SparseBlock, SparseBlockRef};
use crate::config::TcConfig;
use crate::count::count_shift;
use crate::intersect::{KernelState, KernelStats};
use crate::preprocess::PrepOutput;

/// Per-rank outcome of the counting phase.
#[derive(Debug)]
pub struct CountOutput {
    /// Global triangle count (identical on every rank after the
    /// reduction).
    pub triangles: u64,
    /// Triangles found by this rank's tasks.
    pub local_triangles: u64,
    /// Compute-only duration of each shift.
    pub shift_compute: Vec<Duration>,
    /// Tasks that performed at least one lookup (Table 4 metric).
    pub tasks: u64,
    /// Final intersection-map statistics.
    pub map_stats: crate::hashmap::MapStats,
    /// Adaptive-kernel dispatch tallies (`tct.kernel.*`).
    pub kernel_stats: KernelStats,
    /// When requested: `(a, b, support)` for every task of this rank,
    /// in degree-order labels, zero-support tasks included.
    pub per_edge: Option<Vec<(u32, u32, u64)>>,
}

/// Runs skew + shifts + reduction for one rank.
pub fn cannon_count(comm: &Comm, prep: PrepOutput, cfg: &TcConfig) -> MpsResult<CountOutput> {
    cannon_count_impl(comm, prep, cfg, false)
}

/// [`cannon_count`] that also accumulates per-edge triangle supports
/// (the per-task totals across all shifts).
pub fn cannon_count_per_edge(
    comm: &Comm,
    prep: PrepOutput,
    cfg: &TcConfig,
) -> MpsResult<CountOutput> {
    cannon_count_impl(comm, prep, cfg, true)
}

/// Records one exchange's payload sizes in the per-shift histogram.
fn note_exchange_bytes(u_blob: &Bytes, l_blob: &Bytes) {
    tc_metrics::hist_record(mnames::SHIFT_BYTES, u_blob.len() as u64);
    tc_metrics::hist_record(mnames::SHIFT_BYTES, l_blob.len() as u64);
}

/// One compute step against the current operand pair, shared by the
/// single-rank, overlapped, and synchronous schedules: spans, CPU
/// timing, and the owned/borrowed-generic kernel dispatch.
#[allow(clippy::too_many_arguments)] // internal glue mirroring count_shift
fn compute_step<H: BlockView, P: BlockView>(
    task: &SparseBlock,
    hash: &H,
    probe: &P,
    ks: &mut KernelState,
    q: usize,
    cfg: &TcConfig,
    z: usize,
    tasks: &mut u64,
    hits: &mut Option<Vec<(u32, u32)>>,
    shift_compute: &mut Vec<Duration>,
) -> u64 {
    let tasks_before = *tasks;
    let t0 = tc_mps::CpuTimer::start();
    let mut compute_span =
        tc_trace::span(tc_trace::names::SHIFT_COMPUTE, tc_trace::Category::Shift)
            .arg("z", z as u64);
    let found = match hits.as_mut() {
        None => count_shift(task, hash, probe, ks, q, cfg, tasks),
        Some(h) => crate::count::count_shift_recording(task, hash, probe, ks, q, cfg, tasks, {
            |idx, k| h.push((idx as u32, k))
        }),
    };
    compute_span.record_arg("tasks", *tasks - tasks_before);
    drop(compute_span);
    shift_compute.push(t0.elapsed());
    found
}

fn cannon_count_impl(
    comm: &Comm,
    mut prep: PrepOutput,
    cfg: &TcConfig,
    collect_per_edge: bool,
) -> MpsResult<CountOutput> {
    let grid = Grid::new(comm);
    let q = prep.q;
    debug_assert_eq!(grid.q(), q);
    let (x, y) = (prep.x, prep.y);
    let ublock_init = std::mem::replace(&mut prep.ublock, SparseBlock::empty(0));
    let lblock_init = std::mem::replace(&mut prep.lblock, SparseBlock::empty(0));

    let mut ks = KernelState::new(prep.max_hash_row, q);
    let mut local = 0u64;
    let mut tasks = 0u64;
    let mut shift_compute = Vec::with_capacity(q);
    // Per-edge mode records every (task entry, closing vertex k) hit.
    let mut hits: Option<Vec<(u32, u32)>> = collect_per_edge.then(Vec::new);

    if q == 1 {
        // Single grid cell: operands are aligned and never travel.
        local += compute_step(
            &prep.task,
            &ublock_init,
            &lblock_init,
            &mut ks,
            q,
            cfg,
            0,
            &mut tasks,
            &mut hits,
            &mut shift_compute,
        );
    } else if cfg.overlap_shifts {
        // Zero-copy pipeline: each operand is serialized exactly once,
        // at the skew. From then on the pair of blobs is the reusable
        // staging storage — shifts forward the refcounted buffers
        // verbatim (a clone is a refcount bump, not a copy) and the
        // kernel computes against borrowed views of the wire bytes, so
        // the steady-state loop allocates nothing.
        let (mut u_blob, mut l_blob) = {
            let _skew_span =
                tc_trace::span(tc_trace::names::SKEW, tc_trace::Category::Shift).arg("z", 0u64);
            let u_blob = ublock_init.to_blob();
            let l_blob = lblock_init.to_blob();
            drop((ublock_init, lblock_init));
            note_exchange_bytes(&u_blob, &l_blob);
            tc_metrics::counter_add(
                mnames::SHIFT_BYTES_SERIALIZED,
                (u_blob.len() + l_blob.len()) as u64,
            );
            let _staging =
                MemScope::track(mnames::MEM_SHIFT_STAGING, (u_blob.len() + l_blob.len()) as u64);
            let u_dst = (x, (y + q - x) % q);
            let u_src = (x, (x + y) % q);
            let ub = grid.exchange_bytes(u_dst.0, u_dst.1, u_blob, u_src.0, u_src.1)?;
            let l_dst = ((x + q - y) % q, y);
            let l_src = ((x + y) % q, y);
            let lb = grid.exchange_bytes(l_dst.0, l_dst.1, l_blob, l_src.0, l_src.1)?;
            (ub, lb)
        };
        for z in 0..q {
            // Post the shift-(z+1) exchange before computing shift z,
            // so the transfer progresses under the compute.
            let pending = (z + 1 < q).then(|| {
                note_exchange_bytes(&u_blob, &l_blob);
                let left = grid.shift_left_start(u_blob.clone());
                let up = grid.shift_up_start(l_blob.clone());
                (left, up, Instant::now())
            });
            let _staging =
                MemScope::track(mnames::MEM_SHIFT_STAGING, (u_blob.len() + l_blob.len()) as u64);
            let hash = SparseBlockRef::from_blob(&u_blob);
            let probe = SparseBlockRef::from_blob(&l_blob);
            local += compute_step(
                &prep.task,
                &hash,
                &probe,
                &mut ks,
                q,
                cfg,
                z,
                &mut tasks,
                &mut hits,
                &mut shift_compute,
            );
            if let Some((left, up, posted)) = pending {
                tc_metrics::hist_record(
                    mnames::SHIFT_OVERLAP_WINDOW_NS,
                    posted.elapsed().as_nanos() as u64,
                );
                // Tag the exchange with the shift whose operands it
                // delivers; the span covers only the wait, which is
                // all that remains on the critical path.
                let _xchg_span =
                    tc_trace::span(tc_trace::names::SHIFT_XCHG, tc_trace::Category::Shift)
                        .arg("z", (z + 1) as u64);
                u_blob = left.wait()?;
                l_blob = up.wait()?;
            }
        }
    } else {
        // Synchronous ablation schedule: blocking sendrecv exchanges
        // and owned operands, paying a deserialize + reserialize per
        // shift. Counts and probe statistics are identical to the
        // overlapped path; only communication behavior differs.
        let (mut ublock, mut lblock) = {
            let _skew_span =
                tc_trace::span(tc_trace::names::SKEW, tc_trace::Category::Shift).arg("z", 0u64);
            let u_dst = (x, (y + q - x) % q);
            let u_src = (x, (x + y) % q);
            let u_blob = ublock_init.to_blob();
            let l_blob = lblock_init.to_blob();
            note_exchange_bytes(&u_blob, &l_blob);
            tc_metrics::counter_add(
                mnames::SHIFT_BYTES_SERIALIZED,
                (u_blob.len() + l_blob.len()) as u64,
            );
            let _staging =
                MemScope::track(mnames::MEM_SHIFT_STAGING, (u_blob.len() + l_blob.len()) as u64);
            let ub = grid.exchange_bytes(u_dst.0, u_dst.1, u_blob, u_src.0, u_src.1)?;
            let l_dst = ((x + q - y) % q, y);
            let l_src = ((x + y) % q, y);
            let lb = grid.exchange_bytes(l_dst.0, l_dst.1, l_blob, l_src.0, l_src.1)?;
            (SparseBlock::from_blob(ub), SparseBlock::from_blob(lb))
        };
        for z in 0..q {
            local += compute_step(
                &prep.task,
                &ublock,
                &lblock,
                &mut ks,
                q,
                cfg,
                z,
                &mut tasks,
                &mut hits,
                &mut shift_compute,
            );
            if z + 1 < q {
                // Tag the exchange with the shift whose operands it
                // delivers (matching the skew, which delivers shift 0's).
                let _xchg_span =
                    tc_trace::span(tc_trace::names::SHIFT_XCHG, tc_trace::Category::Shift)
                        .arg("z", (z + 1) as u64);
                let u_blob = ublock.to_blob();
                let l_blob = lblock.to_blob();
                note_exchange_bytes(&u_blob, &l_blob);
                tc_metrics::counter_add(
                    mnames::SHIFT_BYTES_SERIALIZED,
                    (u_blob.len() + l_blob.len()) as u64,
                );
                let _staging = MemScope::track(
                    mnames::MEM_SHIFT_STAGING,
                    (u_blob.len() + l_blob.len()) as u64,
                );
                ublock = SparseBlock::from_blob(grid.shift_left(u_blob)?);
                lblock = SparseBlock::from_blob(grid.shift_up(l_blob)?);
            }
        }
    }

    tc_metrics::gauge_max(mnames::HASH_SLOTS, ks.map.table_size() as u64);
    tc_metrics::gauge_max(mnames::HASH_MAX_ROW, prep.max_hash_row as u64);
    tc_metrics::gauge_max(
        mnames::HASH_LOAD_PCT,
        (prep.max_hash_row * 100 / ks.map.table_size().max(1)) as u64,
    );

    let triangles = comm.allreduce_sum_u64(local)?;
    let per_edge = match hits {
        Some(h) => Some(resolve_per_edge(comm, &prep, cfg, h, q)?),
        None => None,
    };
    Ok(CountOutput {
        triangles,
        local_triangles: local,
        shift_compute,
        tasks,
        map_stats: ks.map.stats,
        kernel_stats: ks.stats,
        per_edge,
    })
}

/// Turns the raw per-hit records into full per-edge supports.
///
/// A hit on task `(a, b)` with closing vertex `k` is one triangle
/// `{i, j, k}` (degree-order `i < j < k`); it contributes support to
/// all **three** edges, but only the `(i, j)` edge is a local task —
/// the `(i, k)` and `(j, k)` credits belong to tasks on other ranks
/// and are delivered with one personalized all-to-all.
fn resolve_per_edge(
    comm: &Comm,
    prep: &PrepOutput,
    cfg: &TcConfig,
    hits: Vec<(u32, u32)>,
    q: usize,
) -> MpsResult<Vec<(u32, u32, u64)>> {
    let p = comm.size();
    // Entry metadata: global (a, b) per task entry index, built once
    // and reused by the crediting loops and the final output pass.
    let mut entry_ab = vec![[0u32; 2]; prep.task.num_entries()];
    for &lr in prep.task.nonempty_rows() {
        let a = lr * q as u32 + prep.x as u32;
        let base = prep.task.row_start(lr as usize);
        for (pos, &b) in prep.task.row(lr as usize).iter().enumerate() {
            entry_ab[base + pos] = [a, b];
        }
    }

    // Task key of an edge (min, max): hash-side vertex first.
    let task_key = |lo: u32, hi: u32| -> (u32, u32) {
        match cfg.enumeration {
            crate::config::Enumeration::Jik => (hi, lo),
            crate::config::Enumeration::Ijk => (lo, hi),
        }
    };
    // Destination rank of the credit for edge (lo, hi).
    let credit_dst = |lo: u32, hi: u32| -> usize {
        let (ka, kb) = task_key(lo, hi);
        (ka as usize % q) * q + kb as usize % q
    };

    // Counting pass so every destination buffer is allocated exactly
    // once at its final size (each hit credits two remote-owned edges).
    let mut credit_counts = vec![0usize; p];
    for &(idx, k) in &hits {
        let [av, bv] = entry_ab[idx as usize];
        let (i, j) = (av.min(bv), av.max(bv));
        credit_counts[credit_dst(i, k)] += 1;
        credit_counts[credit_dst(j, k)] += 1;
    }
    let mut credit_sends: Vec<Vec<[u32; 2]>> =
        credit_counts.into_iter().map(Vec::with_capacity).collect();

    let mut supports = vec![0u64; prep.task.num_entries()];
    for (idx, k) in hits {
        supports[idx as usize] += 1;
        let [av, bv] = entry_ab[idx as usize];
        let (i, j) = (av.min(bv), av.max(bv));
        // k closes the triangle and is the largest label (operand rows
        // hold upper neighbours only).
        debug_assert!(k > j);
        for (lo, hi) in [(i, k), (j, k)] {
            let (ka, kb) = task_key(lo, hi);
            credit_sends[(ka as usize % q) * q + kb as usize % q].push([ka, kb]);
        }
    }
    for msg in comm.alltoallv(&credit_sends)? {
        for [ka, kb] in msg {
            let idx =
                prep.task.find_entry(ka as usize / q, kb).ok_or_else(|| MpsError::Protocol {
                    rank: comm.rank(),
                    msg: format!("credited edge ({ka},{kb}) has no local task"),
                })?;
            supports[idx] += 1;
        }
    }

    let mut out = Vec::with_capacity(supports.len());
    for (idx, s) in supports.into_iter().enumerate() {
        let [a, b] = entry_ab[idx];
        out.push((a, b, s));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_mps::Universe;

    /// A credit for an edge the receiving rank has no task for is an
    /// application-protocol violation and must surface as a typed
    /// error, not a panic inside the runtime.
    #[test]
    fn malformed_credit_is_a_protocol_error() {
        let out = Universe::run(1, |comm| {
            // Task (a=2, b=0) hits on k=3 (hash row A(2) = {3}, probe
            // row A(0) = {3}), so the per-edge pass credits edges
            // (0,3) and (2,3) — whose task entries (3,0) and (3,2) do
            // not exist in this deliberately incomplete task block.
            let task = SparseBlock::from_pairs(4, 1, &mut vec![(2u32, 0u32)]);
            let ublock = SparseBlock::from_pairs(4, 1, &mut vec![(2u32, 3u32)]);
            let lblock = SparseBlock::from_pairs(4, 1, &mut vec![(0u32, 3u32)]);
            let prep = crate::preprocess::PrepOutput {
                q: 1,
                x: 0,
                y: 0,
                n: 4,
                task,
                ublock,
                lblock,
                max_hash_row: 1,
                ops: 0,
                label_pairs: Vec::new(),
            };
            cannon_count_per_edge(comm, prep, &TcConfig::default())
        });
        match &out[0] {
            Err(MpsError::Protocol { rank, msg }) => {
                assert_eq!(*rank, 0);
                assert!(msg.contains("no local task"), "unexpected message: {msg}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }
}
