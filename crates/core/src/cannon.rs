//! Cannon-pattern orchestration of the counting phase (paper §5.1).
//!
//! The counting phase performs, in order:
//!
//! 1. the **initial skew**: `U(x, y)` moves left by `x` so that
//!    `P(x, y)` holds `U(x, (x+y) % q)`, and `L` moves up by `y` so
//!    that `P(x, y)` holds `L((x+y) % q, y)`;
//! 2. `q = √p` **compute steps**, each counting against the currently
//!    held operand pair (Eq. 6's term `z`), separated by single-step
//!    shifts (`U` left, `L` up), with operands travelling as single
//!    contiguous blobs;
//! 3. a final **global reduction** of the per-rank counts.

use std::time::Duration;

use tc_metrics::{names as mnames, MemScope};
use tc_mps::{Comm, Grid, MpsResult};

use crate::blocks::SparseBlock;
use crate::config::TcConfig;
use crate::count::count_shift;
use crate::hashmap::IntersectMap;
use crate::preprocess::PrepOutput;

/// Per-rank outcome of the counting phase.
#[derive(Debug)]
pub struct CountOutput {
    /// Global triangle count (identical on every rank after the
    /// reduction).
    pub triangles: u64,
    /// Triangles found by this rank's tasks.
    pub local_triangles: u64,
    /// Compute-only duration of each shift.
    pub shift_compute: Vec<Duration>,
    /// Tasks that performed at least one lookup (Table 4 metric).
    pub tasks: u64,
    /// Final intersection-map statistics.
    pub map_stats: crate::hashmap::MapStats,
    /// When requested: `(a, b, support)` for every task of this rank,
    /// in degree-order labels, zero-support tasks included.
    pub per_edge: Option<Vec<(u32, u32, u64)>>,
}

/// Runs skew + shifts + reduction for one rank.
pub fn cannon_count(comm: &Comm, prep: PrepOutput, cfg: &TcConfig) -> MpsResult<CountOutput> {
    cannon_count_impl(comm, prep, cfg, false)
}

/// [`cannon_count`] that also accumulates per-edge triangle supports
/// (the per-task totals across all shifts).
pub fn cannon_count_per_edge(
    comm: &Comm,
    prep: PrepOutput,
    cfg: &TcConfig,
) -> MpsResult<CountOutput> {
    cannon_count_impl(comm, prep, cfg, true)
}

fn cannon_count_impl(
    comm: &Comm,
    mut prep: PrepOutput,
    cfg: &TcConfig,
    collect_per_edge: bool,
) -> MpsResult<CountOutput> {
    let grid = Grid::new(comm);
    let q = prep.q;
    debug_assert_eq!(grid.q(), q);
    let (x, y) = (prep.x, prep.y);
    let ublock_init = std::mem::replace(&mut prep.ublock, SparseBlock::empty(0));
    let lblock_init = std::mem::replace(&mut prep.lblock, SparseBlock::empty(0));

    // Initial skew. With q == 1 the blocks are already aligned.
    let (mut ublock, mut lblock) = if q > 1 {
        let _skew_span =
            tc_trace::span(tc_trace::names::SKEW, tc_trace::Category::Shift).arg("z", 0u64);
        let u_dst = (x, (y + q - x) % q);
        let u_src = (x, (x + y) % q);
        let u_blob = ublock_init.to_blob();
        let l_blob = lblock_init.to_blob();
        tc_metrics::hist_record(mnames::SHIFT_BYTES, u_blob.len() as u64);
        tc_metrics::hist_record(mnames::SHIFT_BYTES, l_blob.len() as u64);
        let _staging =
            MemScope::track(mnames::MEM_SHIFT_STAGING, (u_blob.len() + l_blob.len()) as u64);
        let ub = grid.exchange_bytes(u_dst.0, u_dst.1, u_blob, u_src.0, u_src.1)?;
        let l_dst = ((x + q - y) % q, y);
        let l_src = ((x + y) % q, y);
        let lb = grid.exchange_bytes(l_dst.0, l_dst.1, l_blob, l_src.0, l_src.1)?;
        (SparseBlock::from_blob(ub), SparseBlock::from_blob(lb))
    } else {
        (ublock_init, lblock_init)
    };

    let mut map = IntersectMap::new(prep.max_hash_row, q);
    let mut local = 0u64;
    let mut tasks = 0u64;
    let mut shift_compute = Vec::with_capacity(q);
    // Per-edge mode records every (task entry, closing vertex k) hit.
    let mut hits: Option<Vec<(u32, u32)>> = collect_per_edge.then(Vec::new);
    for z in 0..q {
        let tasks_before = tasks;
        let t0 = tc_mps::CpuTimer::start();
        let mut compute_span =
            tc_trace::span(tc_trace::names::SHIFT_COMPUTE, tc_trace::Category::Shift)
                .arg("z", z as u64);
        local += match hits.as_mut() {
            None => count_shift(&prep.task, &ublock, &lblock, &mut map, q, cfg, &mut tasks),
            Some(h) => crate::count::count_shift_recording(
                &prep.task,
                &ublock,
                &lblock,
                &mut map,
                q,
                cfg,
                &mut tasks,
                |idx, k| h.push((idx as u32, k)),
            ),
        };
        compute_span.record_arg("tasks", tasks - tasks_before);
        drop(compute_span);
        shift_compute.push(t0.elapsed());
        if z + 1 < q {
            // Tag the exchange with the shift whose operands it
            // delivers (matching the skew, which delivers shift 0's).
            let _xchg_span = tc_trace::span(tc_trace::names::SHIFT_XCHG, tc_trace::Category::Shift)
                .arg("z", (z + 1) as u64);
            let u_blob = ublock.to_blob();
            let l_blob = lblock.to_blob();
            tc_metrics::hist_record(mnames::SHIFT_BYTES, u_blob.len() as u64);
            tc_metrics::hist_record(mnames::SHIFT_BYTES, l_blob.len() as u64);
            let _staging =
                MemScope::track(mnames::MEM_SHIFT_STAGING, (u_blob.len() + l_blob.len()) as u64);
            ublock = SparseBlock::from_blob(grid.shift_left(u_blob)?);
            lblock = SparseBlock::from_blob(grid.shift_up(l_blob)?);
        }
    }

    tc_metrics::gauge_max(mnames::HASH_SLOTS, map.table_size() as u64);
    tc_metrics::gauge_max(mnames::HASH_MAX_ROW, prep.max_hash_row as u64);
    tc_metrics::gauge_max(
        mnames::HASH_LOAD_PCT,
        (prep.max_hash_row * 100 / map.table_size().max(1)) as u64,
    );

    let triangles = comm.allreduce_sum_u64(local)?;
    let per_edge = match hits {
        Some(h) => Some(resolve_per_edge(comm, &prep, cfg, h, q)?),
        None => None,
    };
    Ok(CountOutput {
        triangles,
        local_triangles: local,
        shift_compute,
        tasks,
        map_stats: map.stats,
        per_edge,
    })
}

/// Turns the raw per-hit records into full per-edge supports.
///
/// A hit on task `(a, b)` with closing vertex `k` is one triangle
/// `{i, j, k}` (degree-order `i < j < k`); it contributes support to
/// all **three** edges, but only the `(i, j)` edge is a local task —
/// the `(i, k)` and `(j, k)` credits belong to tasks on other ranks
/// and are delivered with one personalized all-to-all.
fn resolve_per_edge(
    comm: &Comm,
    prep: &PrepOutput,
    cfg: &TcConfig,
    hits: Vec<(u32, u32)>,
    q: usize,
) -> MpsResult<Vec<(u32, u32, u64)>> {
    let p = comm.size();
    // Entry metadata: global (a, b) per task entry index.
    let mut entry_a = vec![0u32; prep.task.num_entries()];
    let mut entry_b = vec![0u32; prep.task.num_entries()];
    for &lr in prep.task.nonempty_rows() {
        let a = lr * q as u32 + prep.x as u32;
        let base = prep.task.row_start(lr as usize);
        for (pos, &b) in prep.task.row(lr as usize).iter().enumerate() {
            entry_a[base + pos] = a;
            entry_b[base + pos] = b;
        }
    }

    // Task key of an edge (min, max): hash-side vertex first.
    let task_key = |lo: u32, hi: u32| -> (u32, u32) {
        match cfg.enumeration {
            crate::config::Enumeration::Jik => (hi, lo),
            crate::config::Enumeration::Ijk => (lo, hi),
        }
    };

    let mut supports = vec![0u64; prep.task.num_entries()];
    let mut credit_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
    for (idx, k) in hits {
        supports[idx as usize] += 1;
        let (av, bv) = (entry_a[idx as usize], entry_b[idx as usize]);
        let (i, j) = (av.min(bv), av.max(bv));
        // k closes the triangle and is the largest label (operand rows
        // hold upper neighbours only).
        debug_assert!(k > j);
        for (lo, hi) in [(i, k), (j, k)] {
            let (ka, kb) = task_key(lo, hi);
            let dst = (ka as usize % q) * q + kb as usize % q;
            credit_sends[dst].push([ka, kb]);
        }
    }
    for msg in comm.alltoallv(&credit_sends)? {
        for [ka, kb] in msg {
            let idx = prep
                .task
                .find_entry(ka as usize / q, kb)
                .unwrap_or_else(|| panic!("credited edge ({ka},{kb}) has no local task"));
            supports[idx] += 1;
        }
    }

    let mut out = Vec::with_capacity(supports.len());
    for (idx, s) in supports.into_iter().enumerate() {
        out.push((entry_a[idx], entry_b[idx], s));
    }
    Ok(out)
}
