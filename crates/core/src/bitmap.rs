//! Packed bit rows for hub-vertex intersection.
//!
//! On skewed (twitter-like) blocks a handful of hub rows dominate the
//! per-shift work: the same long hash row is probed by many tasks.
//! Materializing such a row once per load into a packed `u64` bit row
//! indexed by *local column* (`k ÷ q`, the same transformed index the
//! hash uses) turns every membership test into a shift + AND — no
//! division, no probe chain, no stat read-modify-write per key.
//!
//! [`BitRow`] is a grow-only arena: the backing word vector only ever
//! expands, and clearing zeroes exactly the words the current row
//! touched (by re-walking the row's entries), so steady-state shift
//! loops stay allocation-free once warm — the same contract the
//! zero-copy operand pipeline proves with a counting allocator.

/// A reusable packed bit row over the local-column space of one
/// operand-block row.
#[derive(Debug, Default)]
pub struct BitRow {
    /// Backing words; grow-only.
    words: Vec<u64>,
    /// Local-column index of the first entry of the loaded row — bit 0
    /// of the row maps to this column.
    base: u32,
    /// Words spanned by the loaded row (bounds for [`BitRow::contains`]).
    span_words: usize,
}

impl BitRow {
    /// An empty arena (no allocation until the first build).
    pub fn new() -> Self {
        Self::default()
    }

    /// Words the row `[first..=last]` (local columns) spans.
    #[inline]
    fn span(first: u32, last: u32) -> usize {
        (last - first) as usize / 64 + 1
    }

    /// Whether `row` is dense enough in its local-column span to be
    /// worth packing: at least one set bit per word on average, so the
    /// bit row never occupies (or zeroes) more words than the row has
    /// entries. `row` must be non-empty and sorted ascending.
    #[inline]
    pub fn dense_enough(row: &[u32], stride: u32) -> bool {
        let first = row[0] / stride;
        let last = row[row.len() - 1] / stride;
        Self::span(first, last) <= row.len()
    }

    /// Packs `row` (sorted ascending, non-empty) into the arena.
    /// `stride` is the hash transform divisor (the grid side `q` the
    /// paired [`crate::hashmap::IntersectMap`] hashes with).
    pub fn build(&mut self, row: &[u32], stride: u32) {
        debug_assert!(!row.is_empty(), "bitmap build needs a non-empty row");
        let first = row[0] / stride;
        let last = row[row.len() - 1] / stride;
        self.base = first;
        self.span_words = Self::span(first, last);
        if self.span_words > self.words.len() {
            self.words.resize(self.span_words, 0);
        }
        for &k in row {
            let idx = (k / stride - first) as usize;
            self.words[idx >> 6] |= 1u64 << (idx & 63);
        }
    }

    /// Membership test against the packed row. Keys below the base or
    /// beyond the span fail the bounds check and report absent.
    #[inline]
    pub fn contains(&self, key: u32, stride: u32) -> bool {
        let idx = (key / stride).wrapping_sub(self.base) as usize;
        let w = idx >> 6;
        w < self.span_words && self.words[w] & (1u64 << (idx & 63)) != 0
    }

    /// Zeroes exactly the words `row` set, leaving the arena ready for
    /// the next build without touching untouched capacity.
    pub fn clear(&mut self, row: &[u32], stride: u32) {
        for &k in row {
            let idx = (k / stride - self.base) as usize;
            self.words[idx >> 6] = 0;
        }
        self.span_words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_matches_row() {
        let mut b = BitRow::new();
        let row = [3, 9, 21, 300];
        b.build(&row, 3);
        for &k in &row {
            assert!(b.contains(k, 3), "key {k}");
        }
        assert!(!b.contains(6, 3));
        assert!(!b.contains(0, 3)); // below base
        assert!(!b.contains(3000, 3)); // beyond span
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut b = BitRow::new();
        b.build(&[0, 64, 128], 1);
        b.clear(&[0, 64, 128], 1);
        assert!(!b.contains(0, 1));
        b.build(&[65], 1);
        assert!(b.contains(65, 1));
        assert!(!b.contains(64, 1)); // not leaked from the first build
    }

    #[test]
    fn arena_is_grow_only() {
        let mut b = BitRow::new();
        b.build(&[0, 1000], 1);
        let cap = b.words.len();
        b.clear(&[0, 1000], 1);
        b.build(&[5], 1);
        assert_eq!(b.words.len(), cap, "smaller rows must not shrink the arena");
        assert!(b.contains(5, 1));
    }

    #[test]
    fn density_threshold() {
        // 3 entries over 4 words: too sparse. 3 over 3 (exactly one
        // bit per word) is the threshold. 3 in 1 word: clearly fine.
        assert!(!BitRow::dense_enough(&[0, 64, 200], 1));
        assert!(BitRow::dense_enough(&[0, 64, 128], 1));
        assert!(BitRow::dense_enough(&[0, 1, 2], 1));
        // The stride compresses the span: global keys q apart are
        // adjacent local columns.
        assert!(BitRow::dense_enough(&[0, 256, 512], 256));
    }

    #[test]
    fn stride_transform_distinguishes_classes() {
        // Keys 1, 4, 7 with stride 3 are local columns 0, 1, 2.
        let mut b = BitRow::new();
        b.build(&[1, 4, 7], 3);
        assert!(b.contains(1, 3) && b.contains(4, 3) && b.contains(7, 3));
        // 2/3 == 0 == 1/3: the bitmap (like the direct hash) resolves
        // only the transformed index — callers feed it keys of the
        // row's own congruence class, as the shift schedule guarantees.
        assert!(!b.contains(10000, 3));
    }
}
