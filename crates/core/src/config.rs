//! Algorithm configuration and optimization toggles.
//!
//! Every §5.2 optimization can be switched off independently so the
//! §7.3 ablation experiments can quantify exactly what each one buys.

/// Triangle enumeration rule (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enumeration {
    /// ⟨i,j,k⟩ — tasks from the non-zeros of `U`; hashes the smaller
    /// endpoint's adjacency. Kept for the ablation (§7.3 measured it
    /// 72.8 % slower).
    Ijk,
    /// ⟨j,i,k⟩ — tasks from the non-zeros of `L`; hashes the larger
    /// endpoint's adjacency and reuses the map across the row. The
    /// paper's default.
    Jik,
}

/// Knobs for [`crate::count_triangles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcConfig {
    /// Enumeration rule. Default ⟨j,i,k⟩.
    pub enumeration: Enumeration,
    /// Doubly-sparse traversal: iterate only non-empty task rows
    /// (§5.2). Default on.
    pub doubly_sparse: bool,
    /// Direct bitwise-AND hashing for collision-free rows (§5.2).
    /// Default on.
    pub direct_hash: bool,
    /// Reverse traversal of the probe row with early break (§5.2
    /// "eliminating unnecessary intersection operations"). Default on.
    pub reverse_early_break: bool,
    /// Zero-copy operand pipeline: post the next shift/panel exchange
    /// before computing the current step, compute against borrowed
    /// blob views, and forward pass-through operands without
    /// re-serializing (§5.2 "reducing overheads associated with
    /// communication"). Off = the synchronous
    /// deserialize-compute-reserialize schedule, kept for ablation.
    /// Default on.
    pub overlap_shifts: bool,
}

impl Default for TcConfig {
    fn default() -> Self {
        Self {
            enumeration: Enumeration::Jik,
            doubly_sparse: true,
            direct_hash: true,
            reverse_early_break: true,
            overlap_shifts: true,
        }
    }
}

impl TcConfig {
    /// The paper's full configuration (all optimizations on).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Everything off: the unoptimized 2D baseline used as the
    /// ablation's reference point.
    pub fn unoptimized() -> Self {
        Self {
            enumeration: Enumeration::Jik,
            doubly_sparse: false,
            direct_hash: false,
            reverse_early_break: false,
            overlap_shifts: false,
        }
    }

    /// Builder-style toggle.
    pub fn with_enumeration(mut self, e: Enumeration) -> Self {
        self.enumeration = e;
        self
    }

    /// Builder-style toggle.
    pub fn with_doubly_sparse(mut self, on: bool) -> Self {
        self.doubly_sparse = on;
        self
    }

    /// Builder-style toggle.
    pub fn with_direct_hash(mut self, on: bool) -> Self {
        self.direct_hash = on;
        self
    }

    /// Builder-style toggle.
    pub fn with_reverse_early_break(mut self, on: bool) -> Self {
        self.reverse_early_break = on;
        self
    }

    /// Builder-style toggle.
    pub fn with_overlap_shifts(mut self, on: bool) -> Self {
        self.overlap_shifts = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_config() {
        let c = TcConfig::default();
        assert_eq!(c, TcConfig::paper());
        assert_eq!(c.enumeration, Enumeration::Jik);
        assert!(c.doubly_sparse && c.direct_hash && c.reverse_early_break);
    }

    #[test]
    fn builders_toggle_independently() {
        let c = TcConfig::default().with_enumeration(Enumeration::Ijk).with_doubly_sparse(false);
        assert_eq!(c.enumeration, Enumeration::Ijk);
        assert!(!c.doubly_sparse);
        assert!(c.direct_hash);
    }

    #[test]
    fn unoptimized_disables_all() {
        let c = TcConfig::unoptimized();
        assert!(!c.doubly_sparse && !c.direct_hash && !c.reverse_early_break);
        assert!(!c.overlap_shifts);
    }

    #[test]
    fn overlap_toggle() {
        assert!(TcConfig::default().overlap_shifts);
        assert!(!TcConfig::default().with_overlap_shifts(false).overlap_shifts);
    }
}
