//! Algorithm configuration and optimization toggles.
//!
//! Every §5.2 optimization can be switched off independently so the
//! §7.3 ablation experiments can quantify exactly what each one buys.

/// Triangle enumeration rule (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enumeration {
    /// ⟨i,j,k⟩ — tasks from the non-zeros of `U`; hashes the smaller
    /// endpoint's adjacency. Kept for the ablation (§7.3 measured it
    /// 72.8 % slower).
    Ijk,
    /// ⟨j,i,k⟩ — tasks from the non-zeros of `L`; hashes the larger
    /// endpoint's adjacency and reuses the map across the row. The
    /// paper's default.
    Jik,
}

/// Which set-intersection strategy the per-shift kernel uses for each
/// task (see `crate::intersect`).
///
/// Whatever the strategy, the row is always loaded into the
/// [`crate::hashmap::IntersectMap`] first — its mode decision
/// (direct vs probing) both gates the fast strategies and keeps the
/// deterministic insert/row-mode counters identical across strategies.
/// Merge and bitmap only ever replace *direct-mode* probes (which cost
/// zero probe steps), so every legacy counter — triangles, supports,
/// tasks, probes, lookups — is bit-identical under all four settings;
/// rows that fall back to probing mode take the hash path regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStrategy {
    /// Per-row/per-task heuristic dispatch from row-length and density
    /// stats: packed bit rows for hub rows, vectorized merge when the
    /// hash row is not much longer than the probe candidates, hash
    /// otherwise. The default.
    Auto,
    /// Always the paper's hash probe (the pre-adaptive behavior).
    Hash,
    /// Vectorized sorted-merge for every direct-mode row.
    Merge,
    /// Packed bit rows for every direct-mode row.
    Bitmap,
}

impl KernelStrategy {
    /// Environment variable consulted by the binaries (strict parse:
    /// garbage panics at construction, like the `MPS_*` family).
    pub const ENV: &'static str = "TC_KERNEL";

    /// Resolves [`KernelStrategy::ENV`] via the same strict rules as
    /// the `MPS_*` environment family: unset means `None`, anything
    /// set must parse or the process panics loudly naming the
    /// variable.
    pub fn from_env() -> Option<Self> {
        tc_mps::strict_env::<Self>(Self::ENV, "kernel strategy (auto|hash|merge|bitmap)")
    }
}

impl std::str::FromStr for KernelStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "auto" => Self::Auto,
            "hash" => Self::Hash,
            "merge" => Self::Merge,
            "bitmap" => Self::Bitmap,
            other => return Err(format!("unknown kernel strategy {other:?}")),
        })
    }
}

impl std::fmt::Display for KernelStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Auto => "auto",
            Self::Hash => "hash",
            Self::Merge => "merge",
            Self::Bitmap => "bitmap",
        })
    }
}

/// Knobs for [`crate::count_triangles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcConfig {
    /// Enumeration rule. Default ⟨j,i,k⟩.
    pub enumeration: Enumeration,
    /// Doubly-sparse traversal: iterate only non-empty task rows
    /// (§5.2). Default on.
    pub doubly_sparse: bool,
    /// Direct bitwise-AND hashing for collision-free rows (§5.2).
    /// Default on.
    pub direct_hash: bool,
    /// Reverse traversal of the probe row with early break (§5.2
    /// "eliminating unnecessary intersection operations"). Default on.
    pub reverse_early_break: bool,
    /// Zero-copy operand pipeline: post the next shift/panel exchange
    /// before computing the current step, compute against borrowed
    /// blob views, and forward pass-through operands without
    /// re-serializing (§5.2 "reducing overheads associated with
    /// communication"). Off = the synchronous
    /// deserialize-compute-reserialize schedule, kept for ablation.
    /// Default on.
    pub overlap_shifts: bool,
    /// Set-intersection strategy for the per-shift kernel. Default
    /// [`KernelStrategy::Auto`]; [`KernelStrategy::Hash`] is the
    /// pre-adaptive behavior kept for the ablation.
    pub kernel: KernelStrategy,
}

impl Default for TcConfig {
    fn default() -> Self {
        Self {
            enumeration: Enumeration::Jik,
            doubly_sparse: true,
            direct_hash: true,
            reverse_early_break: true,
            overlap_shifts: true,
            kernel: KernelStrategy::Auto,
        }
    }
}

impl TcConfig {
    /// The paper's full configuration (all optimizations on).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Everything off: the unoptimized 2D baseline used as the
    /// ablation's reference point.
    pub fn unoptimized() -> Self {
        Self {
            enumeration: Enumeration::Jik,
            doubly_sparse: false,
            direct_hash: false,
            reverse_early_break: false,
            overlap_shifts: false,
            kernel: KernelStrategy::Hash,
        }
    }

    /// Builder-style toggle.
    pub fn with_enumeration(mut self, e: Enumeration) -> Self {
        self.enumeration = e;
        self
    }

    /// Builder-style toggle.
    pub fn with_doubly_sparse(mut self, on: bool) -> Self {
        self.doubly_sparse = on;
        self
    }

    /// Builder-style toggle.
    pub fn with_direct_hash(mut self, on: bool) -> Self {
        self.direct_hash = on;
        self
    }

    /// Builder-style toggle.
    pub fn with_reverse_early_break(mut self, on: bool) -> Self {
        self.reverse_early_break = on;
        self
    }

    /// Builder-style toggle.
    pub fn with_overlap_shifts(mut self, on: bool) -> Self {
        self.overlap_shifts = on;
        self
    }

    /// Builder-style strategy selection.
    pub fn with_kernel(mut self, k: KernelStrategy) -> Self {
        self.kernel = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_config() {
        let c = TcConfig::default();
        assert_eq!(c, TcConfig::paper());
        assert_eq!(c.enumeration, Enumeration::Jik);
        assert!(c.doubly_sparse && c.direct_hash && c.reverse_early_break);
    }

    #[test]
    fn builders_toggle_independently() {
        let c = TcConfig::default().with_enumeration(Enumeration::Ijk).with_doubly_sparse(false);
        assert_eq!(c.enumeration, Enumeration::Ijk);
        assert!(!c.doubly_sparse);
        assert!(c.direct_hash);
    }

    #[test]
    fn unoptimized_disables_all() {
        let c = TcConfig::unoptimized();
        assert!(!c.doubly_sparse && !c.direct_hash && !c.reverse_early_break);
        assert!(!c.overlap_shifts);
    }

    #[test]
    fn overlap_toggle() {
        assert!(TcConfig::default().overlap_shifts);
        assert!(!TcConfig::default().with_overlap_shifts(false).overlap_shifts);
    }

    #[test]
    fn kernel_strategy_parses_and_displays() {
        for (s, k) in [
            ("auto", KernelStrategy::Auto),
            ("hash", KernelStrategy::Hash),
            ("merge", KernelStrategy::Merge),
            ("bitmap", KernelStrategy::Bitmap),
        ] {
            assert_eq!(s.parse::<KernelStrategy>().unwrap(), k);
            assert_eq!(k.to_string(), s);
        }
        assert!("simd".parse::<KernelStrategy>().is_err());
        assert!("".parse::<KernelStrategy>().is_err());
        assert!("Auto".parse::<KernelStrategy>().is_err(), "strict: no case folding");
    }

    #[test]
    fn kernel_defaults() {
        assert_eq!(TcConfig::default().kernel, KernelStrategy::Auto);
        // The ablation baseline pins the pre-adaptive kernel.
        assert_eq!(TcConfig::unoptimized().kernel, KernelStrategy::Hash);
        let c = TcConfig::paper().with_kernel(KernelStrategy::Bitmap);
        assert_eq!(c.kernel, KernelStrategy::Bitmap);
        assert!(c.direct_hash, "strategy choice leaves the other knobs alone");
    }
}
