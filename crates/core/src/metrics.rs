//! Per-rank and aggregate measurements.
//!
//! The evaluation section of the paper is built from a small set of
//! per-rank quantities — phase wall times (Table 2 / Fig. 1), per-shift
//! compute times (Table 3), map-intersection task counts (Table 4),
//! operation counts (Fig. 2), communication time and volume (Fig. 3),
//! and hash-probe counts (§7.1). [`RankMetrics`] carries all of them;
//! [`TcResult`] aggregates across ranks the way the paper does
//! (phase time = slowest rank, counts summed).

use std::time::{Duration, Instant};

use tc_metrics::names as mnames;
use tc_mps::{Comm, CommStats, CpuTimer, MpsResult};

use crate::hashmap::MapStats;

/// Everything one rank measured during a run.
#[derive(Debug, Clone, Default)]
pub struct RankMetrics {
    /// Preprocessing wall time ("ppt").
    pub ppt: Duration,
    /// Triangle-counting wall time ("tct").
    pub tct: Duration,
    /// CPU time this rank's thread spent in preprocessing. On an
    /// oversubscribed host (ranks > cores) this, not wall time, still
    /// measures the rank's work — see [`TcResult::modeled_ppt_time`].
    pub ppt_cpu: Duration,
    /// CPU time this rank's thread spent in the counting phase.
    pub tct_cpu: Duration,
    /// Compute-only *CPU* time of each of the √p shifts (excludes the
    /// shift communication) — Table 3's per-shift load-imbalance data,
    /// and the raw material of the critical-path speedup model.
    pub shift_compute: Vec<Duration>,
    /// Tasks that resulted in a map-based set intersection (Table 4).
    pub tasks: u64,
    /// Hash-probe steps beyond the home slot (§7.1's probe metric).
    pub probes: u64,
    /// Hash lookups performed.
    pub lookups: u64,
    /// Rows loaded into the intersection map via the direct fast path.
    pub direct_rows: u64,
    /// Rows loaded via probing.
    pub probed_rows: u64,
    /// Preprocessing operation count (adjacency entries processed) —
    /// the numerator of Fig. 2's ppt kOps/s.
    pub ppt_ops: u64,
    /// Counting-phase operation count (hash inserts + lookups) —
    /// Fig. 2's tct kOps/s numerator.
    pub tct_ops: u64,
    /// Time inside communication calls during preprocessing.
    pub ppt_comm: Duration,
    /// Time inside communication calls during counting.
    pub tct_comm: Duration,
    /// Payload bytes this rank sent over the whole run.
    pub bytes_sent: u64,
    /// Triangles found by this rank's tasks.
    pub local_triangles: u64,
}

impl RankMetrics {
    /// Communication-time delta between two [`CommStats`] snapshots.
    pub fn comm_delta(before: &CommStats, after: &CommStats) -> Duration {
        Duration::from_nanos(
            (after.send_ns + after.recv_ns).saturating_sub(before.send_ns + before.recv_ns),
        )
    }

    /// Applies a finished preprocessing phase sample plus its op
    /// count, mirroring both into the live metrics registry.
    pub fn finish_ppt(&mut self, sample: PhaseSample, ops: u64) {
        self.ppt = sample.wall;
        self.ppt_cpu = sample.cpu;
        self.ppt_comm = sample.comm;
        self.ppt_ops = ops;
        tc_metrics::counter_add(mnames::PPT_WALL_NS, sample.wall.as_nanos() as u64);
        tc_metrics::counter_add(mnames::PPT_CPU_NS, sample.cpu.as_nanos() as u64);
        tc_metrics::counter_add(mnames::PPT_COMM_NS, sample.comm.as_nanos() as u64);
        tc_metrics::counter_add(mnames::PPT_OPS, ops);
    }

    /// Applies a finished counting phase sample, mirroring it into
    /// the live metrics registry.
    pub fn finish_tct(&mut self, sample: PhaseSample) {
        self.tct = sample.wall;
        self.tct_cpu = sample.cpu;
        self.tct_comm = sample.comm;
        tc_metrics::counter_add(mnames::TCT_WALL_NS, sample.wall.as_nanos() as u64);
        tc_metrics::counter_add(mnames::TCT_CPU_NS, sample.cpu.as_nanos() as u64);
        tc_metrics::counter_add(mnames::TCT_COMM_NS, sample.comm.as_nanos() as u64);
    }

    /// Records the intersection-kernel outcome (map statistics,
    /// adaptive-dispatch tallies, task count, locally found triangles)
    /// into both this struct and the live metrics registry — one write
    /// path for both views, so the deterministic counters cannot
    /// diverge.
    pub fn record_kernel(
        &mut self,
        stats: &MapStats,
        kernel: &crate::intersect::KernelStats,
        tasks: u64,
        local_triangles: u64,
    ) {
        self.tasks = tasks;
        self.probes = stats.probe_steps;
        self.lookups = stats.lookups;
        self.direct_rows = stats.direct_rows;
        self.probed_rows = stats.probed_rows;
        self.tct_ops = stats.lookups + stats.inserts;
        self.local_triangles = local_triangles;
        tc_metrics::counter_add(mnames::TCT_TASKS, tasks);
        tc_metrics::counter_add(mnames::TCT_PROBES, stats.probe_steps);
        tc_metrics::counter_add(mnames::TCT_LOOKUPS, stats.lookups);
        tc_metrics::counter_add(mnames::TCT_DIRECT_ROWS, stats.direct_rows);
        tc_metrics::counter_add(mnames::TCT_PROBED_ROWS, stats.probed_rows);
        tc_metrics::counter_add(mnames::TCT_OPS, self.tct_ops);
        tc_metrics::counter_add(mnames::TCT_TRIANGLES, local_triangles);
        // Adaptive-kernel observability: which strategy served how
        // many tasks/lookups. Purely additive — the legacy counters
        // above stay bit-identical across strategies.
        tc_metrics::counter_add(mnames::TCT_KERNEL_HASH_TASKS, kernel.hash_tasks);
        tc_metrics::counter_add(mnames::TCT_KERNEL_MERGE_TASKS, kernel.merge_tasks);
        tc_metrics::counter_add(mnames::TCT_KERNEL_BITMAP_TASKS, kernel.bitmap_tasks);
        tc_metrics::counter_add(mnames::TCT_KERNEL_BITMAP_ROWS, kernel.bitmap_rows);
        tc_metrics::counter_add(mnames::TCT_KERNEL_HASH_LOOKUPS, kernel.hash_lookups);
        tc_metrics::counter_add(mnames::TCT_KERNEL_MERGE_LOOKUPS, kernel.merge_lookups);
        tc_metrics::counter_add(mnames::TCT_KERNEL_BITMAP_LOOKUPS, kernel.bitmap_lookups);
        tc_metrics::counter_add(mnames::TCT_KERNEL_MAP_REUSES, stats.reused_rows);
    }

    /// Stores the per-shift compute durations, feeding each sample
    /// into the registry's shift-compute histogram.
    pub fn record_shift_compute(&mut self, shifts: Vec<Duration>) {
        if tc_metrics::enabled() {
            for d in &shifts {
                tc_metrics::hist_record(mnames::SHIFT_COMPUTE_NS, d.as_nanos() as u64);
            }
        }
        self.shift_compute = shifts;
    }
}

/// Measurements of one barrier-delimited pipeline phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSample {
    /// Barrier-to-barrier wall time.
    pub wall: Duration,
    /// CPU time of this rank's thread inside the phase.
    pub cpu: Duration,
    /// Time inside communication calls during the phase.
    pub comm: Duration,
}

/// Phase-scoped measurement guard: brackets a pipeline phase with
/// entry/exit barriers and captures wall time, thread CPU time, the
/// communication-time delta, and a trace span — the scaffolding that
/// used to be hand-copied around every `ppt`/`tct` block in
/// `driver.rs` and `summa.rs`.
///
/// Usage: [`CommPhase::begin`] before the phase body,
/// [`CommPhase::finish`] after it; feed the returned [`PhaseSample`]
/// to [`RankMetrics::finish_ppt`] / [`RankMetrics::finish_tct`].
#[derive(Debug)]
pub struct CommPhase<'a> {
    comm: &'a Comm,
    t0: Instant,
    cpu: CpuTimer,
    stats0: CommStats,
    span: tc_trace::Span,
}

impl<'a> CommPhase<'a> {
    /// Synchronizes on a barrier and starts the phase clocks and a
    /// phase-category trace span named `trace_name`.
    pub fn begin(comm: &'a Comm, trace_name: &'static str) -> MpsResult<Self> {
        comm.barrier()?;
        let stats0 = comm.stats();
        Ok(Self {
            comm,
            t0: Instant::now(),
            cpu: CpuTimer::start(),
            stats0,
            span: tc_trace::span(trace_name, tc_trace::Category::Phase),
        })
    }

    /// Closes the span, stops the CPU clock, synchronizes on the exit
    /// barrier (wall time includes the stragglers, CPU time does
    /// not), and returns the sample.
    pub fn finish(self) -> MpsResult<PhaseSample> {
        let Self { comm, t0, cpu, stats0, span } = self;
        drop(span);
        let cpu = cpu.elapsed();
        comm.barrier()?;
        let wall = t0.elapsed();
        let stats1 = comm.stats();
        let comm_time = RankMetrics::comm_delta(&stats0, &stats1);
        Ok(PhaseSample { wall, cpu, comm: comm_time })
    }
}

/// Result of a distributed triangle-counting run.
#[derive(Debug, Clone)]
pub struct TcResult {
    /// Total number of unique triangles.
    pub triangles: u64,
    /// Rank count `p`.
    pub num_ranks: usize,
    /// Per-rank measurements, indexed by rank.
    pub ranks: Vec<RankMetrics>,
}

impl TcResult {
    /// Preprocessing time: slowest rank (the paper reports phase wall
    /// clock, which is gated by the slowest rank).
    pub fn ppt_time(&self) -> Duration {
        self.ranks.iter().map(|r| r.ppt).max().unwrap_or_default()
    }

    /// Triangle-counting time: slowest rank.
    pub fn tct_time(&self) -> Duration {
        self.ranks.iter().map(|r| r.tct).max().unwrap_or_default()
    }

    /// Overall runtime (ppt + tct, per the paper's Table 2 columns).
    pub fn overall_time(&self) -> Duration {
        self.ppt_time() + self.tct_time()
    }

    /// Critical-path *model* of the preprocessing time: the slowest
    /// rank's CPU time. On a real cluster (one core per rank) this is
    /// what the phase's wall time would be, up to communication
    /// latency; on an oversubscribed single machine it is the only
    /// meaningful scaling metric, because wall time just measures the
    /// scheduler. DESIGN.md §1 discusses this substitution.
    pub fn modeled_ppt_time(&self) -> Duration {
        self.ranks.iter().map(|r| r.ppt_cpu).max().unwrap_or_default()
    }

    /// Critical-path model of the counting time: per shift, the
    /// slowest rank's compute CPU time, summed over shifts (the shifts
    /// are globally synchronized by the operand exchange).
    pub fn modeled_tct_time(&self) -> Duration {
        self.shift_imbalance().0
    }

    /// Modeled overall runtime.
    pub fn modeled_overall_time(&self) -> Duration {
        self.modeled_ppt_time() + self.modeled_tct_time()
    }

    /// Total map-based intersection tasks across ranks (Table 4).
    pub fn total_tasks(&self) -> u64 {
        self.ranks.iter().map(|r| r.tasks).sum()
    }

    /// Total probe steps across ranks (§7.1).
    pub fn total_probes(&self) -> u64 {
        self.ranks.iter().map(|r| r.probes).sum()
    }

    /// Total lookups across ranks.
    pub fn total_lookups(&self) -> u64 {
        self.ranks.iter().map(|r| r.lookups).sum()
    }

    /// Total payload bytes moved.
    pub fn total_bytes_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Aggregate preprocessing operation rate in kOps/s (Fig. 2).
    pub fn ppt_kops_per_sec(&self) -> f64 {
        let ops: u64 = self.ranks.iter().map(|r| r.ppt_ops).sum();
        let t = self.ppt_time().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            ops as f64 / t / 1e3
        }
    }

    /// Aggregate counting operation rate in kOps/s (Fig. 2).
    pub fn tct_kops_per_sec(&self) -> f64 {
        let ops: u64 = self.ranks.iter().map(|r| r.tct_ops).sum();
        let t = self.tct_time().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            ops as f64 / t / 1e3
        }
    }

    /// Fraction of preprocessing time spent communicating (Fig. 3):
    /// summed comm time over summed phase time.
    pub fn ppt_comm_fraction(&self) -> f64 {
        let comm: f64 = self.ranks.iter().map(|r| r.ppt_comm.as_secs_f64()).sum();
        let total: f64 = self.ranks.iter().map(|r| r.ppt.as_secs_f64()).sum();
        if total == 0.0 {
            0.0
        } else {
            comm / total
        }
    }

    /// Fraction of counting time spent communicating (Fig. 3).
    pub fn tct_comm_fraction(&self) -> f64 {
        let comm: f64 = self.ranks.iter().map(|r| r.tct_comm.as_secs_f64()).sum();
        let total: f64 = self.ranks.iter().map(|r| r.tct.as_secs_f64()).sum();
        if total == 0.0 {
            0.0
        } else {
            comm / total
        }
    }

    /// Table 3's per-shift compute statistics: `(Σ_shift max_rank,
    /// Σ_shift mean_rank, imbalance = max/mean)`.
    pub fn shift_imbalance(&self) -> (Duration, Duration, f64) {
        let shifts = self.ranks.iter().map(|r| r.shift_compute.len()).max().unwrap_or(0);
        let mut max_total = Duration::ZERO;
        let mut avg_total = Duration::ZERO;
        for s in 0..shifts {
            let times: Vec<Duration> = self
                .ranks
                .iter()
                .map(|r| r.shift_compute.get(s).copied().unwrap_or_default())
                .collect();
            let mx = times.iter().max().copied().unwrap_or_default();
            let sum: Duration = times.iter().sum();
            max_total += mx;
            avg_total += sum / self.num_ranks.max(1) as u32;
        }
        let imb = if avg_total.is_zero() {
            1.0
        } else {
            max_total.as_secs_f64() / avg_total.as_secs_f64()
        };
        (max_total, avg_total, imb)
    }

    /// Load imbalance of *task placement* (§7.2 "we count the number
    /// of non-zero tasks associated with each rank"): max/mean of
    /// per-rank task counts.
    pub fn task_imbalance(&self) -> f64 {
        let max = self.ranks.iter().map(|r| r.tasks).max().unwrap_or(0) as f64;
        let sum: u64 = self.ranks.iter().map(|r| r.tasks).sum();
        if sum == 0 {
            1.0
        } else {
            max / (sum as f64 / self.num_ranks as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(ppt_ms: u64, tct_ms: u64, tasks: u64) -> RankMetrics {
        RankMetrics {
            ppt: Duration::from_millis(ppt_ms),
            tct: Duration::from_millis(tct_ms),
            tasks,
            ..Default::default()
        }
    }

    #[test]
    fn phase_times_take_slowest_rank() {
        let r = TcResult { triangles: 0, num_ranks: 2, ranks: vec![mk(10, 5, 3), mk(7, 9, 5)] };
        assert_eq!(r.ppt_time(), Duration::from_millis(10));
        assert_eq!(r.tct_time(), Duration::from_millis(9));
        assert_eq!(r.overall_time(), Duration::from_millis(19));
        assert_eq!(r.total_tasks(), 8);
    }

    #[test]
    fn task_imbalance_max_over_mean() {
        let r = TcResult { triangles: 0, num_ranks: 2, ranks: vec![mk(0, 0, 30), mk(0, 0, 10)] };
        assert!((r.task_imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn shift_imbalance_sums_per_shift_maxima() {
        let mut a = mk(0, 0, 0);
        a.shift_compute = vec![Duration::from_millis(4), Duration::from_millis(2)];
        let mut b = mk(0, 0, 0);
        b.shift_compute = vec![Duration::from_millis(2), Duration::from_millis(6)];
        let r = TcResult { triangles: 0, num_ranks: 2, ranks: vec![a, b] };
        let (mx, avg, imb) = r.shift_imbalance();
        assert_eq!(mx, Duration::from_millis(10));
        assert_eq!(avg, Duration::from_millis(7));
        assert!((imb - 10.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn comm_fraction_bounds() {
        let mut a = mk(10, 10, 0);
        a.ppt_comm = Duration::from_millis(5);
        a.tct_comm = Duration::from_millis(0);
        let r = TcResult { triangles: 0, num_ranks: 1, ranks: vec![a] };
        assert!((r.ppt_comm_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(r.tct_comm_fraction(), 0.0);
    }

    #[test]
    fn rates_handle_zero_time() {
        let r = TcResult { triangles: 0, num_ranks: 1, ranks: vec![RankMetrics::default()] };
        assert_eq!(r.ppt_kops_per_sec(), 0.0);
        assert_eq!(r.tct_kops_per_sec(), 0.0);
    }

    #[test]
    fn aggregates_are_rank_order_invariant() {
        let mut a = mk(10, 5, 3);
        a.ppt_cpu = Duration::from_millis(8);
        a.shift_compute = vec![Duration::from_millis(4), Duration::from_millis(1)];
        a.bytes_sent = 100;
        let mut b = mk(7, 9, 5);
        b.ppt_cpu = Duration::from_millis(6);
        b.shift_compute = vec![Duration::from_millis(2), Duration::from_millis(6)];
        b.bytes_sent = 50;
        let fwd = TcResult { triangles: 1, num_ranks: 2, ranks: vec![a.clone(), b.clone()] };
        let rev = TcResult { triangles: 1, num_ranks: 2, ranks: vec![b, a] };
        assert_eq!(fwd.ppt_time(), rev.ppt_time());
        assert_eq!(fwd.tct_time(), rev.tct_time());
        assert_eq!(fwd.modeled_ppt_time(), rev.modeled_ppt_time());
        assert_eq!(fwd.modeled_tct_time(), rev.modeled_tct_time());
        assert_eq!(fwd.total_tasks(), rev.total_tasks());
        assert_eq!(fwd.total_bytes_sent(), rev.total_bytes_sent());
        assert_eq!(fwd.shift_imbalance(), rev.shift_imbalance());
    }

    #[test]
    fn modeled_phase_times_pick_the_slowest_rank_per_phase() {
        // Wall and CPU maxima deliberately land on *different* ranks:
        // rank 0 has the longest wall clock, rank 1 the most CPU.
        let mut a = mk(20, 2, 0);
        a.ppt_cpu = Duration::from_millis(3);
        a.tct_cpu = Duration::from_millis(1);
        let mut b = mk(5, 2, 0);
        b.ppt_cpu = Duration::from_millis(12);
        b.tct_cpu = Duration::from_millis(2);
        let r = TcResult { triangles: 0, num_ranks: 2, ranks: vec![a, b] };
        assert_eq!(r.ppt_time(), Duration::from_millis(20));
        assert_eq!(r.modeled_ppt_time(), Duration::from_millis(12));
        assert_eq!(r.modeled_overall_time(), r.modeled_ppt_time() + r.modeled_tct_time());
    }

    #[test]
    fn modeled_tct_matches_shift_imbalance_sum() {
        let mut a = mk(0, 0, 0);
        a.shift_compute = vec![Duration::from_millis(4), Duration::from_millis(2)];
        let mut b = mk(0, 0, 0);
        b.shift_compute = vec![Duration::from_millis(2), Duration::from_millis(6)];
        let r = TcResult { triangles: 0, num_ranks: 2, ranks: vec![a, b] };
        assert_eq!(r.modeled_tct_time(), r.shift_imbalance().0);
        assert_eq!(r.modeled_tct_time(), Duration::from_millis(10));
    }

    #[test]
    fn shift_imbalance_handles_empty_and_ragged_shift_lists() {
        // No ranks at all.
        let empty = TcResult { triangles: 0, num_ranks: 0, ranks: vec![] };
        let (mx, avg, imb) = empty.shift_imbalance();
        assert_eq!(mx, Duration::ZERO);
        assert_eq!(avg, Duration::ZERO);
        assert_eq!(imb, 1.0);
        assert_eq!(empty.modeled_tct_time(), Duration::ZERO);

        // Ranks present but no shifts recorded (e.g. a failed run).
        let noshift =
            TcResult { triangles: 0, num_ranks: 2, ranks: vec![mk(1, 1, 0), mk(1, 1, 0)] };
        assert_eq!(noshift.shift_imbalance().0, Duration::ZERO);

        // Ragged lists: a rank with fewer entries contributes zero to
        // the missing shifts instead of panicking.
        let mut a = mk(0, 0, 0);
        a.shift_compute = vec![Duration::from_millis(3)];
        let mut b = mk(0, 0, 0);
        b.shift_compute = vec![Duration::from_millis(1), Duration::from_millis(5)];
        let r = TcResult { triangles: 0, num_ranks: 2, ranks: vec![a, b] };
        assert_eq!(r.shift_imbalance().0, Duration::from_millis(8));
    }

    #[test]
    fn comm_delta_is_monotone_and_saturating() {
        use tc_mps::CommStats;
        let before = CommStats { send_ns: 100, recv_ns: 50, ..Default::default() };
        let after = CommStats { send_ns: 300, recv_ns: 250, ..Default::default() };
        assert_eq!(RankMetrics::comm_delta(&before, &after), Duration::from_nanos(400));
        // Reversed snapshots saturate to zero rather than underflowing.
        assert_eq!(RankMetrics::comm_delta(&after, &before), Duration::ZERO);
    }
}
