//! The distributed preprocessing phase (paper §5.3).
//!
//! Starting from the assumed input state — "the graph is initially
//! stored using a 1D distribution, in which each processor has n/p
//! vertices and its associated adjacency lists" — each rank performs:
//!
//! 1. **Initial cyclic redistribution**: vertices move to rank
//!    `v % p`, breaking up localized dense regions.
//! 2. **Degree ordering via distributed counting sort**: global max
//!    degree (allreduce), per-degree histogram, vector exclusive scan
//!    for cross-rank positions (the `dmax·log p` term of §5.4), local
//!    placement; then a push-based all-to-all that delivers
//!    `old → new` labels to every rank holding the vertex in an
//!    adjacency list.
//! 3. **U/L split**: with degree = label order, the split is a local
//!    label comparison per adjacency entry.
//! 4. **2D cyclic redistribution**: each upper entry `(v, k)` is sent
//!    to the owners of its `U` block, its `L` block, and its task
//!    block on the `√p × √p` grid.
//!
//! The initial Cannon *skew* is deliberately **not** done here — the
//! paper counts it in the triangle-counting phase (§5.1 "the initial
//! shifts of Cannon's algorithm"), and `cannon.rs` performs it.

use std::collections::HashMap;

use tc_graph::{Block1D, Csr, Cyclic1D, Cyclic2D};
use tc_mps::{Comm, MpsResult};

use crate::blocks::SparseBlock;
use crate::config::{Enumeration, TcConfig};

/// Everything the counting phase needs, as produced on one rank.
#[derive(Debug)]
pub struct PrepOutput {
    /// Grid side `√p`.
    pub q: usize,
    /// This rank's grid row.
    pub x: usize,
    /// This rank's grid column.
    pub y: usize,
    /// Global vertex count.
    pub n: usize,
    /// Task block `C[L](x, y)` (or `C[U]` under ⟨i,j,k⟩): rows are the
    /// hash-side vertices (class `x`), columns the probe-side vertices
    /// (class `y`). One entry per graph edge, grid-wide.
    pub task: SparseBlock,
    /// Operand block `U(x, y)` — *unskewed*; `cannon` aligns it.
    pub ublock: SparseBlock,
    /// Operand block `L` holding entries `(k ≡ x, v ≡ y)` stored by
    /// probe vertex `v` — unskewed.
    pub lblock: SparseBlock,
    /// Global maximum operand-row length (sizes the intersection map).
    pub max_hash_row: usize,
    /// Preprocessing operation count (adjacency entries processed).
    pub ops: u64,
    /// `(old, new)` labels of this rank's cyclic-owned vertices
    /// (needed to translate per-edge results back to input ids).
    pub label_pairs: Vec<(u32, u32)>,
}

/// Result of the grid-agnostic front half of preprocessing (steps
/// 1–3): this rank's share of the *relabeled upper* adjacency entries.
#[derive(Debug)]
pub struct RelabeledEntries {
    /// Upper entries `(v, k)` with `v < k` in degree-order labels;
    /// across all ranks each graph edge appears exactly once.
    pub entries: Vec<(u32, u32)>,
    /// `(old, new)` labels of this rank's cyclic-owned vertices.
    pub label_pairs: Vec<(u32, u32)>,
    /// Operation count so far.
    pub ops: u64,
}

/// A rank's share of the input graph under the assumed 1D block
/// distribution: either a window into a shared pre-placed structure,
/// or rows that physically arrived at runtime (e.g. scattered from a
/// root rank that loaded the graph).
#[derive(Debug)]
pub enum BlockInput<'a> {
    /// Window into the shared immutable input CSR.
    Shared(&'a Csr),
    /// Materialized rows of the block `[lo, hi)`: `xadj` is local
    /// (length `hi - lo + 1`), `adj` the concatenated neighbours.
    Owned {
        /// First owned vertex.
        lo: u32,
        /// Local row pointers.
        xadj: Vec<u32>,
        /// Concatenated adjacency.
        adj: Vec<u32>,
    },
}

impl BlockInput<'_> {
    /// Adjacency of owned vertex `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        match self {
            BlockInput::Shared(csr) => csr.neighbors(v),
            BlockInput::Owned { lo, xadj, adj } => {
                let i = (v - lo) as usize;
                &adj[xadj[i] as usize..xadj[i + 1] as usize]
            }
        }
    }
}

/// Steps 1–3 of §5.3 — initial cyclic redistribution, distributed
/// counting-sort relabeling, and the label push — shared by the Cannon
/// (square-grid) and SUMMA (rectangular-grid) back halves.
pub fn relabel_phase(comm: &Comm, global: &Csr) -> MpsResult<RelabeledEntries> {
    relabel_phase_from(comm, global.num_vertices(), &BlockInput::Shared(global))
}

/// [`relabel_phase`] over an explicit per-rank input source.
pub fn relabel_phase_from(
    comm: &Comm,
    n: usize,
    input: &BlockInput<'_>,
) -> MpsResult<RelabeledEntries> {
    let p = comm.size();
    let rank = comm.rank();
    let block = Block1D::new(n, p);
    let cyc = Cyclic1D::new(n, p);
    let mut ops: u64 = 0;

    // -- Step 1: initial cyclic redistribution --------------------------
    // Wire format per destination: repeated [v, deg, neighbors...].
    let redist_span = tc_trace::span(tc_trace::names::PREP_REDIST, tc_trace::Category::Phase);
    let (lo, hi) = block.range(rank);
    let mut sends: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
    for v in lo..hi {
        let row = input.neighbors(v as u32);
        let dst = cyc.owner(v as u32);
        let buf = &mut sends[dst];
        buf.push(v as u32);
        buf.push(row.len() as u32);
        buf.extend_from_slice(row);
        ops += row.len() as u64 + 1;
    }
    let staged: usize = sends.iter().map(|v| v.len() * 4).sum();
    let prep_mem = tc_metrics::MemScope::track(tc_metrics::names::MEM_PREP_STAGING, staged as u64);
    let received = comm.alltoallv(&sends)?;
    drop(sends);
    drop(prep_mem);

    // Decode into cyclic-local adjacency, indexed by v ÷ p.
    let local_cnt = cyc.count(rank);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); local_cnt];
    for msg in &received {
        let mut i = 0usize;
        while i < msg.len() {
            let v = msg[i];
            let deg = msg[i + 1] as usize;
            debug_assert_eq!(cyc.owner(v), rank);
            adj[cyc.local(v)] = msg[i + 2..i + 2 + deg].to_vec();
            ops += deg as u64;
            i += 2 + deg;
        }
    }
    drop(received);
    drop(redist_span);

    // -- Step 2: distributed counting sort ------------------------------
    let sort_span = tc_trace::span(tc_trace::names::PREP_SORT, tc_trace::Category::Phase);
    let local_dmax = adj.iter().map(|a| a.len() as u64).max().unwrap_or(0);
    let dmax = comm.allreduce_max_u64(local_dmax)? as usize;
    let mut hist = vec![0u64; dmax + 1];
    for a in &adj {
        hist[a.len()] += 1;
    }
    ops += local_cnt as u64;
    // Cross-rank offsets within each degree bucket, then global bucket
    // starts (the dmax-long prefix data of §5.4).
    let before_me = comm.exscan(&hist, 0u64, |a, b| *a += *b)?;
    let totals = comm.allreduce(&hist, |a, b| *a += *b)?;
    let mut start = vec![0u64; dmax + 2];
    for d in 0..=dmax {
        start[d + 1] = start[d] + totals[d];
    }
    ops += dmax as u64;
    let mut seen = vec![0u64; dmax + 1];
    let mut new_label = vec![0u32; local_cnt];
    for (i, a) in adj.iter().enumerate() {
        let d = a.len();
        new_label[i] = (start[d] + before_me[d] + seen[d]) as u32;
        seen[d] += 1;
    }
    drop(seen);
    drop(sort_span);

    let label_span = tc_trace::span(tc_trace::names::PREP_LABELS, tc_trace::Category::Phase);
    // -- Step 2b: push old→new labels to every rank that references us --
    // Owner of u knows Adj(u); by symmetry each rank holding u in one
    // of its lists owns some w ∈ Adj(u), so pushing (u_old, u_new) to
    // the owners of u's neighbours covers exactly the demand set.
    let mut label_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
    let mut dest_stamp = vec![u32::MAX; p];
    for (i, a) in adj.iter().enumerate() {
        let u_old = cyc.global(rank, i);
        let pair = [u_old, new_label[i]];
        for &w in a {
            let dst = cyc.owner(w);
            if dest_stamp[dst] != i as u32 {
                dest_stamp[dst] = i as u32;
                label_sends[dst].push(pair);
            }
            ops += 1;
        }
    }
    let label_msgs = comm.alltoallv(&label_sends)?;
    drop(label_sends);
    let mut old_to_new: HashMap<u32, u32> =
        HashMap::with_capacity(label_msgs.iter().map(|m| m.len()).sum());
    for msg in &label_msgs {
        for &[o, nl] in msg {
            old_to_new.insert(o, nl);
        }
    }
    drop(label_msgs);

    // -- Step 3b: U/L split in new labels -------------------------------
    // Emit each upper entry (v, k), v < k, exactly once grid-wide (the
    // owner of the smaller-label endpoint emits).
    let mut entries = Vec::new();
    let label_pairs: Vec<(u32, u32)> =
        (0..local_cnt).map(|i| (cyc.global(rank, i), new_label[i])).collect();
    for (i, a) in adj.iter().enumerate() {
        let nv = new_label[i];
        for &w in a {
            let nk = *old_to_new
                .get(&w)
                .unwrap_or_else(|| panic!("rank {rank}: no relabel entry for neighbour {w}"));
            ops += 1;
            if nv < nk {
                entries.push((nv, nk));
            }
        }
    }
    drop(label_span);
    Ok(RelabeledEntries { entries, label_pairs, ops })
}

/// Runs the full Cannon-grid preprocessing pipeline on this rank.
///
/// `global` is the shared, immutable input graph; the rank only reads
/// the rows of its own 1D block (simulating the pre-placed input), and
/// all cross-rank data flow goes through `comm`.
pub fn preprocess(comm: &Comm, global: &Csr, cfg: &TcConfig) -> MpsResult<PrepOutput> {
    preprocess_from(comm, global.num_vertices(), &BlockInput::Shared(global), cfg)
}

/// [`preprocess`] over an explicit per-rank input source.
pub fn preprocess_from(
    comm: &Comm,
    n: usize,
    input: &BlockInput<'_>,
    cfg: &TcConfig,
) -> MpsResult<PrepOutput> {
    let p = comm.size();
    let q = tc_mps::perfect_square_side(p).expect("rank count must be a perfect square");
    let grid2d = Cyclic2D::new(q);
    let mut relabeled = relabel_phase_from(comm, n, input)?;
    let mut ops = relabeled.ops;
    let label_pairs = std::mem::take(&mut relabeled.label_pairs);

    let twod_span = tc_trace::span(tc_trace::names::PREP_2D, tc_trace::Category::Phase);
    // -- Step 4: 2D cyclic redistribution -------------------------------
    // Ship each upper entry (v, k) to the three grid cells that need it:
    //   U block U(v%q, k%q)        at P(v%q, k%q)
    //   L block L(k%q, v%q)        at P(k%q, v%q)  (stored by column v)
    //   task (a, b)                at P(a%q, b%q)
    // where (a, b) = (k, v) under ⟨j,i,k⟩ and (v, k) under ⟨i,j,k⟩.
    let mut u_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
    let mut l_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
    let mut t_sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
    for &(nv, nk) in &relabeled.entries {
        ops += 1;
        let (vx, vy) = (nv as usize % q, nk as usize % q);
        u_sends[grid2d.q * vx + vy].push([nv, nk]);
        l_sends[grid2d.q * vy + vx].push([nv, nk]);
        let (a_vert, b_vert) = match cfg.enumeration {
            Enumeration::Jik => (nk, nv),
            Enumeration::Ijk => (nv, nk),
        };
        let (tx, ty) = (a_vert as usize % q, b_vert as usize % q);
        t_sends[grid2d.q * tx + ty].push([a_vert, b_vert]);
    }
    drop(relabeled);

    let staged: usize =
        [&u_sends, &l_sends, &t_sends].iter().flat_map(|s| s.iter()).map(|v| v.len() * 8).sum();
    let prep_mem = tc_metrics::MemScope::track(tc_metrics::names::MEM_PREP_STAGING, staged as u64);
    let u_recv = comm.alltoallv(&u_sends)?;
    drop(u_sends);
    let l_recv = comm.alltoallv(&l_sends)?;
    drop(l_sends);
    let t_recv = comm.alltoallv(&t_sends)?;
    drop(t_sends);
    drop(prep_mem);

    let x = comm.rank() / q;
    let y = comm.rank() % q;
    let flatten = |msgs: Vec<Vec<[u32; 2]>>| -> Vec<(u32, u32)> {
        msgs.into_iter().flatten().map(|[a, b]| (a, b)).collect()
    };

    // U(x, y): rows are class x.
    let mut u_pairs = flatten(u_recv);
    ops += u_pairs.len() as u64;
    let ublock = SparseBlock::from_pairs(grid2d.class_count(n, x), q, &mut u_pairs);

    // L(x, y) stored by probe vertex: rows are class y.
    let mut l_pairs = flatten(l_recv);
    ops += l_pairs.len() as u64;
    let lblock = SparseBlock::from_pairs(grid2d.class_count(n, y), q, &mut l_pairs);

    // Task block: rows are the hash-side vertices, class x.
    let mut t_pairs = flatten(t_recv);
    ops += t_pairs.len() as u64;
    let task = SparseBlock::from_pairs(grid2d.class_count(n, x), q, &mut t_pairs);

    let max_hash_row = comm.allreduce_max_u64(ublock.max_row_len() as u64)? as usize;
    drop(twod_span);

    Ok(PrepOutput { q, x, y, n, task, ublock, lblock, max_hash_row, ops, label_pairs })
}
