//! The map-based intersection hash table, with the paper's
//! collision-free fast path.
//!
//! §5.2 "Modifying the hashing routine for sparser vertices": under
//! the 2D decomposition the rows being hashed are ~`√p` times shorter,
//! so "even with a moderately sized hashmap, the number of collisions
//! will tend to be smaller", and short rows can be "hashed by
//! performing a direct bitwise AND operation without involving any
//! probing".
//!
//! [`IntersectMap`] implements both modes. A row load first *attempts*
//! the direct mode — slot `= (k ÷ q) & mask`, no probe chain — and
//! verifies collision-freeness during insertion (the verification is
//! what makes the heuristic safe); if any two keys of the row collide
//! it falls back to multiplicative hashing with linear probing for
//! that row. Probe steps, lookups, and mode choices are all counted,
//! feeding the paper's probe-rate analysis (§7.1) and the §7.3
//! ablation.

/// Counters accumulated across the lifetime of a map.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MapStats {
    /// Rows loaded in the direct (bitwise-AND) mode.
    pub direct_rows: u64,
    /// Rows loaded in the probing mode.
    pub probed_rows: u64,
    /// Keys inserted (either mode).
    pub inserts: u64,
    /// Lookups performed.
    pub lookups: u64,
    /// Extra probe steps beyond the home slot (inserts + lookups).
    pub probe_steps: u64,
    /// Row loads satisfied from the still-loaded table because the
    /// caller re-presented the identical row (see
    /// [`IntersectMap::load_row`]). Replayed loads bump the other
    /// counters exactly as a fresh load would, so this is purely
    /// additive observability.
    pub reused_rows: u64,
}

const HASH_MULT: u32 = 0x9e37_79b1;

/// Reusable hash set over the column entries of one operand-block row.
#[derive(Debug)]
pub struct IntersectMap {
    keys: Vec<u32>,
    stamps: Vec<u32>,
    generation: u32,
    mask: u32,
    shift: u32,
    /// Grid side; keys within a block share `k % q`, so hashing uses
    /// the transformed index `k ÷ q`.
    q: u32,
    /// Mode of the currently loaded row.
    direct: bool,
    /// Identity of the currently loaded row — `(ptr, len, allow_direct)`
    /// — plus the stat deltas its load produced, so an identical
    /// consecutive load can be skipped and replayed. `None` whenever
    /// the table contents can no longer be trusted to match (growth,
    /// generation wrap, or an explicit cross-shift invalidation).
    loaded: Option<LoadedRow>,
    /// Lifetime counters.
    pub stats: MapStats,
}

/// Cache key + replay record of the last [`IntersectMap::load_row`].
#[derive(Debug, Clone, Copy)]
struct LoadedRow {
    ptr: usize,
    len: usize,
    allow_direct: bool,
    direct: bool,
    /// Probe steps the original (probing-mode) load charged.
    insert_probe_steps: u64,
}

impl IntersectMap {
    /// Creates a map sized for rows of up to `max_row_len` entries
    /// (table = next power of two ≥ 2·max, minimum 16).
    pub fn new(max_row_len: usize, q: usize) -> Self {
        let size = (2 * max_row_len).next_power_of_two().max(16);
        Self {
            keys: vec![0; size],
            stamps: vec![0; size],
            generation: 0,
            mask: (size - 1) as u32,
            shift: 32 - size.trailing_zeros(),
            q: q.max(1) as u32,
            direct: false,
            loaded: None,
            stats: MapStats::default(),
        }
    }

    /// Table size.
    pub fn table_size(&self) -> usize {
        self.keys.len()
    }

    /// The hash transform divisor (the grid side `q` this map divides
    /// keys by). The bitmap strategy indexes its bit rows by the same
    /// transformed local column.
    pub fn stride(&self) -> u32 {
        self.q
    }

    /// Drops the consecutive-load cache. Must be called between shifts:
    /// operand buffers are swapped, so a new row at a recycled address
    /// must not replay as the old one.
    pub fn invalidate_row_cache(&mut self) {
        self.loaded = None;
    }

    /// Credits `n` lookups without touching the table, for strategies
    /// that answer membership outside the map (merge, bitmap) but must
    /// keep the deterministic lookup counter identical to what the
    /// hash loop would have recorded.
    #[inline]
    pub fn credit_lookups(&mut self, n: u64) {
        self.stats.lookups += n;
    }

    /// Grows the table so a `row_len`-entry row loads at ≤ 50%
    /// occupancy, restoring the constructor's sizing invariant when a
    /// caller under-estimated `max_row_len`. The probe loops terminate
    /// only because empty slots exist; without this, a row longer than
    /// the table would spin forever in release builds.
    fn reserve_row(&mut self, row_len: usize) {
        if 2 * row_len <= self.keys.len() {
            return;
        }
        let size = (2 * row_len).next_power_of_two();
        self.keys = vec![0; size];
        self.stamps = vec![0; size];
        self.generation = 0;
        self.mask = (size - 1) as u32;
        self.shift = 32 - size.trailing_zeros();
        self.loaded = None;
    }

    #[inline]
    fn bump_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
            self.loaded = None;
        }
    }

    #[inline]
    fn direct_slot(&self, key: u32) -> u32 {
        (key / self.q) & self.mask
    }

    #[inline]
    fn hash_slot(&self, key: u32) -> u32 {
        (key / self.q).wrapping_mul(HASH_MULT) >> self.shift
    }

    /// Loads `row` into the map, choosing the mode.
    ///
    /// With `allow_direct` (the paper's optimization enabled) and a row
    /// that fits the table, insertion first tries the direct slot
    /// assignment; on the first observed collision the row is reloaded
    /// in probing mode. With `allow_direct == false` every row uses
    /// probing (the ablation's "unmodified hashing routine").
    ///
    /// Consecutive loads of the *identical* row (same slice identity
    /// and mode — rows are immutable within a shift) skip the table
    /// rebuild: the contents are still loaded under the live
    /// generation, so the load is replayed by bumping the stat
    /// counters exactly as a fresh load would and counting one
    /// [`MapStats::reused_rows`]. Callers must
    /// [`IntersectMap::invalidate_row_cache`] when row storage may be
    /// recycled (between shifts).
    pub fn load_row(&mut self, row: &[u32], allow_direct: bool) {
        if let Some(c) = self.loaded {
            if c.ptr == row.as_ptr() as usize
                && c.len == row.len()
                && c.allow_direct == allow_direct
            {
                self.stats.inserts += row.len() as u64;
                if c.direct {
                    self.stats.direct_rows += 1;
                } else {
                    self.stats.probed_rows += 1;
                    self.stats.probe_steps += c.insert_probe_steps;
                }
                self.stats.reused_rows += 1;
                self.direct = c.direct;
                return;
            }
        }
        self.reserve_row(row.len());
        self.stats.inserts += row.len() as u64;
        if allow_direct {
            self.bump_generation();
            let mut clean = true;
            for &k in row {
                let s = self.direct_slot(k) as usize;
                if self.stamps[s] == self.generation {
                    clean = false;
                    break;
                }
                self.stamps[s] = self.generation;
                self.keys[s] = k;
            }
            if clean {
                self.direct = true;
                self.stats.direct_rows += 1;
                self.loaded = Some(LoadedRow {
                    ptr: row.as_ptr() as usize,
                    len: row.len(),
                    allow_direct,
                    direct: true,
                    insert_probe_steps: 0,
                });
                return;
            }
        }
        // Probing mode.
        self.bump_generation();
        self.direct = false;
        self.stats.probed_rows += 1;
        let steps_before = self.stats.probe_steps;
        for &k in row {
            let mut s = self.hash_slot(k);
            while self.stamps[s as usize] == self.generation {
                debug_assert_ne!(self.keys[s as usize], k, "duplicate key in operand row");
                self.stats.probe_steps += 1;
                s = (s + 1) & self.mask;
            }
            self.stamps[s as usize] = self.generation;
            self.keys[s as usize] = k;
        }
        self.loaded = Some(LoadedRow {
            ptr: row.as_ptr() as usize,
            len: row.len(),
            allow_direct,
            direct: false,
            insert_probe_steps: self.stats.probe_steps - steps_before,
        });
    }

    /// Whether the current row is served by the direct fast path.
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// Membership test against the currently loaded row.
    #[inline]
    pub fn contains(&mut self, key: u32) -> bool {
        self.stats.lookups += 1;
        if self.direct {
            let s = self.direct_slot(key) as usize;
            return self.stamps[s] == self.generation && self.keys[s] == key;
        }
        let mut s = self.hash_slot(key);
        loop {
            if self.stamps[s as usize] != self.generation {
                return false;
            }
            if self.keys[s as usize] == key {
                return true;
            }
            self.stats.probe_steps += 1;
            s = (s + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mode_engages_for_collision_free_rows() {
        let mut m = IntersectMap::new(8, 3);
        // Entries of a block with q=3, class 1: 1, 4, 7, 10 — local
        // indices 0..3, all distinct under the mask.
        m.load_row(&[1, 4, 7, 10], true);
        assert!(m.is_direct());
        assert!(m.contains(4));
        assert!(m.contains(10));
        assert!(!m.contains(13));
        assert_eq!(m.stats.direct_rows, 1);
        assert_eq!(m.stats.probed_rows, 0);
        assert_eq!(m.stats.probe_steps, 0);
    }

    #[test]
    fn colliding_row_falls_back_to_probing() {
        let mut m = IntersectMap::new(4, 1);
        let size = m.table_size() as u32;
        // Keys size apart collide in the direct slot.
        let row = [0, size, 2 * size];
        m.load_row(&row, true);
        assert!(!m.is_direct());
        for &k in &row {
            assert!(m.contains(k));
        }
        assert!(!m.contains(7 * size + 1));
        assert_eq!(m.stats.probed_rows, 1);
    }

    #[test]
    fn disabled_direct_always_probes() {
        let mut m = IntersectMap::new(8, 3);
        m.load_row(&[1, 4, 7], false);
        assert!(!m.is_direct());
        assert!(m.contains(1) && m.contains(4) && m.contains(7));
        assert_eq!(m.stats.direct_rows, 0);
    }

    #[test]
    fn reload_resets_contents() {
        let mut m = IntersectMap::new(4, 1);
        m.load_row(&[1, 2, 3], true);
        m.load_row(&[10, 20], true);
        assert!(!m.contains(1));
        assert!(m.contains(10));
    }

    #[test]
    fn generation_wrap_hard_resets() {
        let mut m = IntersectMap::new(2, 1);
        m.generation = u32::MAX - 1;
        m.load_row(&[5], true);
        m.load_row(&[6], true); // wraps inside bump
        assert!(!m.contains(5));
        assert!(m.contains(6));
    }

    #[test]
    fn probe_steps_counted_under_forced_collisions() {
        let mut m = IntersectMap::new(4, 1);
        // Find two keys that genuinely collide under the
        // multiplicative hash, then verify the probe counter moves.
        let target = m.hash_slot(1);
        let other = (2..10_000u32).find(|&k| m.hash_slot(k) == target).expect("collision");
        m.load_row(&[1, other], false);
        assert!(m.stats.probe_steps > 0);
        assert!(m.contains(1) && m.contains(other));
        let before = m.stats.lookups;
        m.contains(1);
        assert_eq!(m.stats.lookups, before + 1);
    }

    #[test]
    fn oversized_row_grows_table_instead_of_spinning() {
        // Regression: a row longer than the table used to pass only a
        // debug_assert; in release builds the probing loop then had no
        // empty slot to stop at and spun forever.
        let mut m = IntersectMap::new(4, 1);
        let row: Vec<u32> = (0..m.table_size() as u32 + 5).collect();
        for allow_direct in [true, false] {
            m.load_row(&row, allow_direct);
            assert!(m.table_size() >= 2 * row.len());
            for &k in &row {
                assert!(m.contains(k), "key {k} lost after growth");
            }
            assert!(!m.contains(row.len() as u32 + 7));
        }
    }

    #[test]
    fn growth_preserves_q_transform() {
        // After growing, direct mode still hashes k ÷ q correctly.
        let mut m = IntersectMap::new(2, 3);
        let row: Vec<u32> = (0..40).map(|i| 1 + 3 * i).collect();
        m.load_row(&row, true);
        assert!(m.is_direct());
        assert!(m.contains(1) && m.contains(118));
        assert!(!m.contains(121));
    }

    #[test]
    fn empty_row_load() {
        let mut m = IntersectMap::new(0, 2);
        m.load_row(&[], true);
        assert!(m.is_direct());
        assert!(!m.contains(0));
    }

    #[test]
    fn consecutive_identical_loads_replay_stats_exactly() {
        // Regression (adaptive-kernel PR): re-presenting the identical
        // row must skip the rebuild yet leave every legacy counter
        // exactly as two fresh loads would — the counted reuse is what
        // lets `auto` dispatch trust per-row amortization.
        let row = vec![1u32, 4, 7, 10];
        let mut twice = IntersectMap::new(8, 3);
        twice.load_row(&row, true);
        twice.load_row(&row, true);
        let mut fresh = IntersectMap::new(8, 3);
        fresh.load_row(&row, true);
        let once = fresh.stats;
        assert_eq!(twice.stats.reused_rows, 1);
        assert_eq!(twice.stats.inserts, 2 * once.inserts);
        assert_eq!(twice.stats.direct_rows, 2 * once.direct_rows);
        assert_eq!(twice.stats.probed_rows, 0);
        assert!(twice.is_direct());
        assert!(twice.contains(7), "replayed load must leave the row queryable");
        assert!(!twice.contains(13));

        // An explicit invalidation (the between-shifts contract) forces
        // a genuine reload.
        twice.invalidate_row_cache();
        twice.load_row(&row, true);
        assert_eq!(twice.stats.reused_rows, 1);
        assert_eq!(twice.stats.direct_rows, 3);
    }

    #[test]
    fn probing_replay_recharges_insert_probe_steps() {
        let mut m = IntersectMap::new(4, 1);
        let target = m.hash_slot(1);
        let other = (2..10_000u32).find(|&k| m.hash_slot(k) == target).expect("collision");
        let row = vec![1, other];
        m.load_row(&row, false);
        let once = m.stats;
        assert!(once.probe_steps > 0);
        m.load_row(&row, false);
        assert_eq!(m.stats.reused_rows, 1);
        assert_eq!(m.stats.probed_rows, 2 * once.probed_rows);
        assert_eq!(m.stats.probe_steps, 2 * once.probe_steps);
        assert_eq!(m.stats.inserts, 2 * once.inserts);
        assert!(m.contains(1) && m.contains(other));
    }

    #[test]
    fn mode_change_defeats_the_reuse_cache() {
        let row = vec![1u32, 4, 7];
        let mut m = IntersectMap::new(8, 3);
        m.load_row(&row, true);
        m.load_row(&row, false); // same slice, different mode: reload
        assert_eq!(m.stats.reused_rows, 0);
        assert_eq!(m.stats.direct_rows, 1);
        assert_eq!(m.stats.probed_rows, 1);
        assert!(!m.is_direct());
    }

    #[test]
    fn different_row_at_same_length_reloads() {
        let a = vec![1u32, 4, 7];
        let b = vec![10u32, 13, 16];
        let mut m = IntersectMap::new(8, 3);
        m.load_row(&a, true);
        m.load_row(&b, true);
        assert_eq!(m.stats.reused_rows, 0);
        assert!(m.contains(10) && !m.contains(1));
    }

    #[test]
    fn credited_lookups_count_without_probing() {
        let mut m = IntersectMap::new(8, 1);
        m.load_row(&[1, 2], true);
        m.credit_lookups(5);
        assert_eq!(m.stats.lookups, 5);
        assert_eq!(m.stats.probe_steps, 0);
        m.contains(1);
        assert_eq!(m.stats.lookups, 6);
    }
}
