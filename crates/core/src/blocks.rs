//! Per-processor sparse blocks of the 2D decomposition.
//!
//! Three block kinds live on each rank `P(x, y)` of the `q × q` grid
//! (`q = √p`):
//!
//! - the **task block** — the non-zeros of `L` (for ⟨j,i,k⟩) or `U`
//!   (for ⟨i,j,k⟩) that fall in this rank's 2D-cyclic cell; one task
//!   per edge of the graph, never moves;
//! - the **hash-side operand** `U(x, w)` — rows `v ≡ x`, columns
//!   `k ≡ w` of the upper adjacency; travels *left* along the grid row;
//! - the **probe-side operand** `L(w, y)` (stored column-accessible,
//!   i.e. as rows `v ≡ y` with entries `k ≡ w` of the upper
//!   adjacency); travels *up* the grid column.
//!
//! Blocks keep a *full* row-pointer array indexed by the transformed
//! index `v ÷ q` (paper: "the adjacency list of a vertex vᵢ is
//! accessed using the transformed index vᵢ ÷ √p") **plus** a list of
//! non-empty rows for the doubly-sparse traversal of §5.2.

use tc_mps::{blob_sections3, BlobBuilder, BlobReader, PodArray};

/// Read-only access shared by owned blocks and borrowed blob views,
/// so the count kernels run against either without materializing a
/// pass-through operand.
pub trait BlockView {
    /// Number of rows (empty ones included).
    fn num_rows(&self) -> usize;
    /// Number of stored entries.
    fn num_entries(&self) -> usize;
    /// Entries of local row `lr`, sorted ascending.
    fn row(&self, lr: usize) -> &[u32];
    /// Entry-array offset of local row `lr`.
    fn row_start(&self, lr: usize) -> usize;
    /// Local ids of non-empty rows, ascending.
    fn nonempty_rows(&self) -> &[u32];

    /// Length of the longest row.
    fn max_row_len(&self) -> usize {
        self.nonempty_rows().iter().map(|&lr| self.row(lr as usize).len()).max().unwrap_or(0)
    }

    /// Absolute entry index of column `col` in local row `lr`, if
    /// present (rows are sorted, so this is a binary search).
    fn find_entry(&self, lr: usize, col: u32) -> Option<usize> {
        self.row(lr).binary_search(&col).ok().map(|pos| self.row_start(lr) + pos)
    }
}

/// A CSR-like sparse block with full row indexing and a non-empty row
/// list. Row ids are *local* (global ÷ q); column ids are *global*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBlock {
    /// Full row-pointer array, length `num_rows + 1`.
    xadj: Vec<u32>,
    /// Column entries (global vertex ids), sorted ascending per row.
    cols: Vec<u32>,
    /// Local ids of non-empty rows, ascending (the DCSR index).
    nonempty: Vec<u32>,
}

impl SparseBlock {
    /// Builds a block from `(row_global, col_global)` pairs.
    ///
    /// `q` is the grid side, `num_rows` the row count of the block's
    /// vertex class (`Cyclic2D::class_count`). Rows are addressed by
    /// `row_global ÷ q`; pairs may arrive in any order.
    pub fn from_pairs(num_rows: usize, q: usize, pairs: &mut Vec<(u32, u32)>) -> Self {
        // Counting-sort by local row, then sort columns within rows.
        let mut counts = vec![0u32; num_rows + 1];
        for &(r, _) in pairs.iter() {
            let lr = r as usize / q;
            debug_assert!(lr < num_rows, "row {r} out of class range");
            counts[lr + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let xadj = counts.clone();
        let mut cols = vec![0u32; pairs.len()];
        let mut cursor = counts;
        for &(r, c) in pairs.iter() {
            let lr = r as usize / q;
            cols[cursor[lr] as usize] = c;
            cursor[lr] += 1;
        }
        for lr in 0..num_rows {
            cols[xadj[lr] as usize..xadj[lr + 1] as usize].sort_unstable();
        }
        pairs.clear(); // signal consumption; callers reuse the buffer
        let nonempty = (0..num_rows).filter(|&r| xadj[r + 1] > xadj[r]).map(|r| r as u32).collect();
        Self { xadj, cols, nonempty }
    }

    /// An empty block with `num_rows` rows.
    pub fn empty(num_rows: usize) -> Self {
        Self { xadj: vec![0; num_rows + 1], cols: Vec::new(), nonempty: Vec::new() }
    }

    /// Number of rows (empty ones included).
    pub fn num_rows(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of stored entries.
    pub fn num_entries(&self) -> usize {
        self.cols.len()
    }

    /// Entries of local row `lr`, sorted ascending (O(1) access via the
    /// full row pointer — the "indexing scheme used to avoid
    /// maintaining offsets").
    #[inline]
    pub fn row(&self, lr: usize) -> &[u32] {
        &self.cols[self.xadj[lr] as usize..self.xadj[lr + 1] as usize]
    }

    /// Entry-array offset of local row `lr` (pairs with
    /// [`SparseBlock::row`] to give absolute entry indices).
    #[inline]
    pub fn row_start(&self, lr: usize) -> usize {
        self.xadj[lr] as usize
    }

    /// Absolute entry index of column `col` in local row `lr`, if
    /// present (rows are sorted, so this is a binary search).
    pub fn find_entry(&self, lr: usize, col: u32) -> Option<usize> {
        self.row(lr).binary_search(&col).ok().map(|pos| self.row_start(lr) + pos)
    }

    /// Local ids of non-empty rows.
    pub fn nonempty_rows(&self) -> &[u32] {
        &self.nonempty
    }

    /// Length of the longest row.
    pub fn max_row_len(&self) -> usize {
        self.nonempty
            .iter()
            .map(|&lr| (self.xadj[lr as usize + 1] - self.xadj[lr as usize]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Serializes into a single contiguous buffer (paper §5.2:
    /// "allocate the memory associated with all of the information for
    /// a sparse matrix as a single blob").
    pub fn to_blob(&self) -> bytes::Bytes {
        BlobBuilder::new().push(&self.xadj).push(&self.cols).push(&self.nonempty).finish()
    }

    /// Deserializes a buffer produced by [`SparseBlock::to_blob`].
    pub fn from_blob(data: bytes::Bytes) -> Self {
        let r = BlobReader::new(data);
        assert_eq!(r.num_sections(), 3, "operand blob must have 3 sections");
        Self {
            xadj: r.typed::<u32>(0).into_vec(),
            cols: r.typed::<u32>(1).into_vec(),
            nonempty: r.typed::<u32>(2).into_vec(),
        }
    }
}

impl BlockView for SparseBlock {
    fn num_rows(&self) -> usize {
        SparseBlock::num_rows(self)
    }

    fn num_entries(&self) -> usize {
        SparseBlock::num_entries(self)
    }

    #[inline]
    fn row(&self, lr: usize) -> &[u32] {
        SparseBlock::row(self, lr)
    }

    #[inline]
    fn row_start(&self, lr: usize) -> usize {
        SparseBlock::row_start(self, lr)
    }

    fn nonempty_rows(&self) -> &[u32] {
        SparseBlock::nonempty_rows(self)
    }

    fn max_row_len(&self) -> usize {
        SparseBlock::max_row_len(self)
    }

    fn find_entry(&self, lr: usize, col: u32) -> Option<usize> {
        SparseBlock::find_entry(self, lr, col)
    }
}

/// A borrowed block: the three arrays of a [`SparseBlock`] read
/// directly out of a received blob, with no deserialization copy.
///
/// The view co-owns the underlying buffer (refcounted), so a block
/// that merely passes through a rank on its way around the grid is
/// never materialized — the rank computes against the wire bytes and
/// forwards the very same buffer to its neighbour.
#[derive(Debug)]
pub struct SparseBlockRef {
    xadj: PodArray<u32>,
    cols: PodArray<u32>,
    nonempty: PodArray<u32>,
}

impl SparseBlockRef {
    /// Wraps a buffer produced by [`SparseBlock::to_blob`].
    ///
    /// Allocation-free on the hot path: the fixed 3-section header is
    /// parsed inline and each array is a typed view over its section
    /// (sections are 8-byte aligned within the blob, so the views are
    /// zero-copy whenever the allocator returned an 8-aligned buffer —
    /// which it does in practice).
    pub fn from_blob(data: &bytes::Bytes) -> Self {
        let [xadj, cols, nonempty] = blob_sections3(data);
        Self {
            xadj: PodArray::new(xadj),
            cols: PodArray::new(cols),
            nonempty: PodArray::new(nonempty),
        }
    }
}

impl BlockView for SparseBlockRef {
    fn num_rows(&self) -> usize {
        self.xadj.len() - 1
    }

    fn num_entries(&self) -> usize {
        self.cols.len()
    }

    #[inline]
    fn row(&self, lr: usize) -> &[u32] {
        let xadj = self.xadj.as_slice();
        &self.cols.as_slice()[xadj[lr] as usize..xadj[lr + 1] as usize]
    }

    #[inline]
    fn row_start(&self, lr: usize) -> usize {
        self.xadj.as_slice()[lr] as usize
    }

    fn nonempty_rows(&self) -> &[u32] {
        self.nonempty.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_strided_rows() {
        // q = 3, class 1 (rows 1, 4, 7, ...), num_rows = 3.
        let mut pairs = vec![(4, 9), (1, 5), (4, 3), (7, 2), (1, 0)];
        let b = SparseBlock::from_pairs(3, 3, &mut pairs);
        assert!(pairs.is_empty());
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row(0), &[0, 5]); // global row 1
        assert_eq!(b.row(1), &[3, 9]); // global row 4
        assert_eq!(b.row(2), &[2]); // global row 7
        assert_eq!(b.nonempty_rows(), &[0, 1, 2]);
        assert_eq!(b.max_row_len(), 2);
    }

    #[test]
    fn nonempty_index_skips_holes() {
        // Rows 0 and 2 of 4 are empty.
        let mut pairs = vec![(2, 1), (6, 4)]; // q=2, class 0: rows 0,2,4,6
        let b = SparseBlock::from_pairs(4, 2, &mut pairs);
        assert_eq!(b.nonempty_rows(), &[1, 3]);
        assert_eq!(b.row(0), &[] as &[u32]);
        assert_eq!(b.row(1), &[1]);
        assert_eq!(b.num_entries(), 2);
    }

    #[test]
    fn empty_block() {
        let b = SparseBlock::empty(5);
        assert_eq!(b.num_rows(), 5);
        assert_eq!(b.num_entries(), 0);
        assert!(b.nonempty_rows().is_empty());
        assert_eq!(b.max_row_len(), 0);
    }

    #[test]
    fn blob_roundtrip() {
        let mut pairs = vec![(0, 7), (3, 1), (3, 2), (9, 9)];
        let b = SparseBlock::from_pairs(4, 3, &mut pairs);
        let back = SparseBlock::from_blob(b.to_blob());
        assert_eq!(back, b);
    }

    #[test]
    fn blob_roundtrip_empty() {
        let b = SparseBlock::empty(0);
        assert_eq!(SparseBlock::from_blob(b.to_blob()), b);
    }

    #[test]
    fn borrowed_view_agrees_with_owned_block() {
        let mut pairs = vec![(0u32, 7u32), (3, 1), (3, 2), (9, 9), (9, 3)];
        let b = SparseBlock::from_pairs(4, 3, &mut pairs);
        let blob = b.to_blob();
        let v = SparseBlockRef::from_blob(&blob);
        assert_eq!(BlockView::num_rows(&v), b.num_rows());
        assert_eq!(BlockView::num_entries(&v), b.num_entries());
        assert_eq!(BlockView::nonempty_rows(&v), b.nonempty_rows());
        assert_eq!(BlockView::max_row_len(&v), b.max_row_len());
        for lr in 0..b.num_rows() {
            assert_eq!(BlockView::row(&v, lr), b.row(lr), "row {lr}");
            assert_eq!(BlockView::row_start(&v, lr), b.row_start(lr));
        }
        assert_eq!(BlockView::find_entry(&v, 3, 2), b.find_entry(3, 2));
        assert_eq!(BlockView::find_entry(&v, 0, 42), None);
    }

    #[test]
    fn borrowed_view_of_empty_block() {
        let b = SparseBlock::empty(2);
        let blob = b.to_blob();
        let v = SparseBlockRef::from_blob(&blob);
        assert_eq!(BlockView::num_rows(&v), 2);
        assert_eq!(BlockView::num_entries(&v), 0);
        assert!(BlockView::nonempty_rows(&v).is_empty());
        assert_eq!(BlockView::max_row_len(&v), 0);
    }

    #[test]
    fn duplicate_columns_are_kept_sorted() {
        // The pipeline never produces duplicates, but the container
        // itself must not lose or reorder them.
        let mut pairs = vec![(0, 5), (0, 5), (0, 1)];
        let b = SparseBlock::from_pairs(1, 1, &mut pairs);
        assert_eq!(b.row(0), &[1, 5, 5]);
    }
}
