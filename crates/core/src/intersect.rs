//! Sorted-set intersection kernels and the per-shift kernel state.
//!
//! The per-task set intersection at the heart of the count (`A(a) ∩
//! A(b)`, paper §5.1) admits three strategies:
//!
//! - **hash** — the paper's map probe ([`crate::hashmap::IntersectMap`]),
//!   the only strategy that works when a row loaded in probing mode;
//! - **merge** — a vectorized sorted-merge over the two ascending rows
//!   ([`intersect_count`]): SSE2 on `x86_64` (baseline, no target
//!   feature required), with a mandatory scalar fallback that is always
//!   compiled and takes over on other architectures or under the
//!   `force-scalar` feature;
//! - **bitmap** — packed `u64` bit rows for hub vertices
//!   ([`crate::bitmap::BitRow`]), built once per row load and probed by
//!   every task of the row.
//!
//! [`KernelState`] bundles the reusable state all three share across
//! the shifts of one rank, plus the [`KernelStats`] selection counters
//! behind the `tct.kernel.*` metrics.

use crate::bitmap::BitRow;
use crate::hashmap::IntersectMap;

/// Per-rank tallies of the adaptive kernel dispatch: how many tasks
/// each strategy served and how many membership tests it absorbed.
///
/// The strategy lookup tallies partition the legacy lookup counter
/// exactly: `hash_lookups + merge_lookups + bitmap_lookups ==
/// MapStats::lookups`, because the merge and bitmap paths credit the
/// map with the lookups the hash loop would have performed (the legacy
/// deterministic counters must not move when the strategy changes).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Tasks served by the hash-probe strategy.
    pub hash_tasks: u64,
    /// Tasks served by the sorted-merge strategy.
    pub merge_tasks: u64,
    /// Tasks served by the bitmap strategy.
    pub bitmap_tasks: u64,
    /// Hash rows materialized into packed bit rows.
    pub bitmap_rows: u64,
    /// Membership tests physically performed by the hash probe.
    pub hash_lookups: u64,
    /// Membership tests absorbed by the merge strategy.
    pub merge_lookups: u64,
    /// Membership tests absorbed by the bitmap strategy.
    pub bitmap_lookups: u64,
}

impl KernelStats {
    /// Accumulates another tally (for cross-shift aggregation).
    pub fn merge_from(&mut self, o: &KernelStats) {
        self.hash_tasks += o.hash_tasks;
        self.merge_tasks += o.merge_tasks;
        self.bitmap_tasks += o.bitmap_tasks;
        self.bitmap_rows += o.bitmap_rows;
        self.hash_lookups += o.hash_lookups;
        self.merge_lookups += o.merge_lookups;
        self.bitmap_lookups += o.bitmap_lookups;
    }
}

/// The reusable intersection state of one rank: the hash map, the
/// bitmap arena, and the dispatch tallies. Created once before the
/// shift loop; both containers are grow-only, so steady-state shifts
/// allocate nothing.
#[derive(Debug)]
pub struct KernelState {
    /// The paper's map (always loaded — its row-mode statistics drive
    /// the dispatch and must stay exact across strategies).
    pub map: IntersectMap,
    /// Packed bit-row arena for hub rows.
    pub bitmap: BitRow,
    /// Dispatch tallies.
    pub stats: KernelStats,
}

impl KernelState {
    /// Sized like [`IntersectMap::new`]: `max_row_len` is the longest
    /// hash-side row, `q` the hash transform divisor (grid side).
    pub fn new(max_row_len: usize, q: usize) -> Self {
        Self {
            map: IntersectMap::new(max_row_len, q),
            bitmap: BitRow::new(),
            stats: KernelStats::default(),
        }
    }
}

/// Scalar two-pointer intersection count over two ascending,
/// duplicate-free slices. Always compiled — this is the mandatory
/// fallback the SIMD path tails into and non-x86 targets run outright.
pub fn intersect_count_scalar(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        n += (x == y) as u64;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    n
}

/// Intersection that *visits* every common element (ascending), for
/// the per-edge recording path. Returns the hit count.
pub fn intersect_visit(a: &[u32], b: &[u32], mut hit: impl FnMut(u32)) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            hit(x);
            n += 1;
        }
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    n
}

/// SSE2 block intersection: compare a 4-lane block of `a` against all
/// four rotations of a 4-lane block of `b` (every pair compared once),
/// popcount the combined mask, and advance whichever block's maximum
/// is smaller. SSE2 is part of the `x86_64` baseline, so this compiles
/// and runs with no `target-feature` flags.
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
fn intersect_count_sse2(a: &[u32], b: &[u32]) -> u64 {
    #[allow(unsafe_code)]
    // SAFETY: SSE2 is unconditionally available on x86_64; all loads
    // are unaligned (`loadu`) and stay in-bounds because `i + 4 <=
    // a.len()` and `j + 4 <= b.len()` hold throughout the loop.
    unsafe {
        use core::arch::x86_64::*;
        let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
        let (a4, b4) = (a.len() & !3, b.len() & !3);
        while i < a4 && j < b4 {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
            let m0 = _mm_cmpeq_epi32(va, vb);
            let m1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
            let m2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
            let m3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
            let m = _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3));
            n += (_mm_movemask_ps(_mm_castsi128_ps(m)) as u32).count_ones() as u64;
            let (amax, bmax) = (a[i + 3], b[j + 3]);
            // Elements beyond the smaller max cannot match the other
            // block, so its lanes are exhausted.
            i += if amax <= bmax { 4 } else { 0 };
            j += if bmax <= amax { 4 } else { 0 };
        }
        n + intersect_count_scalar(&a[i..], &b[j..])
    }
}

/// Counts `|a ∩ b|` over two ascending, duplicate-free slices,
/// vectorized where the target allows it.
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        intersect_count_sse2(a, b)
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
    {
        intersect_count_scalar(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic ascending duplicate-free set from a seeded LCG.
    fn pseudo_set(seed: u64, len: usize, gap: u32) -> Vec<u32> {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut v = Vec::with_capacity(len);
        let mut cur = 0u32;
        for _ in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cur = cur.saturating_add(1 + (x >> 33) as u32 % gap);
            v.push(cur);
        }
        v.dedup();
        v
    }

    fn oracle(a: &[u32], b: &[u32]) -> u64 {
        a.iter().filter(|x| b.binary_search(x).is_ok()).count() as u64
    }

    #[test]
    fn scalar_matches_oracle() {
        for seed in 0..20u64 {
            let a = pseudo_set(seed, 50, 5);
            let b = pseudo_set(seed + 100, 70, 3);
            assert_eq!(intersect_count_scalar(&a, &b), oracle(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn vectorized_matches_scalar_on_every_shape() {
        // Sweep lengths through every tail residue (0..4 on each side)
        // and several densities so both the block loop and the scalar
        // tail are exercised.
        for seed in 0..8u64 {
            for la in [0usize, 1, 3, 4, 5, 8, 17, 64, 200] {
                for lb in [0usize, 2, 4, 7, 16, 33, 129] {
                    let a = pseudo_set(seed, la, 4);
                    let b = pseudo_set(seed.wrapping_add(7), lb, 6);
                    assert_eq!(
                        intersect_count(&a, &b),
                        intersect_count_scalar(&a, &b),
                        "seed {seed} la {la} lb {lb}"
                    );
                }
            }
        }
    }

    #[test]
    fn visit_reports_exactly_the_common_elements() {
        let a = [1u32, 3, 5, 9, 12, 40];
        let b = [2u32, 3, 9, 13, 40, 41];
        let mut hits = Vec::new();
        let n = intersect_visit(&a, &b, |k| hits.push(k));
        assert_eq!(n, 3);
        assert_eq!(hits, vec![3, 9, 40]);
    }

    #[test]
    fn identical_and_disjoint_sets() {
        let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
        assert_eq!(intersect_count(&a, &a), 100);
        assert_eq!(intersect_count(&a, &b), 0);
        assert_eq!(intersect_count(&a, &[]), 0);
        assert_eq!(intersect_count(&[], &b), 0);
    }

    #[test]
    fn kernel_state_constructs_empty() {
        let ks = KernelState::new(8, 3);
        assert_eq!(ks.stats, KernelStats::default());
        assert_eq!(ks.map.stride(), 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = KernelStats { hash_tasks: 1, merge_lookups: 5, ..Default::default() };
        let b = KernelStats { hash_tasks: 2, bitmap_rows: 3, ..Default::default() };
        a.merge_from(&b);
        assert_eq!(a.hash_tasks, 3);
        assert_eq!(a.bitmap_rows, 3);
        assert_eq!(a.merge_lookups, 5);
    }
}
