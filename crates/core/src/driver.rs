//! End-to-end driver: spawn the grid, preprocess, count, aggregate.
//!
//! Every pipeline comes in three flavors: a `try_*` function that
//! surfaces runtime failures (peer panics, receive timeouts, collective
//! mismatches) as [`tc_mps::MpsError`], a `*_observed` variant that
//! additionally binds rank threads to trace and/or metrics sessions
//! (see [`tc_mps::Observe`]), and a panicking wrapper with the
//! historical name. The older `*_traced` entry points remain and
//! forward to `*_observed` with metrics off. Nothing can hang: the
//! substrate guarantees every rank is woken and joined on failure.

use tc_graph::{Csr, EdgeList};
use tc_mps::{Comm, MpsResult, Observe, SocketConfig, Universe};
use tc_trace::{names, TraceHandle};

use crate::config::TcConfig;
use crate::metrics::{CommPhase, RankMetrics, TcResult};
use crate::preprocess::{preprocess_from, BlockInput};

/// The per-rank body of the aggregate-count pipeline. Both fabric
/// backends run this exact function — an in-process rank thread and a
/// socket-mesh rank process are indistinguishable from here, which is
/// what makes the backend-conformance guarantee checkable.
fn count_rank(comm: &Comm, global: &Csr, cfg: &TcConfig) -> MpsResult<(u64, RankMetrics)> {
    count_rank_from(comm, global.num_vertices(), &BlockInput::Shared(global), cfg)
}

/// The aggregate-count rank body over an explicit per-rank input
/// source: this rank contributes its 1D block of an `n`-vertex graph
/// (shared CSR window or materialized rows) and participates in the
/// full Cannon pipeline. Returns the globally reduced triangle count
/// (identical on every rank) and this rank's metrics.
///
/// This is the recount oracle of long-lived services: a fleet whose
/// per-rank state is a mutable adjacency block can flatten it into
/// [`BlockInput::Owned`] and obtain the exact 2D count without ever
/// assembling the global graph anywhere.
pub fn count_rank_from(
    comm: &Comm,
    n: usize,
    input: &BlockInput<'_>,
    cfg: &TcConfig,
) -> MpsResult<(u64, RankMetrics)> {
    let mut metrics = RankMetrics::default();

    // ---- preprocessing phase ("ppt") ----
    let phase = CommPhase::begin(comm, names::PHASE_PPT)?;
    let prep = preprocess_from(comm, n, input, cfg)?;
    metrics.finish_ppt(phase.finish()?, prep.ops);

    // ---- triangle counting phase ("tct") ----
    let phase = CommPhase::begin(comm, names::PHASE_TCT)?;
    let out = crate::cannon::cannon_count(comm, prep, cfg)?;
    metrics.finish_tct(phase.finish()?);

    metrics.record_kernel(&out.map_stats, &out.kernel_stats, out.tasks, out.local_triangles);
    metrics.record_shift_compute(out.shift_compute);
    Ok((out.triangles, metrics))
}

/// The per-rank body of the per-edge pipeline: aggregate count plus
/// per-task edge supports, gathered and translated on rank 0 (which is
/// the only rank whose `Option` comes back `Some`).
fn per_edge_rank(
    comm: &Comm,
    global: &Csr,
    cfg: &TcConfig,
) -> MpsResult<(u64, RankMetrics, Option<Vec<EdgeSupport>>)> {
    let n = global.num_vertices();
    let mut metrics = RankMetrics::default();

    let phase = CommPhase::begin(comm, names::PHASE_PPT)?;
    let prep = preprocess_from(comm, n, &BlockInput::Shared(global), cfg)?;
    let label_pairs: Vec<[u32; 2]> = prep.label_pairs.iter().map(|&(o, nl)| [o, nl]).collect();
    metrics.finish_ppt(phase.finish()?, prep.ops);

    let phase = CommPhase::begin(comm, names::PHASE_TCT)?;
    let out = crate::cannon::cannon_count_per_edge(comm, prep, cfg)?;
    metrics.finish_tct(phase.finish()?);

    metrics.record_kernel(&out.map_stats, &out.kernel_stats, out.tasks, out.local_triangles);
    metrics.record_shift_compute(out.shift_compute);

    // Gather label maps and per-task supports on rank 0 for the
    // translation back to input ids.
    let triples: Vec<[u32; 3]> = out
        .per_edge
        .expect("per-edge collection was requested")
        .into_iter()
        .map(|(a, b, s)| {
            debug_assert!(s <= u32::MAX as u64, "support exceeds u32");
            [a, b, s as u32]
        })
        .collect();
    let labels_at_root = comm.gatherv(0, &label_pairs)?;
    let triples_at_root = comm.gatherv(0, &triples)?;

    let supports = labels_at_root.map(|labels| {
        let mut old_of_new = vec![0u32; n];
        for msg in labels {
            for [old, new] in msg {
                old_of_new[new as usize] = old;
            }
        }
        let mut edges = Vec::new();
        for msg in triples_at_root.expect("root gathers both") {
            for [a, b, s] in msg {
                let (ou, ov) = (old_of_new[a as usize], old_of_new[b as usize]);
                let (u, v) = (ou.min(ov), ou.max(ov));
                edges.push(EdgeSupport { u, v, support: s as u64 });
            }
        }
        edges.sort_unstable_by_key(|e| (e.u, e.v));
        edges
    });
    Ok((out.triangles, metrics, supports))
}

/// Counts the triangles of `el` on `p` ranks with the 2D algorithm.
///
/// `p` must be a perfect square (the paper's `√p × √p` grid). The
/// graph is handed to the ranks in the paper's assumed input state —
/// a 1D block distribution of vertices with their full adjacency
/// lists — and everything after that (cyclic redistribution, degree
/// ordering, U/L split, 2D redistribution, Cannon shifts, reduction)
/// happens over explicit messages.
///
/// # Panics
///
/// Panics if `p` is not a perfect square or `el` is not simplified.
pub fn count_triangles(el: &EdgeList, p: usize, cfg: &TcConfig) -> TcResult {
    match try_count_triangles(el, p, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_triangles`]: runtime failures come back as
/// [`tc_mps::MpsError`] instead of a panic.
pub fn try_count_triangles(el: &EdgeList, p: usize, cfg: &TcConfig) -> MpsResult<TcResult> {
    try_count_triangles_observed(el, p, cfg, Observe::none())
}

/// [`try_count_triangles`] with an optional trace session: when a
/// handle is supplied, every rank records phase, shift, and
/// communication spans into it.
pub fn try_count_triangles_traced(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
    trace: Option<&TraceHandle>,
) -> MpsResult<TcResult> {
    try_count_triangles_observed(el, p, cfg, Observe::trace(trace))
}

/// [`try_count_triangles`] with optional trace and metrics sessions.
pub fn try_count_triangles_observed(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
    obs: Observe<'_>,
) -> MpsResult<TcResult> {
    assert!(tc_mps::perfect_square_side(p).is_some(), "rank count {p} is not a perfect square");
    assert!(el.is_simple(), "input must be a simplified undirected graph");

    // The shared immutable CSR stands in for the pre-placed on-disk
    // input; each rank only reads its own 1D block of rows.
    let global = Csr::from_edge_list(el);

    let (rank_outs, comm_stats) =
        Universe::try_run_config(p, &obs.to_config(), |comm| count_rank(comm, &global, cfg))?;

    let mut ranks = Vec::with_capacity(p);
    let triangles = rank_outs[0].0;
    for ((t, mut m), cs) in rank_outs.into_iter().zip(comm_stats) {
        assert_eq!(t, triangles, "ranks disagree on the reduced count");
        m.bytes_sent = cs.bytes_sent;
        ranks.push(m);
    }
    Ok(TcResult { triangles, num_ranks: p, ranks })
}

/// Counts triangles as **one rank of a multi-process universe**: this
/// process joins the socket mesh described by `sock` and runs exactly
/// the per-rank pipeline of [`try_count_triangles`] over it.
///
/// Every participating process must be launched with the same graph
/// and config — the input is read locally, standing in for the paper's
/// pre-placed on-disk distribution. Returns the globally reduced
/// triangle count (identical on every rank) and this rank's metrics;
/// cross-rank aggregation is the launcher's job.
pub fn try_count_triangles_socket(
    el: &EdgeList,
    cfg: &TcConfig,
    sock: &SocketConfig,
) -> MpsResult<(u64, RankMetrics)> {
    let p = sock.peers.len();
    assert!(tc_mps::perfect_square_side(p).is_some(), "rank count {p} is not a perfect square");
    assert!(el.is_simple(), "input must be a simplified undirected graph");
    let global = Csr::from_edge_list(el);
    let ((triangles, mut metrics), stats) =
        Universe::try_run_socket(sock, |comm| count_rank(comm, &global, cfg))?;
    metrics.bytes_sent = stats.bytes_sent;
    Ok((triangles, metrics))
}

/// Per-edge variant of [`try_count_triangles_socket`]: the support
/// list comes back `Some` only on rank 0 (which gathers and translates
/// it), mirroring the in-process pipeline's root-side aggregation.
pub fn try_count_per_edge_socket(
    el: &EdgeList,
    cfg: &TcConfig,
    sock: &SocketConfig,
) -> MpsResult<(u64, RankMetrics, Option<Vec<EdgeSupport>>)> {
    let p = sock.peers.len();
    assert!(tc_mps::perfect_square_side(p).is_some(), "rank count {p} is not a perfect square");
    assert!(el.is_simple(), "input must be a simplified undirected graph");
    let global = Csr::from_edge_list(el);
    let ((triangles, mut metrics, supports), stats) =
        Universe::try_run_socket(sock, |comm| per_edge_rank(comm, &global, cfg))?;
    metrics.bytes_sent = stats.bytes_sent;
    Ok((triangles, metrics, supports))
}

/// Convenience wrapper with the paper's default configuration.
pub fn count_triangles_default(el: &EdgeList, p: usize) -> TcResult {
    count_triangles(el, p, &TcConfig::default())
}

/// Triangle support of one input edge (`u < v`, input labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSupport {
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
    /// Number of triangles containing the edge.
    pub support: u64,
}

/// Counts triangles *per edge* (the edge "support" that k-truss
/// decomposition and related analyses consume — one of the paper's §1
/// motivating applications), alongside the usual aggregate result.
///
/// Supports are accumulated shift-by-shift on each task's owner, then
/// gathered and translated back to input vertex labels. The returned
/// list covers every edge of the graph, sorted by `(u, v)`.
pub fn count_per_edge(el: &EdgeList, p: usize, cfg: &TcConfig) -> (TcResult, Vec<EdgeSupport>) {
    match try_count_per_edge(el, p, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_per_edge`].
pub fn try_count_per_edge(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
) -> MpsResult<(TcResult, Vec<EdgeSupport>)> {
    try_count_per_edge_observed(el, p, cfg, Observe::none())
}

/// [`try_count_per_edge`] with an optional trace session.
pub fn try_count_per_edge_traced(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
    trace: Option<&TraceHandle>,
) -> MpsResult<(TcResult, Vec<EdgeSupport>)> {
    try_count_per_edge_observed(el, p, cfg, Observe::trace(trace))
}

/// [`try_count_per_edge`] with optional trace and metrics sessions.
pub fn try_count_per_edge_observed(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
    obs: Observe<'_>,
) -> MpsResult<(TcResult, Vec<EdgeSupport>)> {
    assert!(tc_mps::perfect_square_side(p).is_some(), "rank count {p} is not a perfect square");
    assert!(el.is_simple(), "input must be a simplified undirected graph");
    let global = Csr::from_edge_list(el);

    let (rank_outs, comm_stats) =
        Universe::try_run_config(p, &obs.to_config(), |comm| per_edge_rank(comm, &global, cfg))?;

    let mut ranks = Vec::with_capacity(p);
    let triangles = rank_outs[0].0;
    let mut supports = None;
    for ((t, mut m, sup), cs) in rank_outs.into_iter().zip(comm_stats) {
        assert_eq!(t, triangles, "ranks disagree on the reduced count");
        m.bytes_sent = cs.bytes_sent;
        ranks.push(m);
        if sup.is_some() {
            supports = sup;
        }
    }
    let supports = supports.expect("rank 0 produced the support list");
    Ok((TcResult { triangles, num_ranks: p, ranks }, supports))
}

/// Counts triangles when the whole graph initially lives on **rank 0**
/// (e.g. it was just loaded from disk there): rank 0 scatters the 1D
/// block rows to their owners, then the standard pipeline runs on the
/// physically distributed data.
///
/// The scatter is reported as part of the preprocessing phase — it
/// replaces the "graph is initially stored using a 1D distribution"
/// assumption of §5.3 with an explicit distribution step.
pub fn count_triangles_from_root(el: &EdgeList, p: usize, cfg: &TcConfig) -> TcResult {
    match try_count_triangles_from_root(el, p, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`count_triangles_from_root`].
pub fn try_count_triangles_from_root(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
) -> MpsResult<TcResult> {
    try_count_triangles_from_root_observed(el, p, cfg, Observe::none())
}

/// [`try_count_triangles_from_root`] with an optional trace session.
pub fn try_count_triangles_from_root_traced(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
    trace: Option<&TraceHandle>,
) -> MpsResult<TcResult> {
    try_count_triangles_from_root_observed(el, p, cfg, Observe::trace(trace))
}

/// [`try_count_triangles_from_root`] with optional trace and metrics
/// sessions.
pub fn try_count_triangles_from_root_observed(
    el: &EdgeList,
    p: usize,
    cfg: &TcConfig,
    obs: Observe<'_>,
) -> MpsResult<TcResult> {
    assert!(tc_mps::perfect_square_side(p).is_some(), "rank count {p} is not a perfect square");
    assert!(el.is_simple(), "input must be a simplified undirected graph");
    let n = el.num_vertices;
    // Only rank 0's closure touches this (the "graph on one node").
    let root_csr = Csr::from_edge_list(el);
    let block = tc_graph::Block1D::new(n, p);

    let (rank_outs, comm_stats) = Universe::try_run_config(p, &obs.to_config(), |comm| {
        let mut metrics = RankMetrics::default();
        let phase = CommPhase::begin(comm, names::PHASE_PPT)?;

        // Rank 0 carves its CSR into per-rank block streams:
        // [lo-local xadj..., adj...] — two sections per rank, framed as
        // one u32 stream: [num_rows, xadj..., adj...].
        let pieces: Option<Vec<Vec<u32>>> = (comm.rank() == 0).then(|| {
            (0..p)
                .map(|r| {
                    let (lo, hi) = block.range(r);
                    let mut buf = Vec::new();
                    buf.push((hi - lo) as u32);
                    let mut off = 0u32;
                    buf.push(0);
                    for v in lo..hi {
                        off += root_csr.degree(v as u32) as u32;
                        buf.push(off);
                    }
                    for v in lo..hi {
                        buf.extend_from_slice(root_csr.neighbors(v as u32));
                    }
                    buf
                })
                .collect()
        });
        let mine = comm.scatterv(0, pieces.as_deref())?;
        let rows = mine[0] as usize;
        let xadj = mine[1..2 + rows].to_vec();
        let adj = mine[2 + rows..].to_vec();
        let (lo, _) = block.range(comm.rank());
        let input = crate::preprocess::BlockInput::Owned { lo: lo as u32, xadj, adj };

        let prep = crate::preprocess::preprocess_from(comm, n, &input, cfg)?;
        metrics.finish_ppt(phase.finish()?, prep.ops);

        let phase = CommPhase::begin(comm, names::PHASE_TCT)?;
        let out = crate::cannon::cannon_count(comm, prep, cfg)?;
        metrics.finish_tct(phase.finish()?);

        metrics.record_kernel(&out.map_stats, &out.kernel_stats, out.tasks, out.local_triangles);
        metrics.record_shift_compute(out.shift_compute);
        Ok((out.triangles, metrics))
    })?;

    let mut ranks = Vec::with_capacity(p);
    let triangles = rank_outs[0].0;
    for ((t, mut m), cs) in rank_outs.into_iter().zip(comm_stats) {
        assert_eq!(t, triangles, "ranks disagree on the reduced count");
        m.bytes_sent = cs.bytes_sent;
        ranks.push(m);
    }
    Ok(TcResult { triangles, num_ranks: p, ranks })
}
