//! The per-shift map-based intersection kernel (paper §5.1–5.2), with
//! adaptive strategy dispatch.
//!
//! On each of the `√p` shifts a rank holds three blocks: its immobile
//! task block, the current hash-side operand (rows `A(a) ∩ {k ≡ w}`),
//! and the current probe-side operand (rows `A(b) ∩ {k ≡ w}`). For
//! every task `(a, b)` the kernel hashes row `a` (once per task row —
//! the map-reuse of [21]) and probes with row `b`; every hit is a
//! triangle `{b, a, k}` (⟨j,i,k⟩) counted exactly once grid-wide.
//!
//! ## Strategy dispatch
//!
//! The probe itself runs under one of three strategies
//! ([`crate::config::KernelStrategy`]): the paper's **hash** probe, a
//! vectorized sorted-**merge** ([`crate::intersect`]), or packed
//! **bitmap** rows for hubs ([`crate::bitmap`]). Dispatch is
//! per-row/per-task from stats the block build already provides (row
//! lengths, the map's direct/probing mode decision):
//!
//! - every row is still loaded into the map first, so the
//!   insert/row-mode counters are strategy-invariant;
//! - merge and bitmap only replace *direct-mode* probes — those cost
//!   zero probe steps each, so replacing them moves no deterministic
//!   counter; probing-mode (collision) rows always take the hash path;
//! - the lookups a fast path absorbs are credited to the map in bulk
//!   ([`crate::hashmap::IntersectMap::credit_lookups`]): under the
//!   reverse early break the legacy loop looks up exactly the probe
//!   entries `≥ min(hash row)` — an ascending-row suffix — and without
//!   it the whole probe row, so the count is computable without
//!   touching the table.
//!
//! Net effect: triangle counts, per-edge supports, and every legacy
//! deterministic counter are bit-identical across all strategies
//! (asserted by the `kernel_equivalence` suite), while skewed blocks
//! run measurably faster.

use crate::bitmap::BitRow;
use crate::blocks::{BlockView, SparseBlock};
use crate::config::{KernelStrategy, TcConfig};
use crate::intersect::{intersect_count, intersect_visit, KernelState};

/// Auto dispatch: a hash row this long (a hub) with enough tasks in
/// the row is worth materializing as a packed bit row.
const BITMAP_MIN_ROW: usize = 64;
/// Auto dispatch: minimum tasks per row to amortize a bitmap build.
const BITMAP_MIN_TASKS: usize = 4;
/// Auto dispatch: merge while the hash row is at most this many times
/// longer than the candidate suffix (merge walks both rows; the hash
/// probe walks only the candidates).
const MERGE_MAX_RATIO: usize = 4;
/// Auto dispatch: minimum candidate-suffix length before merge is
/// considered. Below this the vector path cannot fill its lanes and a
/// direct-map probe per candidate is cheaper than walking both rows.
const MERGE_MIN_CAND: usize = 16;

/// How one task row is served this shift.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RowPlan {
    /// Legacy hash probe for every task of the row.
    Hash,
    /// Vectorized merge for every task of the row.
    Merge,
    /// One packed bit row, probed by every task of the row.
    Bitmap,
    /// Merge vs hash per task, by the length-ratio heuristic.
    Adaptive,
}

/// Counts the triangles contributed by one shift.
///
/// The operands are [`BlockView`]s, so the kernel runs equally against
/// owned [`SparseBlock`]s and borrowed
/// [`crate::blocks::SparseBlockRef`] views of received blobs.
///
/// `tasks_counter` is incremented once per task that performs at least
/// one membership test this shift — the quantity Table 4 reports as
/// "tasks that result in the map-based set intersection operation"
/// (strategy-invariant: the fast paths count the tests they absorb).
pub fn count_shift<H: BlockView, P: BlockView>(
    task: &SparseBlock,
    hash_block: &H,
    probe_block: &P,
    ks: &mut KernelState,
    q: usize,
    cfg: &TcConfig,
    tasks_counter: &mut u64,
) -> u64 {
    count_shift_impl::<H, P, false>(
        task,
        hash_block,
        probe_block,
        ks,
        q,
        cfg,
        tasks_counter,
        |_, _| {},
    )
}

/// [`count_shift`] that additionally reports every individual
/// triangle: `record(entry_index, k)` fires once per hit, where
/// `entry_index` is the position of the task in the block's entry
/// array and `k` the triangle-closing vertex. Accumulated across
/// shifts this yields the per-edge triangle support that k-truss-style
/// analyses consume (one of the paper's §1 motivating applications).
#[allow(clippy::too_many_arguments)] // mirrors count_shift plus the sink
pub fn count_shift_recording<H: BlockView, P: BlockView>(
    task: &SparseBlock,
    hash_block: &H,
    probe_block: &P,
    ks: &mut KernelState,
    q: usize,
    cfg: &TcConfig,
    tasks_counter: &mut u64,
    record: impl FnMut(usize, u32),
) -> u64 {
    count_shift_impl::<H, P, true>(task, hash_block, probe_block, ks, q, cfg, tasks_counter, record)
}

#[allow(clippy::too_many_arguments)]
fn count_shift_impl<H: BlockView, P: BlockView, const RECORD: bool>(
    task: &SparseBlock,
    hash_block: &H,
    probe_block: &P,
    ks: &mut KernelState,
    q: usize,
    cfg: &TcConfig,
    tasks_counter: &mut u64,
    mut record: impl FnMut(usize, u32),
) -> u64 {
    // Operand buffers are swapped between shifts; a fresh shift must
    // never replay a row cached at a recycled address.
    ks.map.invalidate_row_cache();
    let stride = ks.map.stride();
    let mut found = 0u64;

    let mut run_row = |la: usize| {
        let trow = task.row(la);
        if trow.is_empty() {
            return;
        }
        let hrow = hash_block.row(la);
        ks.map.load_row(hrow, cfg.direct_hash);
        // Entries of the hash row are ascending; anything below the
        // smallest can never hit (the §5.2 early-break bound). An
        // empty hash row degenerates to "break immediately".
        let min_h = hrow.first().copied().unwrap_or(u32::MAX);
        let row_base = task.row_start(la);

        // Row plan: the fast strategies require the collision-free
        // direct mode (their counter-exactness guarantee); probing
        // rows and empty rows stay on the hash path under every
        // setting.
        let plan = if hrow.is_empty() || !ks.map.is_direct() {
            RowPlan::Hash
        } else {
            match cfg.kernel {
                KernelStrategy::Hash => RowPlan::Hash,
                KernelStrategy::Merge => RowPlan::Merge,
                KernelStrategy::Bitmap => RowPlan::Bitmap,
                KernelStrategy::Auto => {
                    if hrow.len() >= BITMAP_MIN_ROW
                        && trow.len() >= BITMAP_MIN_TASKS
                        && BitRow::dense_enough(hrow, stride)
                    {
                        RowPlan::Bitmap
                    } else {
                        RowPlan::Adaptive
                    }
                }
            }
        };
        if plan == RowPlan::Bitmap {
            ks.bitmap.build(hrow, stride);
            ks.stats.bitmap_rows += 1;
        }

        for (pos, &b) in trow.iter().enumerate() {
            let prow = probe_block.row(b as usize / q);

            // The candidate span: the probe entries the legacy loop
            // would actually look up. With the early break that is the
            // ascending suffix ≥ min_h; without it, the whole row. The
            // hash path re-derives it by breaking, and an adaptive
            // task over a row too short to ever qualify for merge can
            // only resolve to hash — both skip the search.
            let cand = if plan == RowPlan::Hash
                || (plan == RowPlan::Adaptive && prow.len() < MERGE_MIN_CAND)
            {
                prow
            } else if cfg.reverse_early_break {
                &prow[prow.partition_point(|&k| k < min_h)..]
            } else {
                prow
            };

            let tplan = match plan {
                RowPlan::Hash => RowPlan::Hash,
                RowPlan::Adaptive => {
                    if cand.len() >= MERGE_MIN_CAND && hrow.len() <= MERGE_MAX_RATIO * cand.len() {
                        RowPlan::Merge
                    } else {
                        RowPlan::Hash
                    }
                }
                fixed => fixed,
            };

            match tplan {
                RowPlan::Hash | RowPlan::Adaptive => {
                    // The paper's loop, verbatim: physical lookups.
                    let before = ks.map.stats.lookups;
                    if cfg.reverse_early_break {
                        for &k in prow.iter().rev() {
                            if k < min_h {
                                break;
                            }
                            if ks.map.contains(k) {
                                found += 1;
                                if RECORD {
                                    record(row_base + pos, k);
                                }
                            }
                        }
                    } else {
                        for &k in prow {
                            if ks.map.contains(k) {
                                found += 1;
                                if RECORD {
                                    record(row_base + pos, k);
                                }
                            }
                        }
                    }
                    let done = ks.map.stats.lookups - before;
                    if done > 0 {
                        *tasks_counter += 1;
                        ks.stats.hash_tasks += 1;
                        ks.stats.hash_lookups += done;
                    }
                }
                RowPlan::Merge => {
                    if cand.is_empty() {
                        continue;
                    }
                    ks.map.credit_lookups(cand.len() as u64);
                    *tasks_counter += 1;
                    ks.stats.merge_tasks += 1;
                    ks.stats.merge_lookups += cand.len() as u64;
                    found += if RECORD {
                        intersect_visit(hrow, cand, |k| record(row_base + pos, k))
                    } else {
                        intersect_count(hrow, cand)
                    };
                }
                RowPlan::Bitmap => {
                    if cand.is_empty() {
                        continue;
                    }
                    ks.map.credit_lookups(cand.len() as u64);
                    *tasks_counter += 1;
                    ks.stats.bitmap_tasks += 1;
                    ks.stats.bitmap_lookups += cand.len() as u64;
                    for &k in cand {
                        if ks.bitmap.contains(k, stride) {
                            found += 1;
                            if RECORD {
                                record(row_base + pos, k);
                            }
                        }
                    }
                }
            }
        }

        if plan == RowPlan::Bitmap {
            ks.bitmap.clear(hrow, stride);
        }
    };

    if cfg.doubly_sparse {
        for &la in task.nonempty_rows() {
            run_row(la as usize);
        }
    } else {
        for la in 0..task.num_rows() {
            run_row(la);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcConfig;

    /// Builds a single-rank (q = 1) scenario: every class is class 0,
    /// local row id == vertex id.
    fn single_rank_blocks() -> (SparseBlock, SparseBlock, SparseBlock) {
        // Graph: triangle 0-1-2 plus edge 2-3. Upper adjacency:
        // A(0) = {1, 2}, A(1) = {2}, A(2) = {3}.
        let a_entries = vec![(0u32, 1u32), (0, 2), (1, 2), (2, 3)];
        let n = 4;
        let mut u_pairs = a_entries.clone();
        let ublock = SparseBlock::from_pairs(n, 1, &mut u_pairs);
        let mut l_pairs = a_entries.clone();
        let lblock = SparseBlock::from_pairs(n, 1, &mut l_pairs);
        // ⟨j,i,k⟩ tasks: one per edge, (a, b) = (larger, smaller).
        let mut t_pairs = vec![(1u32, 0u32), (2, 0), (2, 1), (3, 2)];
        let task = SparseBlock::from_pairs(n, 1, &mut t_pairs);
        (task, ublock, lblock)
    }

    fn all_strategies() -> [KernelStrategy; 4] {
        [KernelStrategy::Auto, KernelStrategy::Hash, KernelStrategy::Merge, KernelStrategy::Bitmap]
    }

    #[test]
    fn counts_triangle_single_rank() {
        let (task, ub, lb) = single_rank_blocks();
        for base in [TcConfig::default(), TcConfig::unoptimized()] {
            for strategy in all_strategies() {
                let cfg = base.with_kernel(strategy);
                let mut ks = KernelState::new(ub.max_row_len(), 1);
                let mut tasks = 0u64;
                let c = count_shift(&task, &ub, &lb, &mut ks, 1, &cfg, &mut tasks);
                assert_eq!(c, 1, "{cfg:?}");
                assert!(tasks >= 1);
            }
        }
    }

    #[test]
    fn optimized_performs_fewer_lookups() {
        let (task, ub, lb) = single_rank_blocks();
        let run = |cfg: &TcConfig| {
            let mut ks = KernelState::new(ub.max_row_len(), 1);
            let mut tasks = 0u64;
            let c = count_shift(&task, &ub, &lb, &mut ks, 1, cfg, &mut tasks);
            (c, ks.map.stats.lookups)
        };
        let (c_opt, l_opt) = run(&TcConfig::default());
        let (c_raw, l_raw) = run(&TcConfig::unoptimized());
        assert_eq!(c_opt, c_raw);
        assert!(l_opt <= l_raw, "optimized {l_opt} > raw {l_raw}");
    }

    #[test]
    fn empty_blocks_count_zero() {
        let task = SparseBlock::empty(3);
        let ub = SparseBlock::empty(3);
        let lb = SparseBlock::empty(3);
        let mut ks = KernelState::new(0, 1);
        let mut tasks = 0;
        let c = count_shift(&task, &ub, &lb, &mut ks, 1, &TcConfig::default(), &mut tasks);
        assert_eq!(c, 0);
        assert_eq!(tasks, 0);
    }

    #[test]
    fn early_break_skips_empty_hash_rows() {
        // Task row exists but its hash row is empty: with the early
        // break no lookups happen; without it every probe entry is
        // looked up (and misses). Empty hash rows are served by the
        // hash plan under every strategy, so the pinned counts hold
        // across all of them.
        let mut t_pairs = vec![(0u32, 1u32)];
        let task = SparseBlock::from_pairs(2, 1, &mut t_pairs);
        let ub = SparseBlock::empty(2);
        let mut l_pairs = vec![(1u32, 5u32), (1, 6)];
        let lb = SparseBlock::from_pairs(2, 1, &mut l_pairs);

        for strategy in all_strategies() {
            let mut ks = KernelState::new(4, 1);
            let mut tasks = 0;
            let cfg = TcConfig::default().with_kernel(strategy);
            let c = count_shift(&task, &ub, &lb, &mut ks, 1, &cfg, &mut tasks);
            assert_eq!((c, tasks, ks.map.stats.lookups), (0, 0, 0), "{strategy:?}");

            let mut ks = KernelState::new(4, 1);
            let mut tasks = 0;
            let cfg = cfg.with_reverse_early_break(false);
            let c = count_shift(&task, &ub, &lb, &mut ks, 1, &cfg, &mut tasks);
            assert_eq!(c, 0, "{strategy:?}");
            assert_eq!(tasks, 1, "{strategy:?}");
            assert_eq!(ks.map.stats.lookups, 2, "{strategy:?}");
        }
    }

    #[test]
    fn strategies_agree_on_counts_and_deterministic_counters() {
        let (task, ub, lb) = single_rank_blocks();
        let run = |strategy: KernelStrategy, early: bool| {
            let cfg = TcConfig::default().with_kernel(strategy).with_reverse_early_break(early);
            let mut ks = KernelState::new(ub.max_row_len(), 1);
            let mut tasks = 0u64;
            let c = count_shift(&task, &ub, &lb, &mut ks, 1, &cfg, &mut tasks);
            (c, tasks, ks.map.stats, ks.stats)
        };
        for early in [true, false] {
            let (c0, t0, m0, _) = run(KernelStrategy::Hash, early);
            for strategy in all_strategies() {
                let (c, t, m, k) = run(strategy, early);
                assert_eq!(c, c0, "{strategy:?} early={early}");
                assert_eq!(t, t0, "{strategy:?} early={early}");
                assert_eq!(m, m0, "{strategy:?} early={early}: MapStats drifted");
                // The strategy lookup tallies partition the legacy counter.
                assert_eq!(
                    k.hash_lookups + k.merge_lookups + k.bitmap_lookups,
                    m.lookups,
                    "{strategy:?} early={early}"
                );
                assert_eq!(
                    k.hash_tasks + k.merge_tasks + k.bitmap_tasks,
                    t,
                    "{strategy:?} early={early}"
                );
            }
        }
    }

    #[test]
    fn forced_bitmap_materializes_rows_and_matches() {
        // A hub row (vertex 0 adjacent to everything) so the bitmap
        // path really engages even at small scale when forced.
        let n = 40u32;
        let mut u_pairs: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        u_pairs.extend((1..n - 1).map(|v| (v, v + 1)));
        let mut l_pairs = u_pairs.clone();
        let mut t_pairs: Vec<(u32, u32)> = u_pairs.iter().map(|&(u, v)| (v, u)).collect();
        let ub = SparseBlock::from_pairs(n as usize, 1, &mut u_pairs);
        let lb = SparseBlock::from_pairs(n as usize, 1, &mut l_pairs);
        let task = SparseBlock::from_pairs(n as usize, 1, &mut t_pairs);

        let run = |strategy: KernelStrategy| {
            let cfg = TcConfig::default().with_kernel(strategy);
            let mut ks = KernelState::new(ub.max_row_len(), 1);
            let mut tasks = 0u64;
            let c = count_shift(&task, &ub, &lb, &mut ks, 1, &cfg, &mut tasks);
            (c, tasks, ks.map.stats, ks.stats)
        };
        let (c_hash, t_hash, m_hash, k_hash) = run(KernelStrategy::Hash);
        let (c_bit, t_bit, m_bit, k_bit) = run(KernelStrategy::Bitmap);
        assert_eq!(c_bit, c_hash);
        assert_eq!(t_bit, t_hash);
        assert_eq!(m_bit, m_hash, "bitmap must not move the deterministic map stats");
        assert!(k_bit.bitmap_rows > 0, "forced bitmap must materialize rows");
        assert!(k_bit.bitmap_tasks > 0);
        assert!(
            k_bit.hash_lookups < k_hash.hash_lookups,
            "bitmap must absorb physical hash lookups: {} vs {}",
            k_bit.hash_lookups,
            k_hash.hash_lookups
        );
        assert_eq!(k_hash.bitmap_rows + k_hash.merge_tasks + k_hash.bitmap_tasks, 0);
    }
}
