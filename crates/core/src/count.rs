//! The per-shift map-based intersection kernel (paper §5.1–5.2).
//!
//! On each of the `√p` shifts a rank holds three blocks: its immobile
//! task block, the current hash-side operand (rows `A(a) ∩ {k ≡ w}`),
//! and the current probe-side operand (rows `A(b) ∩ {k ≡ w}`). For
//! every task `(a, b)` the kernel hashes row `a` (once per task row —
//! the map-reuse of [21]) and probes with row `b`; every hit is a
//! triangle `{b, a, k}` (⟨j,i,k⟩) counted exactly once grid-wide.

use crate::blocks::{BlockView, SparseBlock};
use crate::config::TcConfig;
use crate::hashmap::IntersectMap;

/// Counts the triangles contributed by one shift.
///
/// The operands are [`BlockView`]s, so the kernel runs equally against
/// owned [`SparseBlock`]s and borrowed
/// [`crate::blocks::SparseBlockRef`] views of received blobs.
///
/// `tasks_counter` is incremented once per task that performs at least
/// one hash lookup this shift — the quantity Table 4 reports as "tasks
/// that result in the map-based set intersection operation".
pub fn count_shift<H: BlockView, P: BlockView>(
    task: &SparseBlock,
    hash_block: &H,
    probe_block: &P,
    map: &mut IntersectMap,
    q: usize,
    cfg: &TcConfig,
    tasks_counter: &mut u64,
) -> u64 {
    count_shift_recording(task, hash_block, probe_block, map, q, cfg, tasks_counter, |_, _| {})
}

/// [`count_shift`] that additionally reports every individual
/// triangle: `record(entry_index, k)` fires once per hit, where
/// `entry_index` is the position of the task in the block's entry
/// array and `k` the triangle-closing vertex. Accumulated across
/// shifts this yields the per-edge triangle support that k-truss-style
/// analyses consume (one of the paper's §1 motivating applications).
#[allow(clippy::too_many_arguments)] // mirrors count_shift plus the sink
pub fn count_shift_recording<H: BlockView, P: BlockView>(
    task: &SparseBlock,
    hash_block: &H,
    probe_block: &P,
    map: &mut IntersectMap,
    q: usize,
    cfg: &TcConfig,
    tasks_counter: &mut u64,
    mut record: impl FnMut(usize, u32),
) -> u64 {
    let mut found = 0u64;

    let mut run_row = |la: usize| {
        let trow = task.row(la);
        if trow.is_empty() {
            return;
        }
        let hrow = hash_block.row(la);
        map.load_row(hrow, cfg.direct_hash);
        // Entries of the hash row are ascending; anything below the
        // smallest can never hit (the §5.2 early-break bound). An
        // empty hash row degenerates to "break immediately".
        let min_h = hrow.first().copied().unwrap_or(u32::MAX);
        let row_base = task.row_start(la);
        for (pos, &b) in trow.iter().enumerate() {
            let prow = probe_block.row(b as usize / q);
            let before = map.stats.lookups;
            if cfg.reverse_early_break {
                for &k in prow.iter().rev() {
                    if k < min_h {
                        break;
                    }
                    if map.contains(k) {
                        found += 1;
                        record(row_base + pos, k);
                    }
                }
            } else {
                for &k in prow {
                    if map.contains(k) {
                        found += 1;
                        record(row_base + pos, k);
                    }
                }
            }
            if map.stats.lookups > before {
                *tasks_counter += 1;
            }
        }
    };

    if cfg.doubly_sparse {
        for &la in task.nonempty_rows() {
            run_row(la as usize);
        }
    } else {
        for la in 0..task.num_rows() {
            run_row(la);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcConfig;

    /// Builds a single-rank (q = 1) scenario: every class is class 0,
    /// local row id == vertex id.
    fn single_rank_blocks() -> (SparseBlock, SparseBlock, SparseBlock) {
        // Graph: triangle 0-1-2 plus edge 2-3. Upper adjacency:
        // A(0) = {1, 2}, A(1) = {2}, A(2) = {3}.
        let a_entries = vec![(0u32, 1u32), (0, 2), (1, 2), (2, 3)];
        let n = 4;
        let mut u_pairs = a_entries.clone();
        let ublock = SparseBlock::from_pairs(n, 1, &mut u_pairs);
        let mut l_pairs = a_entries.clone();
        let lblock = SparseBlock::from_pairs(n, 1, &mut l_pairs);
        // ⟨j,i,k⟩ tasks: one per edge, (a, b) = (larger, smaller).
        let mut t_pairs = vec![(1u32, 0u32), (2, 0), (2, 1), (3, 2)];
        let task = SparseBlock::from_pairs(n, 1, &mut t_pairs);
        (task, ublock, lblock)
    }

    #[test]
    fn counts_triangle_single_rank() {
        let (task, ub, lb) = single_rank_blocks();
        for cfg in [TcConfig::default(), TcConfig::unoptimized()] {
            let mut map = IntersectMap::new(ub.max_row_len(), 1);
            let mut tasks = 0u64;
            let c = count_shift(&task, &ub, &lb, &mut map, 1, &cfg, &mut tasks);
            assert_eq!(c, 1, "{cfg:?}");
            assert!(tasks >= 1);
        }
    }

    #[test]
    fn optimized_performs_fewer_lookups() {
        let (task, ub, lb) = single_rank_blocks();
        let run = |cfg: &TcConfig| {
            let mut map = IntersectMap::new(ub.max_row_len(), 1);
            let mut tasks = 0u64;
            let c = count_shift(&task, &ub, &lb, &mut map, 1, cfg, &mut tasks);
            (c, map.stats.lookups)
        };
        let (c_opt, l_opt) = run(&TcConfig::default());
        let (c_raw, l_raw) = run(&TcConfig::unoptimized());
        assert_eq!(c_opt, c_raw);
        assert!(l_opt <= l_raw, "optimized {l_opt} > raw {l_raw}");
    }

    #[test]
    fn empty_blocks_count_zero() {
        let task = SparseBlock::empty(3);
        let ub = SparseBlock::empty(3);
        let lb = SparseBlock::empty(3);
        let mut map = IntersectMap::new(0, 1);
        let mut tasks = 0;
        let c = count_shift(&task, &ub, &lb, &mut map, 1, &TcConfig::default(), &mut tasks);
        assert_eq!(c, 0);
        assert_eq!(tasks, 0);
    }

    #[test]
    fn early_break_skips_empty_hash_rows() {
        // Task row exists but its hash row is empty: with the early
        // break no lookups happen; without it every probe entry is
        // looked up (and misses).
        let mut t_pairs = vec![(0u32, 1u32)];
        let task = SparseBlock::from_pairs(2, 1, &mut t_pairs);
        let ub = SparseBlock::empty(2);
        let mut l_pairs = vec![(1u32, 5u32), (1, 6)];
        let lb = SparseBlock::from_pairs(2, 1, &mut l_pairs);

        let mut map = IntersectMap::new(4, 1);
        let mut tasks = 0;
        let c = count_shift(&task, &ub, &lb, &mut map, 1, &TcConfig::default(), &mut tasks);
        assert_eq!((c, tasks, map.stats.lookups), (0, 0, 0));

        let mut map = IntersectMap::new(4, 1);
        let mut tasks = 0;
        let cfg = TcConfig::default().with_reverse_early_break(false);
        let c = count_shift(&task, &ub, &lb, &mut map, 1, &cfg, &mut tasks);
        assert_eq!(c, 0);
        assert_eq!(tasks, 1);
        assert_eq!(map.stats.lookups, 2);
    }
}
