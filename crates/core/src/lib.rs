//! # tc-core — 2D parallel triangle counting
//!
//! A from-scratch implementation of the distributed-memory triangle
//! counting algorithm of Tom & Karypis (ICPP 2019): the computation
//! `C[L] = U·L` restricted to the non-zeros of `L` is decomposed
//! 2D-cyclically over a `√p × √p` processor grid and evaluated with
//! Cannon-style shifts, using map-based ⟨j,i,k⟩ set intersections with
//! the paper's three sparsity optimizations (collision-free direct
//! hashing, doubly-sparse traversal, reverse early break).
//!
//! ## Quickstart
//!
//! ```
//! use tc_core::{count_triangles_default};
//! use tc_graph::EdgeList;
//!
//! // A triangle plus a pendant edge, counted on a 2×2 grid.
//! let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify();
//! let result = count_triangles_default(&el, 4);
//! assert_eq!(result.triangles, 1);
//! ```
//!
//! The returned [`TcResult`] carries the per-rank measurements behind
//! every table and figure of the paper's evaluation (phase times,
//! per-shift compute times, task/probe counts, communication volume).

#![warn(missing_docs)]

pub mod bitmap;
pub mod blocks;
pub mod cannon;
pub mod config;
pub mod count;
pub mod driver;
pub mod hashmap;
pub mod intersect;
pub mod metrics;
pub mod preprocess;
pub mod summa;

pub use config::{Enumeration, KernelStrategy, TcConfig};
pub use driver::{
    count_per_edge, count_rank_from, count_triangles, count_triangles_default,
    count_triangles_from_root, try_count_per_edge, try_count_per_edge_observed,
    try_count_per_edge_socket, try_count_per_edge_traced, try_count_triangles,
    try_count_triangles_from_root, try_count_triangles_from_root_observed,
    try_count_triangles_from_root_traced, try_count_triangles_observed, try_count_triangles_socket,
    try_count_triangles_traced, EdgeSupport,
};
pub use intersect::{KernelState, KernelStats};
pub use metrics::{CommPhase, PhaseSample, RankMetrics, TcResult};
pub use preprocess::BlockInput;
pub use summa::{
    count_triangles_summa, summa_rank_from, try_count_triangles_summa,
    try_count_triangles_summa_observed, try_count_triangles_summa_socket,
    try_count_triangles_summa_traced, SummaGrid,
};
