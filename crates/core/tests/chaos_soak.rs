//! Chaos soak: the full 2D algorithms on a 16-rank grid with the
//! fabric actively misbehaving under every fault mode and multiple
//! seeds. The reliable-delivery transport must make the chaos
//! invisible — exact triangle counts, identical per-edge supports, and
//! unchanged deterministic kernel counters versus a clean run — and an
//! unmaskable dead link must surface as a typed error within the
//! deadline instead of a hang.

use std::time::Duration;

use tc_core::{
    try_count_per_edge_observed, try_count_triangles_observed, try_count_triangles_summa_observed,
    SummaGrid, TcConfig, TcResult,
};
use tc_gen::graph500;
use tc_graph::EdgeList;
use tc_mps::{FaultKind, FaultPlan, LinkFaults, MpsError, Observe};

const P: usize = 16;

fn soak_graph(seed: u64) -> EdgeList {
    graph500(6, seed).simplify()
}

/// The deterministic fingerprint of one run: count plus the kernel
/// quantities the paper's tables are built on.
fn fingerprint(r: &TcResult) -> (u64, u64, u64) {
    (r.triangles, r.total_tasks(), r.total_probes())
}

fn mode_plan(kind: FaultKind, seed: u64) -> FaultPlan {
    // High enough to fire on most links every run, low enough that
    // retransmits converge quickly in a debug-build test.
    let prob = if kind == FaultKind::Drop { 0.2 } else { 0.3 };
    let mut faults = LinkFaults::only(kind, prob);
    faults.delay_max = Duration::from_micros(30);
    FaultPlan::new(seed).with_default(faults)
}

#[test]
fn cannon_16_ranks_exact_under_every_mode_and_seed() {
    let el = soak_graph(42);
    let cfg = TcConfig::paper();
    let clean = try_count_triangles_observed(&el, P, &cfg, Observe::none()).expect("clean");
    assert!(clean.triangles > 0, "soak graph must actually have triangles");
    for kind in FaultKind::ALL {
        for seed in [11u64, 22, 33, 44, 55] {
            let plan = mode_plan(kind, seed);
            let obs = Observe { chaos: Some(&plan), ..Observe::none() };
            let r = try_count_triangles_observed(&el, P, &cfg, obs)
                .unwrap_or_else(|e| panic!("cannon mode {} seed {seed}: {e}", kind.name()));
            assert_eq!(
                fingerprint(&r),
                fingerprint(&clean),
                "cannon mode {} seed {seed}",
                kind.name()
            );
        }
    }
}

#[test]
fn summa_16_ranks_exact_under_every_mode_and_seed() {
    let el = soak_graph(43);
    let cfg = TcConfig::paper();
    let grid = SummaGrid::new(4, 4);
    let clean =
        try_count_triangles_summa_observed(&el, grid, &cfg, Observe::none()).expect("clean");
    assert!(clean.triangles > 0);
    for kind in FaultKind::ALL {
        for seed in [7u64, 14, 21, 28, 35] {
            let plan = mode_plan(kind, seed);
            let obs = Observe { chaos: Some(&plan), ..Observe::none() };
            let r = try_count_triangles_summa_observed(&el, grid, &cfg, obs)
                .unwrap_or_else(|e| panic!("summa mode {} seed {seed}: {e}", kind.name()));
            assert_eq!(
                fingerprint(&r),
                fingerprint(&clean),
                "summa mode {} seed {seed}",
                kind.name()
            );
        }
    }
}

#[test]
fn per_edge_supports_identical_under_combined_chaos() {
    let el = soak_graph(44);
    let cfg = TcConfig::paper();
    let (clean_r, clean_sup) =
        try_count_per_edge_observed(&el, P, &cfg, Observe::none()).expect("clean");
    for seed in [3u64, 5, 8] {
        let plan = FaultPlan::new(seed).with_default(LinkFaults {
            delay_max: Duration::from_micros(20),
            ..LinkFaults::uniform(0.15)
        });
        let obs = Observe { chaos: Some(&plan), ..Observe::none() };
        let (r, sup) = try_count_per_edge_observed(&el, P, &cfg, obs)
            .unwrap_or_else(|e| panic!("per-edge seed {seed}: {e}"));
        assert_eq!(fingerprint(&r), fingerprint(&clean_r), "seed {seed}");
        assert_eq!(sup, clean_sup, "seed {seed}: per-edge supports must match exactly");
    }
}

#[test]
fn dead_link_fails_typed_within_deadline_on_cannon() {
    let el = soak_graph(45);
    let cfg = TcConfig::paper();
    // Every frame rank 0 sends to rank 1 is lost, original and
    // retransmit alike: no budget masks it.
    let plan = FaultPlan::new(1)
        .with_default(LinkFaults::none())
        .with_link(0, 1, LinkFaults::only(FaultKind::Drop, 1.0))
        .with_max_retries(4)
        .with_nack_backoff(Duration::from_millis(1), Duration::from_millis(5));
    let obs = Observe { chaos: Some(&plan), ..Observe::none() };
    let t0 = std::time::Instant::now();
    let err = try_count_triangles_observed(&el, P, &cfg, obs)
        .expect_err("a fully dead link cannot be masked");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "typed failure, not a timeout: {:?}",
        t0.elapsed()
    );
    match &err {
        MpsError::DeliveryFailed { src, dst, .. } => {
            assert_eq!((*src, *dst), (0, 1), "{err}");
        }
        MpsError::PeerFailed { msg, .. } => {
            assert!(msg.contains("delivery from rank 0 failed"), "{err}");
        }
        other => panic!("expected DeliveryFailed (or a peer's view of it), got {other}"),
    }
}
