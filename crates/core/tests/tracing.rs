//! End-to-end tracing acceptance tests: a 16-rank traced run exports
//! a valid Chrome trace with one lane per rank and spans for phases,
//! shifts, and collectives; the trace analyzer's critical paths agree
//! with the [`TcResult`] critical-path model; and with tracing
//! disabled the instrumented code paths record nothing at all.

use std::sync::Mutex;

use tc_core::{try_count_triangles_traced, TcConfig};
use tc_gen::{rmat, RmatParams};
use tc_trace::{analysis, chrome, names, TraceSession};

/// The recorder gate is process-global, so tests that enable or probe
/// it must not overlap.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_graph() -> tc_graph::EdgeList {
    rmat(9, 8, RmatParams::GRAPH500, 42).simplify()
}

#[test]
fn traced_16_rank_run_exports_valid_chrome_trace() {
    let _g = lock();
    let el = test_graph();
    let p = 16;
    let session = TraceSession::begin();
    let handle = session.handle();
    let result =
        try_count_triangles_traced(&el, p, &TcConfig::default(), Some(&handle)).expect("run");
    let trace = session.finish();
    assert!(result.triangles > 0, "RMAT scale-9 graph should contain triangles");

    let dir = std::env::temp_dir().join(format!("tc_trace_test_{}", std::process::id()));
    let path = dir.join("run16.trace.json");
    chrome::write_chrome_json(&trace, &path).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let summary = chrome::validate(&text).expect("exported trace must validate");
    std::fs::remove_dir_all(&dir).ok();

    // One lane per rank.
    assert_eq!(summary.ranks, (0..p).collect::<Vec<_>>(), "expected one lane per rank");

    // Phase spans: every rank records ppt and tct exactly once.
    assert_eq!(summary.spans_by_name.get(names::PHASE_PPT), Some(&p));
    assert_eq!(summary.spans_by_name.get(names::PHASE_TCT), Some(&p));

    // Shift spans: q = √p compute steps per rank, q-1 exchanges plus
    // the initial skew.
    let q = 4;
    assert_eq!(summary.spans_by_name.get(names::SHIFT_COMPUTE), Some(&(p * q)));
    assert_eq!(summary.spans_by_name.get(names::SHIFT_XCHG), Some(&(p * (q - 1))));
    assert_eq!(summary.spans_by_name.get(names::SKEW), Some(&p));

    // Collective spans: the pipeline uses barriers, reductions, and
    // personalized exchanges on every rank.
    for coll in ["barrier", "reduce", "bcast", "alltoallv"] {
        let n = summary.spans_by_name.get(coll).copied().unwrap_or(0);
        assert!(n >= p, "expected at least {p} {coll:?} spans, found {n}");
    }
    assert_eq!(trace.dropped, 0, "default capacity must not drop events on this run");
}

#[test]
fn analyzer_critical_path_agrees_with_metrics_model() {
    let _g = lock();
    let el = test_graph();
    let session = TraceSession::begin();
    let handle = session.handle();
    let result =
        try_count_triangles_traced(&el, 16, &TcConfig::default(), Some(&handle)).expect("run");
    let trace = session.finish();
    let a = analysis::analyze(&trace).expect("non-empty trace analyzes");

    assert_eq!(a.ranks.len(), 16);
    assert_eq!(a.shifts.len(), 4, "q = 4 shifts on a 16-rank grid");

    // The phase spans sit strictly inside the CpuTimer boundaries the
    // metrics use, so the trace-derived critical path can only be
    // smaller — but never by more than scheduling noise. Allow a
    // generous absolute + relative band for loaded CI machines.
    let tol = |modeled: f64| 0.010 + 0.30 * modeled;

    let modeled_ppt = result.modeled_ppt_time().as_secs_f64();
    let traced_ppt = a.ppt_critical_path_s();
    assert!(
        (traced_ppt - modeled_ppt).abs() <= tol(modeled_ppt),
        "ppt critical path: traced {traced_ppt:.6}s vs modeled {modeled_ppt:.6}s"
    );

    let modeled_tct = result.modeled_tct_time().as_secs_f64();
    let traced_tct = a.tct_critical_path_s();
    assert!(
        (traced_tct - modeled_tct).abs() <= tol(modeled_tct),
        "tct critical path: traced {traced_tct:.6}s vs modeled {modeled_tct:.6}s"
    );

    // The per-shift maxima the analyzer reports are what
    // `modeled_tct_time` sums, so their sum must honour the same band.
    let shift_sum: f64 = a.shifts.iter().map(|s| s.max_compute_s).sum();
    assert!((shift_sum - traced_tct).abs() < 1e-9);

    // The report renders without panicking and names both phases.
    let report = a.report();
    assert!(report.contains(names::PHASE_PPT) && report.contains(names::PHASE_TCT));
}

#[test]
fn untraced_run_records_no_events() {
    let _g = lock();
    let el = test_graph();
    let before = tc_trace::events_recorded_total();
    let result =
        try_count_triangles_traced(&el, 4, &TcConfig::default(), None).expect("untraced run");
    assert!(result.triangles > 0);
    assert_eq!(
        tc_trace::events_recorded_total(),
        before,
        "instrumented paths must bypass the recorder when no session is active"
    );
    assert!(!tc_trace::enabled());
}
