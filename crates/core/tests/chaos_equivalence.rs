//! Chaos-on ≡ chaos-off: property tests over random graphs and random
//! fault plans, plus the bypass proof that an unchaosed run records no
//! reliability activity at all.

use std::time::Duration;

use proptest::prelude::*;
use tc_core::{try_count_per_edge_observed, try_count_triangles_observed, TcConfig, TcResult};
use tc_gen::er::gnm;
use tc_gen::graph500;
use tc_graph::EdgeList;
use tc_mps::{FaultPlan, LinkFaults, Observe};

fn fingerprint(r: &TcResult) -> (u64, u64, u64) {
    (r.triangles, r.total_tasks(), r.total_probes())
}

/// A random plan with drop + duplicate + reorder live (the three modes
/// that reshape the frame stream rather than just damaging bytes).
fn random_plan(seed: u64, drop: f64, dup: f64, reorder: f64) -> FaultPlan {
    FaultPlan::new(seed).with_default(LinkFaults {
        drop,
        duplicate: dup,
        reorder,
        ..LinkFaults::none()
    })
}

proptest! {
    // Every case runs two full 9-rank distributed counts; keep the
    // case count CI-sized.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn counts_and_kernel_totals_invariant_under_chaos(
        gseed in 0u64..1000,
        rmat in any::<bool>(),
        pseed in 0u64..1000,
        drop_milli in 0u32..300,
        dup_milli in 0u32..300,
        reorder_milli in 0u32..300,
    ) {
        let el: EdgeList = if rmat {
            graph500(5, gseed).simplify()
        } else {
            gnm(48, 160, gseed).simplify()
        };
        let cfg = TcConfig::paper();
        let clean = try_count_triangles_observed(&el, 9, &cfg, Observe::none()).unwrap();
        let plan = random_plan(
            pseed,
            f64::from(drop_milli) / 1000.0,
            f64::from(dup_milli) / 1000.0,
            f64::from(reorder_milli) / 1000.0,
        );
        let obs = Observe { chaos: Some(&plan), ..Observe::none() };
        let chaotic = try_count_triangles_observed(&el, 9, &cfg, obs).unwrap();
        prop_assert_eq!(fingerprint(&chaotic), fingerprint(&clean));
    }

    #[test]
    fn per_edge_supports_invariant_under_chaos(
        gseed in 0u64..1000,
        pseed in 0u64..1000,
        drop_milli in 0u32..250,
        reorder_milli in 0u32..250,
    ) {
        let el = gnm(40, 140, gseed).simplify();
        let cfg = TcConfig::paper();
        let (clean_r, clean_sup) =
            try_count_per_edge_observed(&el, 4, &cfg, Observe::none()).unwrap();
        let plan = random_plan(
            pseed,
            f64::from(drop_milli) / 1000.0,
            0.1,
            f64::from(reorder_milli) / 1000.0,
        );
        let obs = Observe { chaos: Some(&plan), ..Observe::none() };
        let (r, sup) = try_count_per_edge_observed(&el, 4, &cfg, obs).unwrap();
        prop_assert_eq!(fingerprint(&r), fingerprint(&clean_r));
        prop_assert_eq!(sup, clean_sup);
    }
}

/// With no plan installed, the transport must not merely stay quiet —
/// it must not exist: no rank records a single reliability counter,
/// and per-rank reliability stats are absent.
#[test]
fn chaos_off_records_zero_reliability_activity() {
    let el = graph500(6, 9).simplify();
    let session = tc_metrics::MetricsSession::begin();
    let handle = session.handle();
    let obs = Observe { metrics: Some(&handle), ..Observe::none() };
    let r = try_count_triangles_observed(&el, 16, &TcConfig::paper(), obs).expect("clean run");
    assert!(r.triangles > 0);
    let snap = session.finish();
    assert_eq!(snap.ranks().len(), 16);
    for rank in snap.ranks() {
        for name in tc_metrics::names::MPS_RELIABILITY {
            assert_eq!(
                snap.counter(rank, name),
                None,
                "rank {rank} recorded {name} without a transport"
            );
        }
    }
    // The bench-record layer is where present-and-zero is proven: the
    // counters appear with an explicit 0 even though nothing recorded.
    let rec = tc_metrics::RunRecord::from_snapshot("t", "2d", 16, "c", r.triangles, &snap);
    for name in tc_metrics::names::MPS_RELIABILITY {
        assert_eq!(rec.counters.get(*name), Some(&0u64), "{name} present-and-zero");
    }
}

/// The delay knob alone (no stream reshaping) must also be invisible —
/// a cheap smoke for the one mode the proptest above leaves out.
#[test]
fn pure_delay_chaos_is_invisible() {
    let el = gnm(48, 180, 77).simplify();
    let cfg = TcConfig::paper();
    let clean = try_count_triangles_observed(&el, 9, &cfg, Observe::none()).unwrap();
    let plan = FaultPlan::new(5).with_default(LinkFaults {
        delay: 0.5,
        delay_max: Duration::from_micros(40),
        ..LinkFaults::none()
    });
    let obs = Observe { chaos: Some(&plan), ..Observe::none() };
    let chaotic = try_count_triangles_observed(&el, 9, &cfg, obs).unwrap();
    assert_eq!(fingerprint(&chaotic), fingerprint(&clean));
}
