//! Steady-state allocation audit for the zero-copy shift pipeline.
//!
//! The overlapped Cannon schedule claims that once the skew has placed
//! the first operand pair, a full rotation of the grid performs **no
//! heap allocation**: blobs circulate as refcounted buffers (a clone or
//! forward is a refcount bump), the kernel computes against
//! [`SparseBlockRef`] views borrowed straight from the wire bytes, and
//! the intersection map is pre-sized. This test rebuilds the steady
//! loop from the same public pieces (`Grid::shift_left_start` /
//! `shift_up_start`, `SparseBlockRef::from_blob`, `count_shift`) under
//! a counting global allocator and asserts that, after one warm-up
//! rotation (mailbox `VecDeque`s growing to capacity, `Arc` buffers
//! being created), the measured rotations allocate exactly nothing on
//! the rank thread.
//!
//! Tracing and metrics sessions are deliberately left off: the
//! instrumentation points are inert (one relaxed atomic load) in that
//! state, which is also the configuration perf runs care about.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tc_core::blocks::{SparseBlock, SparseBlockRef};
use tc_core::count::count_shift;
use tc_core::intersect::KernelState;
use tc_core::TcConfig;
use tc_mps::{Grid, Universe};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn allocs_here() -> u64 {
    ALLOCS.with(Cell::get)
}

// `try_with`: allocation can happen while a thread's TLS is being torn
// down, where `with` would panic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        if ARMED.try_with(Cell::get).unwrap_or(false) {
            let _ = ARMED.try_with(|c| c.set(false));
            eprintln!("ALLOC({}) at:\n{}", l.size(), std::backtrace::Backtrace::force_capture());
        }
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// A deterministic block whose contents vary with `salt`, so the
/// rotating operands are distinct rank to rank. Columns within a row
/// are distinct (the map rejects duplicate keys) and sorted by
/// construction.
fn mk_block(n: usize, q: usize, class: usize, salt: u32) -> SparseBlock {
    let rows = n / q;
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for lr in 0..rows as u32 {
        let r = lr * q as u32 + class as u32;
        for j in 0..4u32 {
            // Offsets {0, 5, 10, 15} keep the four columns distinct.
            pairs.push((r, (salt + lr * 3 + j * 5) % n as u32));
        }
    }
    SparseBlock::from_pairs(rows, q, &mut pairs)
}

/// One full rotation of the steady-state loop: post the shift, compute
/// against borrowed views of the current blobs, wait the shift in.
/// After `q` steps the operands are back home, so successive rounds see
/// identical data and must produce identical counts.
fn rotate_once(
    grid: &Grid<'_>,
    task: &SparseBlock,
    u_blob: &mut bytes::Bytes,
    l_blob: &mut bytes::Bytes,
    ks: &mut KernelState,
    cfg: &TcConfig,
) -> u64 {
    let q = grid.q();
    let mut local = 0u64;
    let mut tasks = 0u64;
    for _ in 0..q {
        let left = grid.shift_left_start(u_blob.clone());
        let up = grid.shift_up_start(l_blob.clone());
        let hash = SparseBlockRef::from_blob(u_blob);
        let probe = SparseBlockRef::from_blob(l_blob);
        local += count_shift(task, &hash, &probe, ks, q, cfg, &mut tasks);
        *u_blob = left.wait().expect("left shift");
        *l_blob = up.wait().expect("up shift");
    }
    local
}

fn steady_state_case(p: usize) {
    let cfg = TcConfig::default();
    let per_rank = Universe::run(p, move |comm| {
        let grid = Grid::new(comm);
        let (q, x, salt) = (grid.q(), grid.row(), comm.rank() as u32);
        let n = 60; // divisible by every tested q
        let task = mk_block(n, q, x, 1 + salt);
        let mut u_blob = mk_block(n, q, x, 2 + salt).to_blob();
        let mut l_blob = mk_block(n, q, x, 3 + salt).to_blob();
        let mut ks = KernelState::new(8, q);

        // Pre-stress the communication queues past their steady-state
        // peak: a rank may run ahead of its neighbours by up to q−1
        // shift steps (the ring dependency bounds the lead), so mailbox
        // and pending VecDeques can keep growing for a while after the
        // first rotation. Posting 4q shifts per direction before
        // waiting any of them ratchets every queue capacity beyond
        // anything the measured rotations can reach.
        let mut reqs = Vec::with_capacity(8 * q);
        for _ in 0..4 * q {
            reqs.push(grid.shift_left_start(u_blob.clone()));
            reqs.push(grid.shift_up_start(l_blob.clone()));
        }
        // Waiting in reverse order forces every earlier packet through
        // the per-source pending queues (not just the mailbox), so
        // their capacities ratchet too.
        for r in reqs.into_iter().rev() {
            let _ = r.wait().expect("pre-stress shift");
        }
        comm.barrier().expect("post-stress barrier");

        // Warm-up rotation: every blob's Arc is created, the map is
        // sized, the empty-Bytes singleton is initialized.
        let warm = rotate_once(&grid, &task, &mut u_blob, &mut l_blob, &mut ks, &cfg);

        // Measured rotations: the steady state must not allocate.
        ARMED.with(|c| c.set(true));
        let before = allocs_here();
        let r1 = rotate_once(&grid, &task, &mut u_blob, &mut l_blob, &mut ks, &cfg);
        let r2 = rotate_once(&grid, &task, &mut u_blob, &mut l_blob, &mut ks, &cfg);
        let allocated = allocs_here() - before;
        (warm, r1, r2, allocated)
    });
    for (rank, &(warm, r1, r2, allocated)) in per_rank.iter().enumerate() {
        assert_eq!(warm, r1, "rank {rank}: rotation results diverged");
        assert_eq!(r1, r2, "rank {rank}: rotation results diverged");
        assert_eq!(
            allocated, 0,
            "rank {rank}: steady-state rotations performed {allocated} heap allocations"
        );
    }
}

#[test]
fn steady_state_shift_loop_is_allocation_free_4_ranks() {
    steady_state_case(4);
}

#[test]
fn steady_state_shift_loop_is_allocation_free_9_ranks() {
    steady_state_case(9);
}

/// The borrowed view really is a view: constructing it from a blob
/// allocates nothing (the owned `SparseBlock::from_blob` conversion
/// copies into fresh `Vec`s and is the thing the pipeline avoids).
#[test]
fn borrowed_view_construction_is_copy_free() {
    let block = mk_block(60, 2, 0, 7);
    let blob = block.to_blob();
    let _ = bytes::Bytes::new(); // initialize the empty-buffer singleton
    let before = allocs_here();
    let view = SparseBlockRef::from_blob(&blob);
    let built = allocs_here() - before;
    assert_eq!(built, 0, "SparseBlockRef::from_blob allocated {built} times");
    // Spot-check the view actually reads the data it borrowed.
    use tc_core::blocks::BlockView;
    assert_eq!(view.num_rows(), block.num_rows());
    assert_eq!(view.num_entries(), block.num_entries());
    for lr in 0..block.num_rows() {
        assert_eq!(view.row(lr), block.row(lr));
    }
}
