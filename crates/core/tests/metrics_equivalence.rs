//! Acceptance tests for the tc-metrics threading through the 2D
//! pipeline:
//!
//! 1. **Equivalence** — every deterministic quantity reported through
//!    the `tc-metrics` registry (ops, probes, tasks, bytes, triangle
//!    count) exactly equals the legacy [`RankMetrics`] value on a
//!    16-rank reference run, per rank and in aggregate.
//! 2. **Bypass** — with no session live, the instrumented code paths
//!    record nothing at all (the process-global probe counter does
//!    not move), so disabled metrics cost one relaxed atomic load.

use std::sync::Mutex;

use tc_core::{try_count_triangles_observed, TcConfig};
use tc_gen::{rmat, RmatParams};
use tc_metrics::names;
use tc_mps::Observe;

/// The recording gate is process-global, so tests that enable or
/// probe it must not overlap.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_graph() -> tc_graph::EdgeList {
    rmat(9, 8, RmatParams::GRAPH500, 42).simplify()
}

#[test]
fn deterministic_counters_equal_legacy_rank_metrics_on_16_ranks() {
    let _g = lock();
    let el = test_graph();
    let p = 16;

    let session = tc_metrics::MetricsSession::begin();
    let handle = session.handle();
    let obs = Observe { metrics: Some(&handle), ..Observe::none() };
    let result = try_count_triangles_observed(&el, p, &TcConfig::default(), obs).expect("run");
    let snap = session.finish();

    assert_eq!(snap.ranks(), (0..p).collect::<Vec<_>>(), "one registry per rank");

    // Per-rank: every deterministic counter matches the RankMetrics
    // field it shadows, exactly.
    for (rank, m) in result.ranks.iter().enumerate() {
        let c = |name: &str| {
            snap.counter(rank, name).unwrap_or_else(|| panic!("rank {rank} missing {name}"))
        };
        assert_eq!(c(names::PPT_OPS), m.ppt_ops, "ppt_ops rank {rank}");
        assert_eq!(c(names::TCT_OPS), m.tct_ops, "tct_ops rank {rank}");
        assert_eq!(c(names::TCT_TASKS), m.tasks, "tasks rank {rank}");
        assert_eq!(c(names::TCT_PROBES), m.probes, "probes rank {rank}");
        assert_eq!(c(names::TCT_LOOKUPS), m.lookups, "lookups rank {rank}");
        assert_eq!(c(names::TCT_DIRECT_ROWS), m.direct_rows, "direct_rows rank {rank}");
        assert_eq!(c(names::TCT_PROBED_ROWS), m.probed_rows, "probed_rows rank {rank}");
        assert_eq!(c(names::TCT_TRIANGLES), m.local_triangles, "local_triangles rank {rank}");
        assert_eq!(c(names::MPS_BYTES_SENT), m.bytes_sent, "bytes_sent rank {rank}");
        // Per-shift compute times land in the histogram, one sample
        // per shift.
        let h = snap.hist(rank, names::SHIFT_COMPUTE_NS).expect("shift hist");
        assert_eq!(h.count(), m.shift_compute.len() as u64, "shift samples rank {rank}");
        // Phase timings are noisy, but the recorded value must be the
        // exact nanosecond count the legacy field holds.
        assert_eq!(c(names::PPT_WALL_NS), m.ppt.as_nanos() as u64, "ppt wall rank {rank}");
        assert_eq!(c(names::TCT_WALL_NS), m.tct.as_nanos() as u64, "tct wall rank {rank}");
    }

    // Aggregate: merged counters equal the TcResult totals the bench
    // tables print.
    let merged = snap.merged_counters();
    assert_eq!(merged[names::TCT_TASKS], result.total_tasks());
    assert_eq!(merged[names::TCT_PROBES], result.total_probes());
    assert_eq!(merged[names::TCT_LOOKUPS], result.total_lookups());
    assert_eq!(merged[names::TCT_TRIANGLES], result.triangles);
    assert_eq!(merged[names::MPS_BYTES_SENT], result.total_bytes_sent());
}

#[test]
fn disabled_metrics_record_nothing() {
    let _g = lock();
    let el = test_graph();
    let before = tc_metrics::values_recorded_total();
    assert!(!tc_metrics::enabled(), "no session may be live in this test");
    let result =
        try_count_triangles_observed(&el, 16, &TcConfig::default(), Observe::none()).expect("run");
    assert!(result.triangles > 0);
    assert_eq!(
        tc_metrics::values_recorded_total(),
        before,
        "instrumentation must be fully bypassed when no session is live"
    );
}
