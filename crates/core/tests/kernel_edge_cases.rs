//! Edge-case property tests of the per-shift intersection kernel: on
//! random RMAT and Erdős–Rényi graphs — deformed to include isolated
//! vertices and a maximum-degree hub — every combination of the
//! `doubly_sparse` and `reverse_early_break` optimizations must agree
//! with the serial reference count, both when driving [`count_shift`]
//! directly on a single-rank block set and through the full 2D
//! pipeline.

use proptest::prelude::*;
use tc_baselines::serial;
use tc_core::blocks::SparseBlock;
use tc_core::count::count_shift;
use tc_core::intersect::KernelState;
use tc_core::{count_triangles, TcConfig};
use tc_gen::er::gnm;
use tc_gen::graph500;
use tc_graph::EdgeList;

/// All four on/off combinations of the two kernel optimizations.
fn kernel_configs() -> [TcConfig; 4] {
    [
        TcConfig::default().with_doubly_sparse(true).with_reverse_early_break(true),
        TcConfig::default().with_doubly_sparse(true).with_reverse_early_break(false),
        TcConfig::default().with_doubly_sparse(false).with_reverse_early_break(true),
        TcConfig::default().with_doubly_sparse(false).with_reverse_early_break(false),
    ]
}

/// Runs the kernel as a single rank (q = 1, one shift): the task block
/// holds one `(a, b)` task per edge `b < a`, and the upper adjacency
/// serves as both the hash and the probe operand.
fn kernel_count(el: &EdgeList, cfg: &TcConfig) -> u64 {
    let n = el.num_vertices.max(1);
    let mut u_pairs: Vec<(u32, u32)> = el.edges.clone();
    let mut p_pairs: Vec<(u32, u32)> = el.edges.clone();
    let mut t_pairs: Vec<(u32, u32)> = el.edges.iter().map(|&(u, v)| (v, u)).collect();
    let ublock = SparseBlock::from_pairs(n, 1, &mut u_pairs);
    let pblock = SparseBlock::from_pairs(n, 1, &mut p_pairs);
    let task = SparseBlock::from_pairs(n, 1, &mut t_pairs);
    let mut ks = KernelState::new(ublock.max_row_len(), 1);
    let mut tasks = 0u64;
    count_shift(&task, &ublock, &pblock, &mut ks, 1, cfg, &mut tasks)
}

/// Adds `isolated` unreferenced vertices and, when `hub` is set, one
/// vertex adjacent to every original vertex (the maximum-degree case).
fn deform(el: EdgeList, isolated: usize, hub: bool) -> EdgeList {
    let base = el.num_vertices;
    let mut edges = el.edges;
    let mut n = base + isolated;
    if hub {
        let h = n as u32;
        edges.extend((0..base as u32).map(|v| (v, h)));
        n += 1;
    }
    EdgeList::new(n, edges).simplify()
}

fn check_all_kernel_configs(el: &EdgeList) {
    let expect = serial::count_default(el);
    for cfg in kernel_configs() {
        assert_eq!(kernel_count(el, &cfg), expect, "kernel cfg={cfg:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rmat_graphs_agree_across_configs(
        scale in 4u32..8,
        seed in 0u64..1_000,
        isolated in 0usize..6,
        hub in any::<bool>(),
    ) {
        let el = deform(graph500(scale, seed).simplify(), isolated, hub);
        check_all_kernel_configs(&el);
    }

    #[test]
    fn er_graphs_agree_across_configs(
        n in 2usize..80,
        density in 0usize..4,
        seed in 0u64..1_000,
        isolated in 0usize..6,
        hub in any::<bool>(),
    ) {
        let m = n * (density + 1) / 2;
        let el = deform(gnm(n, m, seed), isolated, hub);
        check_all_kernel_configs(&el);
    }

    #[test]
    fn pipeline_matches_kernel_on_deformed_graphs(
        seed in 0u64..1_000,
        isolated in 0usize..6,
        hub in any::<bool>(),
    ) {
        // The same config grid through the full 2D pipeline on a
        // multi-rank grid, so block decomposition of the deformed
        // graphs is covered too.
        let el = deform(graph500(6, seed).simplify(), isolated, hub);
        let expect = serial::count_default(&el);
        for cfg in kernel_configs() {
            for p in [1usize, 4] {
                let r = count_triangles(&el, p, &cfg);
                prop_assert_eq!(r.triangles, expect, "pipeline cfg={:?} p={}", cfg, p);
            }
        }
    }
}

#[test]
fn star_graph_is_triangle_free_in_every_config() {
    // Pure hub: maximum-degree vertex, no triangles.
    let el = deform(EdgeList::empty(12), 0, true);
    check_all_kernel_configs(&el);
    assert_eq!(serial::count_default(&el), 0);
}

#[test]
fn all_vertices_isolated() {
    let el = EdgeList::empty(9);
    check_all_kernel_configs(&el);
}
