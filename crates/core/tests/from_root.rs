//! The root-scatter entry point must agree with the shared-input
//! pipeline on every graph and grid.

use tc_core::{count_triangles_default, count_triangles_from_root, TcConfig};
use tc_gen::graph500;
use tc_graph::EdgeList;

#[test]
fn matches_shared_input_pipeline() {
    let el = graph500(9, 3).simplify();
    for p in [1usize, 4, 9, 16] {
        let shared = count_triangles_default(&el, p);
        let rooted = count_triangles_from_root(&el, p, &TcConfig::paper());
        assert_eq!(rooted.triangles, shared.triangles, "p={p}");
        assert_eq!(rooted.total_tasks(), shared.total_tasks(), "p={p}");
        // The scatter adds root-side bytes: at least the graph once.
        assert!(rooted.total_bytes_sent() >= shared.total_bytes_sent(), "p={p}");
    }
}

#[test]
fn degenerate_graphs() {
    for el in [
        EdgeList::empty(0),
        EdgeList::empty(5),
        EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify(),
    ] {
        let r = count_triangles_from_root(&el, 4, &TcConfig::paper());
        let s = count_triangles_default(&el, 4);
        assert_eq!(r.triangles, s.triangles);
    }
}

#[test]
fn works_with_all_optimizations_off() {
    let el = graph500(8, 8).simplify();
    let r = count_triangles_from_root(&el, 9, &TcConfig::unoptimized());
    assert_eq!(r.triangles, tc_baselines::serial::count_default(&el));
}
