//! Overlapped vs synchronous operand pipeline equivalence.
//!
//! The zero-copy overlapped schedule (`TcConfig::overlap_shifts`, the
//! default) must be *observationally identical* to the synchronous
//! ablation schedule in everything except communication behavior:
//! triangle counts, task counts, probe/lookup statistics, and per-edge
//! supports all agree exactly, while the deterministic
//! `tct.shift_bytes_serialized` counter strictly drops (each operand is
//! serialized once at the skew instead of once per shift).

use std::sync::Mutex;

use proptest::prelude::*;
use tc_core::{
    try_count_per_edge, try_count_triangles, try_count_triangles_observed,
    try_count_triangles_summa, SummaGrid, TcConfig,
};
use tc_gen::er::gnm;
use tc_gen::{rmat, RmatParams};
use tc_graph::EdgeList;
use tc_mps::Observe;

/// The metrics recording gate is process-global; tests that open a
/// session must not overlap.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn mlock() -> std::sync::MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn overlap_cfg() -> TcConfig {
    TcConfig::paper().with_overlap_shifts(true)
}

fn sync_cfg() -> TcConfig {
    TcConfig::paper().with_overlap_shifts(false)
}

/// Runs both schedules on `el` at `p` ranks and asserts every
/// deterministic output matches.
fn assert_equivalent(el: &EdgeList, p: usize) {
    let a = try_count_triangles(el, p, &overlap_cfg()).expect("overlap run");
    let b = try_count_triangles(el, p, &sync_cfg()).expect("sync run");
    assert_eq!(a.triangles, b.triangles, "p={p}: triangles");
    assert_eq!(a.total_tasks(), b.total_tasks(), "p={p}: tasks");
    assert_eq!(a.total_probes(), b.total_probes(), "p={p}: probes");
    assert_eq!(a.total_lookups(), b.total_lookups(), "p={p}: lookups");
    for (rank, (ra, rb)) in a.ranks.iter().zip(&b.ranks).enumerate() {
        assert_eq!(ra.local_triangles, rb.local_triangles, "p={p} rank {rank}: local");
        assert_eq!(ra.tasks, rb.tasks, "p={p} rank {rank}: tasks");
        assert_eq!(ra.probes, rb.probes, "p={p} rank {rank}: probes");
        assert_eq!(ra.lookups, rb.lookups, "p={p} rank {rank}: lookups");
        assert_eq!(ra.direct_rows, rb.direct_rows, "p={p} rank {rank}: direct rows");
        assert_eq!(ra.probed_rows, rb.probed_rows, "p={p} rank {rank}: probed rows");
    }
}

#[test]
fn schedules_agree_on_rmat() {
    let el = rmat(8, 6, RmatParams::GRAPH500, 7).simplify();
    for p in [1usize, 4, 9, 16] {
        assert_equivalent(&el, p);
    }
}

#[test]
fn schedules_agree_on_erdos_renyi() {
    let el = gnm(300, 1800, 21).simplify();
    for p in [1usize, 4, 9, 16] {
        assert_equivalent(&el, p);
    }
}

#[test]
fn schedules_agree_per_edge() {
    // The per-edge path exercises count_shift_recording plus the
    // credit exchange on top of the pipeline; supports must match
    // vector for vector.
    let el = rmat(8, 5, RmatParams::GRAPH500, 33).simplify();
    for p in [1usize, 4, 9, 16] {
        let (ra, sa) = try_count_per_edge(&el, p, &overlap_cfg()).expect("overlap");
        let (rb, sb) = try_count_per_edge(&el, p, &sync_cfg()).expect("sync");
        assert_eq!(ra.triangles, rb.triangles, "p={p}");
        assert_eq!(sa, sb, "p={p}: per-edge supports diverged");
    }
}

#[test]
fn schedules_agree_on_summa() {
    let el = rmat(8, 6, RmatParams::GRAPH500, 11).simplify();
    for (pr, pc) in [(1, 1), (2, 2), (2, 3), (3, 3), (4, 2)] {
        let grid = SummaGrid::new(pr, pc);
        let a = try_count_triangles_summa(&el, grid, &overlap_cfg()).expect("overlap");
        let b = try_count_triangles_summa(&el, grid, &sync_cfg()).expect("sync");
        assert_eq!(a.triangles, b.triangles, "{pr}x{pc}: triangles");
        assert_eq!(a.total_tasks(), b.total_tasks(), "{pr}x{pc}: tasks");
        assert_eq!(a.total_probes(), b.total_probes(), "{pr}x{pc}: probes");
    }
}

/// Runs one configuration under a metrics session and returns
/// (triangles, tasks, serialized bytes).
fn measured_run(el: &EdgeList, p: usize, cfg: &TcConfig) -> (u64, u64, u64) {
    let session = tc_metrics::MetricsSession::begin();
    let handle = session.handle();
    let obs = Observe { metrics: Some(&handle), ..Observe::none() };
    let r = try_count_triangles_observed(el, p, cfg, obs).expect("run");
    let snap = session.finish();
    let serialized: u64 = (0..p)
        .map(|rank| snap.counter(rank, tc_metrics::names::SHIFT_BYTES_SERIALIZED).unwrap_or(0))
        .sum();
    (r.triangles, r.total_tasks(), serialized)
}

#[test]
fn overlap_strictly_reduces_serialized_bytes() {
    let _g = mlock();
    let el = rmat(8, 6, RmatParams::GRAPH500, 5).simplify();
    for p in [4usize, 9, 16] {
        let (tri_a, tasks_a, ser_a) = measured_run(&el, p, &overlap_cfg());
        let (tri_b, tasks_b, ser_b) = measured_run(&el, p, &sync_cfg());
        assert_eq!(tri_a, tri_b, "p={p}: schedules disagree on triangles");
        assert_eq!(tasks_a, tasks_b, "p={p}: schedules disagree on tasks");
        // q > 1: the sync path re-serializes at every one of the q−1
        // extra shift steps; the overlapped path serializes at the
        // skew only.
        assert!(
            ser_a < ser_b,
            "p={p}: expected a strict serialized-bytes drop, got {ser_a} vs {ser_b}"
        );
        assert!(ser_a > 0, "p={p}: the skew still serializes");
    }
}

#[test]
fn single_rank_serializes_nothing() {
    let _g = mlock();
    let el = rmat(7, 4, RmatParams::GRAPH500, 3).simplify();
    for cfg in [overlap_cfg(), sync_cfg()] {
        let (_, _, ser) = measured_run(&el, 1, &cfg);
        assert_eq!(ser, 0, "q=1 moves no operands and must serialize none");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random small graphs, both generators' shapes, every square rank
    /// count: the two schedules must agree on the full deterministic
    /// output (counts, tasks, per-edge supports).
    #[test]
    fn schedules_agree_on_random_graphs(
        scale in 5u32..8,
        factor in 2usize..6,
        seed in 0u64..1_000,
        p_idx in 0usize..4,
        use_er in any::<bool>(),
    ) {
        let p = [1usize, 4, 9, 16][p_idx];
        let el = if use_er {
            let n = 1usize << scale;
            gnm(n, n * factor, seed).simplify()
        } else {
            rmat(scale, factor, RmatParams::GRAPH500, seed).simplify()
        };
        let a = try_count_triangles(&el, p, &overlap_cfg()).expect("overlap run");
        let b = try_count_triangles(&el, p, &sync_cfg()).expect("sync run");
        prop_assert_eq!(a.triangles, b.triangles);
        prop_assert_eq!(a.total_tasks(), b.total_tasks());
        prop_assert_eq!(a.total_probes(), b.total_probes());
        prop_assert_eq!(a.total_lookups(), b.total_lookups());

        let (ra, sa) = try_count_per_edge(&el, p, &overlap_cfg()).expect("overlap per-edge");
        let (rb, sb) = try_count_per_edge(&el, p, &sync_cfg()).expect("sync per-edge");
        prop_assert_eq!(ra.triangles, a.triangles);
        prop_assert_eq!(rb.triangles, b.triangles);
        prop_assert_eq!(sa, sb);
    }
}
