//! The core invariant: for every graph, every perfect-square rank
//! count, and every optimization configuration, the 2D distributed
//! count equals the serial reference count.

use tc_baselines::serial;
use tc_core::{count_triangles, count_triangles_default, Enumeration, TcConfig};
use tc_gen::{graph500, rmat, RmatParams};
use tc_graph::EdgeList;

fn check_all_grids(el: &EdgeList, expect: u64) {
    for p in [1usize, 4, 9, 16, 25] {
        let r = count_triangles_default(el, p);
        assert_eq!(r.triangles, expect, "p={p}");
        assert_eq!(r.num_ranks, p);
        assert_eq!(r.ranks.len(), p);
        // Local counts must sum to the global count.
        let local_sum: u64 = r.ranks.iter().map(|m| m.local_triangles).sum();
        assert_eq!(local_sum, expect, "p={p} local sum");
    }
}

#[test]
fn triangle_and_pendant() {
    let el = EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)]).simplify();
    assert_eq!(serial::count_default(&el), 1);
    check_all_grids(&el, 1);
}

#[test]
fn complete_graph_k8() {
    let mut edges = Vec::new();
    for u in 0..8u32 {
        for v in u + 1..8 {
            edges.push((u, v));
        }
    }
    let el = EdgeList::new(8, edges).simplify();
    // C(8,3) = 56 triangles.
    assert_eq!(serial::count_default(&el), 56);
    check_all_grids(&el, 56);
}

#[test]
fn triangle_free_bipartite() {
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in 6..12u32 {
            edges.push((u, v));
        }
    }
    let el = EdgeList::new(12, edges).simplify();
    check_all_grids(&el, 0);
}

#[test]
fn empty_and_tiny_graphs() {
    check_all_grids(&EdgeList::empty(0), 0);
    check_all_grids(&EdgeList::empty(7), 0);
    let one_edge = EdgeList::new(2, vec![(0, 1)]).simplify();
    check_all_grids(&one_edge, 0);
    let tri = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify();
    check_all_grids(&tri, 1);
}

#[test]
fn fewer_vertices_than_ranks() {
    // 3 vertices on up to 25 ranks: most blocks are empty.
    let el = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify();
    check_all_grids(&el, 1);
}

#[test]
fn rmat_matches_serial() {
    let el = graph500(9, 123).simplify();
    let expect = serial::count_default(&el);
    assert!(expect > 0);
    check_all_grids(&el, expect);
}

#[test]
fn uniform_rmat_matches_serial() {
    let el = rmat(9, 8, RmatParams { a: 0.25, b: 0.25, c: 0.25 }, 77).simplify();
    let expect = serial::count_default(&el);
    check_all_grids(&el, expect);
}

#[test]
fn all_configurations_agree() {
    let el = graph500(8, 5).simplify();
    let expect = serial::count_default(&el);
    let configs = [
        TcConfig::default(),
        TcConfig::unoptimized(),
        TcConfig::default().with_enumeration(Enumeration::Ijk),
        TcConfig::default().with_doubly_sparse(false),
        TcConfig::default().with_direct_hash(false),
        TcConfig::default().with_reverse_early_break(false),
        TcConfig::unoptimized().with_enumeration(Enumeration::Ijk),
    ];
    for cfg in &configs {
        for p in [1usize, 4, 9, 16] {
            let r = count_triangles(&el, p, cfg);
            assert_eq!(r.triangles, expect, "cfg={cfg:?} p={p}");
        }
    }
}

#[test]
#[should_panic(expected = "perfect square")]
fn rejects_non_square_rank_count() {
    let el = EdgeList::new(3, vec![(0, 1)]).simplify();
    let _ = count_triangles_default(&el, 6);
}

#[test]
#[should_panic(expected = "simplified")]
fn rejects_unsimplified_input() {
    let el = EdgeList::new(3, vec![(1, 0)]);
    let _ = count_triangles_default(&el, 4);
}

#[test]
fn metrics_are_populated() {
    let el = graph500(8, 5).simplify();
    let r = count_triangles_default(&el, 9);
    assert!(r.ppt_time().as_nanos() > 0);
    assert!(r.tct_time().as_nanos() > 0);
    assert!(r.total_tasks() > 0);
    assert!(r.total_lookups() > 0);
    assert!(r.total_bytes_sent() > 0);
    assert!(r.task_imbalance() >= 1.0);
    for m in &r.ranks {
        assert_eq!(m.shift_compute.len(), 3, "q=3 shifts");
    }
    let (mx, avg, imb) = r.shift_imbalance();
    assert!(mx >= avg);
    assert!(imb >= 1.0);
}

#[test]
fn task_count_grows_with_ranks() {
    // The paper's Table 4: redundant work increases with the grid
    // side because adjacency fragments lose early-break opportunities.
    let el = graph500(10, 9).simplify();
    let t1 = count_triangles_default(&el, 1).total_tasks();
    let t16 = count_triangles_default(&el, 16).total_tasks();
    assert!(t16 >= t1, "t1={t1} t16={t16}");
}
