//! Property tests of the core building blocks: the intersection map
//! against a reference set, and the sparse block container against a
//! reference reconstruction.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;
use tc_core::blocks::SparseBlock;
use tc_core::hashmap::IntersectMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersect_map_matches_hashset(
        row in vec(0u32..10_000, 0..64),
        probes in vec(0u32..10_000, 0..64),
        q in 1usize..8,
        allow_direct in any::<bool>(),
    ) {
        // Deduplicate the row (operand rows never contain duplicates).
        let mut row: Vec<u32> = row;
        row.sort_unstable();
        row.dedup();
        let reference: HashSet<u32> = row.iter().copied().collect();
        let mut map = IntersectMap::new(row.len().max(1), q);
        map.load_row(&row, allow_direct);
        for &k in &probes {
            prop_assert_eq!(map.contains(k), reference.contains(&k), "key {}", k);
        }
        for &k in &row {
            prop_assert!(map.contains(k));
        }
    }

    #[test]
    fn intersect_map_reload_isolates_rows(
        row1 in vec(0u32..1000, 1..32),
        row2 in vec(1000u32..2000, 1..32),
    ) {
        let mut r1 = row1; r1.sort_unstable(); r1.dedup();
        let mut r2 = row2; r2.sort_unstable(); r2.dedup();
        let mut map = IntersectMap::new(r1.len().max(r2.len()), 1);
        map.load_row(&r1, true);
        map.load_row(&r2, true);
        for &k in &r1 {
            prop_assert!(!map.contains(k), "stale key {} survived reload", k);
        }
        for &k in &r2 {
            prop_assert!(map.contains(k));
        }
    }

    #[test]
    fn sparse_block_reconstructs_pairs(
        pairs in vec((0u32..64, 0u32..1000), 0..200),
        q in 1usize..6,
    ) {
        let num_rows = 64usize.div_ceil(q);
        let mut input: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(r, c)| ((r as usize / q * q + r as usize % q) as u32, c))
            .collect();
        // Rows must belong to one class: force class 0 by scaling.
        for p in input.iter_mut() {
            p.0 = (p.0 as usize / q * q) as u32 % (num_rows * q) as u32;
        }
        let expect: Vec<(u32, u32)> = {
            let mut v = input.clone();
            v.sort_unstable();
            v
        };
        let mut work = input;
        let block = SparseBlock::from_pairs(num_rows, q, &mut work);
        // Reconstruct (row, col) pairs from the block.
        let mut got = Vec::new();
        for lr in 0..block.num_rows() {
            for &c in block.row(lr) {
                got.push(((lr * q) as u32, c));
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        // Non-empty index is exact.
        for lr in 0..block.num_rows() {
            let listed = block.nonempty_rows().contains(&(lr as u32));
            prop_assert_eq!(listed, !block.row(lr).is_empty(), "row {}", lr);
        }
        // Blob round trip.
        prop_assert_eq!(SparseBlock::from_blob(block.to_blob()), block);
    }
}
