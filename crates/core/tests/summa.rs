//! SUMMA (rectangular-grid) correctness: must match the serial
//! reference and the Cannon path on every grid shape and panel count.

use tc_baselines::serial;
use tc_core::{count_triangles_default, count_triangles_summa, Enumeration, SummaGrid, TcConfig};
use tc_gen::graph500;
use tc_graph::EdgeList;

#[test]
fn rectangular_grids_match_serial() {
    let el = graph500(9, 11).simplify();
    let expect = serial::count_default(&el);
    assert!(expect > 0);
    for (pr, pc) in [(1, 1), (1, 4), (4, 1), (2, 3), (3, 2), (2, 2), (3, 5), (4, 4)] {
        let r = count_triangles_summa(&el, SummaGrid::new(pr, pc), &TcConfig::paper());
        assert_eq!(r.triangles, expect, "grid {pr}x{pc}");
        assert_eq!(r.num_ranks, pr * pc);
        let sum: u64 = r.ranks.iter().map(|m| m.local_triangles).sum();
        assert_eq!(sum, expect, "grid {pr}x{pc} local sum");
    }
}

#[test]
fn panel_counts_do_not_change_the_answer() {
    let el = graph500(8, 3).simplify();
    let expect = serial::count_default(&el);
    for k in [1usize, 2, 3, 7, 16, 64] {
        let r = count_triangles_summa(&el, SummaGrid::new(2, 3).with_panels(k), &TcConfig::paper());
        assert_eq!(r.triangles, expect, "panels={k}");
        // One compute step per panel.
        assert!(r.ranks.iter().all(|m| m.shift_compute.len() == k));
    }
}

#[test]
fn summa_square_agrees_with_cannon() {
    let el = graph500(9, 5).simplify();
    let cannon = count_triangles_default(&el, 9);
    let summa = count_triangles_summa(&el, SummaGrid::new(3, 3), &TcConfig::paper());
    assert_eq!(cannon.triangles, summa.triangles);
}

#[test]
fn all_configs_work_on_rectangles() {
    let el = graph500(8, 9).simplify();
    let expect = serial::count_default(&el);
    for cfg in [
        TcConfig::paper(),
        TcConfig::unoptimized(),
        TcConfig::paper().with_enumeration(Enumeration::Ijk),
        TcConfig::paper().with_direct_hash(false),
    ] {
        let r = count_triangles_summa(&el, SummaGrid::new(2, 4), &cfg);
        assert_eq!(r.triangles, expect, "{cfg:?}");
    }
}

#[test]
fn degenerate_graphs() {
    let grid = SummaGrid::new(3, 2);
    assert_eq!(count_triangles_summa(&EdgeList::empty(0), grid, &TcConfig::paper()).triangles, 0);
    assert_eq!(count_triangles_summa(&EdgeList::empty(10), grid, &TcConfig::paper()).triangles, 0);
    let tri = EdgeList::new(3, vec![(0, 1), (0, 2), (1, 2)]).simplify();
    assert_eq!(count_triangles_summa(&tri, grid, &TcConfig::paper()).triangles, 1);
}

#[test]
fn tall_and_wide_grids_balance_tasks() {
    let el = graph500(10, 7).simplify();
    for (pr, pc) in [(1, 8), (8, 1), (2, 4), (4, 2)] {
        let r = count_triangles_summa(&el, SummaGrid::new(pr, pc), &TcConfig::paper());
        // Cyclic task distribution should stay within a reasonable
        // imbalance bound even on skewed shapes.
        assert!(r.task_imbalance() < 2.0, "{pr}x{pc}: {}", r.task_imbalance());
    }
}
