//! Kernel-strategy equivalence: every intersection strategy (auto,
//! merge, bitmap) must be *observationally identical* to the paper's
//! hash probe in everything but wall time — triangle counts, per-edge
//! supports, task counts, probe/lookup/row-mode statistics, all exactly
//! equal, on RMAT and Erdős–Rényi inputs (deformed with isolated
//! vertices and a maximum-degree hub), across every square rank count
//! and on rectangular SUMMA grids. Additionally, the `tct.kernel.*`
//! observability counters must partition the legacy lookup counter and
//! be present (and zero where a strategy never engages).

use std::sync::Mutex;

use proptest::prelude::*;
use tc_core::{
    try_count_per_edge, try_count_triangles, try_count_triangles_observed,
    try_count_triangles_summa, KernelStrategy, SummaGrid, TcConfig,
};
use tc_gen::er::gnm;
use tc_gen::{rmat, RmatParams};
use tc_graph::EdgeList;
use tc_mps::Observe;

/// The metrics recording gate is process-global; tests that open a
/// session must not overlap.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn mlock() -> std::sync::MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const STRATEGIES: [KernelStrategy; 4] =
    [KernelStrategy::Hash, KernelStrategy::Auto, KernelStrategy::Merge, KernelStrategy::Bitmap];

fn cfg_of(k: KernelStrategy) -> TcConfig {
    TcConfig::paper().with_kernel(k)
}

/// Adds `isolated` unreferenced vertices and, when `hub` is set, one
/// vertex adjacent to every original vertex (the maximum-degree case —
/// the row shape the bitmap strategy exists for).
fn deform(el: EdgeList, isolated: usize, hub: bool) -> EdgeList {
    let base = el.num_vertices;
    let mut edges = el.edges;
    let mut n = base + isolated;
    if hub {
        let h = n as u32;
        edges.extend((0..base as u32).map(|v| (v, h)));
        n += 1;
    }
    EdgeList::new(n, edges).simplify()
}

/// Runs every strategy on `el` at `p` ranks and asserts the full
/// deterministic output matches the hash oracle.
fn assert_strategies_equivalent(el: &EdgeList, p: usize) {
    let oracle = try_count_triangles(el, p, &cfg_of(KernelStrategy::Hash)).expect("hash run");
    for k in STRATEGIES {
        let r = try_count_triangles(el, p, &cfg_of(k)).expect("strategy run");
        assert_eq!(r.triangles, oracle.triangles, "{k} p={p}: triangles");
        assert_eq!(r.total_tasks(), oracle.total_tasks(), "{k} p={p}: tasks");
        assert_eq!(r.total_probes(), oracle.total_probes(), "{k} p={p}: probes");
        assert_eq!(r.total_lookups(), oracle.total_lookups(), "{k} p={p}: lookups");
        for (rank, (ra, rb)) in r.ranks.iter().zip(&oracle.ranks).enumerate() {
            assert_eq!(ra.local_triangles, rb.local_triangles, "{k} p={p} rank {rank}: local");
            assert_eq!(ra.tasks, rb.tasks, "{k} p={p} rank {rank}: tasks");
            assert_eq!(ra.probes, rb.probes, "{k} p={p} rank {rank}: probes");
            assert_eq!(ra.lookups, rb.lookups, "{k} p={p} rank {rank}: lookups");
            assert_eq!(ra.direct_rows, rb.direct_rows, "{k} p={p} rank {rank}: direct rows");
            assert_eq!(ra.probed_rows, rb.probed_rows, "{k} p={p} rank {rank}: probed rows");
        }
    }
}

#[test]
fn strategies_agree_on_rmat_with_hub() {
    let el = deform(rmat(8, 6, RmatParams::GRAPH500, 7).simplify(), 3, true);
    for p in [1usize, 4, 9, 16] {
        assert_strategies_equivalent(&el, p);
    }
}

#[test]
fn strategies_agree_on_erdos_renyi() {
    let el = deform(gnm(300, 1800, 21).simplify(), 5, false);
    for p in [1usize, 4, 9, 16] {
        assert_strategies_equivalent(&el, p);
    }
}

#[test]
fn strategies_agree_per_edge() {
    // Per-edge supports exercise count_shift_recording: the merge
    // visit path and the bitmap record loop must report exactly the
    // hits the hash loop reports.
    let el = deform(rmat(8, 5, RmatParams::GRAPH500, 33).simplify(), 2, true);
    for p in [1usize, 4, 9, 16] {
        let (ro, so) = try_count_per_edge(&el, p, &cfg_of(KernelStrategy::Hash)).expect("hash");
        for k in STRATEGIES {
            let (r, s) = try_count_per_edge(&el, p, &cfg_of(k)).expect("strategy");
            assert_eq!(r.triangles, ro.triangles, "{k} p={p}");
            assert_eq!(s, so, "{k} p={p}: per-edge supports diverged");
        }
    }
}

#[test]
fn strategies_agree_on_summa() {
    // SUMMA hashes with stride 1 and contiguous panels — the other
    // transform regime for the bitmap/merge candidate computation.
    let el = deform(rmat(8, 6, RmatParams::GRAPH500, 11).simplify(), 4, true);
    for (pr, pc) in [(1, 1), (2, 2), (2, 3), (3, 3), (4, 2)] {
        let grid = SummaGrid::new(pr, pc);
        let o = try_count_triangles_summa(&el, grid, &cfg_of(KernelStrategy::Hash)).expect("hash");
        for k in STRATEGIES {
            let r = try_count_triangles_summa(&el, grid, &cfg_of(k)).expect("strategy");
            assert_eq!(r.triangles, o.triangles, "{k} {pr}x{pc}: triangles");
            assert_eq!(r.total_tasks(), o.total_tasks(), "{k} {pr}x{pc}: tasks");
            assert_eq!(r.total_probes(), o.total_probes(), "{k} {pr}x{pc}: probes");
            assert_eq!(r.total_lookups(), o.total_lookups(), "{k} {pr}x{pc}: lookups");
        }
    }
}

/// Runs one strategy under a metrics session and returns (result,
/// summed kernel-counter map).
fn measured_run(el: &EdgeList, p: usize, k: KernelStrategy) -> (u64, u64, Vec<u64>) {
    let session = tc_metrics::MetricsSession::begin();
    let handle = session.handle();
    let obs = Observe { metrics: Some(&handle), ..Observe::none() };
    let r = try_count_triangles_observed(el, p, &cfg_of(k), obs).expect("run");
    let snap = session.finish();
    let sum = |name: &str| (0..p).map(|rank| snap.counter(rank, name).unwrap_or(0)).sum::<u64>();
    let kernel: Vec<u64> = tc_metrics::names::TCT_KERNEL.iter().map(|n| sum(n)).collect();
    (r.triangles, sum(tc_metrics::names::TCT_LOOKUPS), kernel)
}

#[test]
fn kernel_counters_partition_lookups_and_report_strategy_mix() {
    let _g = mlock();
    let el = deform(rmat(8, 6, RmatParams::GRAPH500, 5).simplify(), 0, true);
    let names = tc_metrics::names::TCT_KERNEL;
    let idx = |n: &str| names.iter().position(|&x| x == n).expect("kernel counter name");
    let (h_lk, m_lk, b_lk) = (
        idx(tc_metrics::names::TCT_KERNEL_HASH_LOOKUPS),
        idx(tc_metrics::names::TCT_KERNEL_MERGE_LOOKUPS),
        idx(tc_metrics::names::TCT_KERNEL_BITMAP_LOOKUPS),
    );
    for p in [1usize, 4, 9] {
        let mut triangles = Vec::new();
        for k in STRATEGIES {
            let (tri, lookups, kernel) = measured_run(&el, p, k);
            triangles.push(tri);
            // The strategy tallies partition the legacy counter exactly.
            assert_eq!(
                kernel[h_lk] + kernel[m_lk] + kernel[b_lk],
                lookups,
                "{k} p={p}: kernel lookup tallies must partition tct.lookups"
            );
            match k {
                KernelStrategy::Hash => {
                    assert_eq!(kernel[m_lk] + kernel[b_lk], 0, "p={p}: hash-only run");
                }
                KernelStrategy::Bitmap => {
                    assert!(
                        kernel[b_lk] > 0,
                        "p={p}: the hub graph must engage the bitmap strategy"
                    );
                }
                _ => {}
            }
        }
        assert!(triangles.windows(2).all(|w| w[0] == w[1]), "p={p}: counts diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs with random deformations, every square rank
    /// count: all strategies must agree with the hash oracle on the
    /// full deterministic output, including per-edge supports.
    #[test]
    fn strategies_agree_on_random_graphs(
        scale in 5u32..8,
        factor in 2usize..6,
        seed in 0u64..1_000,
        p_idx in 0usize..4,
        use_er in any::<bool>(),
        isolated in 0usize..6,
        hub in any::<bool>(),
    ) {
        let p = [1usize, 4, 9, 16][p_idx];
        let el = if use_er {
            let n = 1usize << scale;
            deform(gnm(n, n * factor, seed).simplify(), isolated, hub)
        } else {
            deform(rmat(scale, factor, RmatParams::GRAPH500, seed).simplify(), isolated, hub)
        };
        let oracle = try_count_triangles(&el, p, &cfg_of(KernelStrategy::Hash)).expect("hash");
        let (po, so) = try_count_per_edge(&el, p, &cfg_of(KernelStrategy::Hash)).expect("hash pe");
        prop_assert_eq!(po.triangles, oracle.triangles);
        for k in [KernelStrategy::Auto, KernelStrategy::Merge, KernelStrategy::Bitmap] {
            let r = try_count_triangles(&el, p, &cfg_of(k)).expect("strategy");
            prop_assert_eq!(r.triangles, oracle.triangles);
            prop_assert_eq!(r.total_tasks(), oracle.total_tasks());
            prop_assert_eq!(r.total_probes(), oracle.total_probes());
            prop_assert_eq!(r.total_lookups(), oracle.total_lookups());
            let (pr, s) = try_count_per_edge(&el, p, &cfg_of(k)).expect("strategy pe");
            prop_assert_eq!(pr.triangles, oracle.triangles);
            prop_assert_eq!(&s, &so);
        }
    }
}
