//! Structural invariants of the 2D decomposition, independent of the
//! triangle counts: conservation of edges across the redistribution,
//! block-placement laws, and the balance properties §5.1 argues for.

use tc_core::{count_triangles, count_triangles_default, TcConfig};
use tc_gen::{graph500, Preset};
use tc_graph::EdgeList;

#[test]
fn every_edge_becomes_exactly_one_task() {
    // Per-edge supports enumerate the tasks; their count must equal m
    // for every grid size.
    let el = graph500(9, 13).simplify();
    for p in [1usize, 4, 9, 25] {
        let (_, sup) = tc_core::count_per_edge(&el, p, &TcConfig::paper());
        assert_eq!(sup.len(), el.num_edges(), "p={p}");
        // And they are exactly the input edges.
        let edges: Vec<(u32, u32)> = sup.iter().map(|e| (e.u, e.v)).collect();
        assert_eq!(edges, el.edges, "p={p}");
    }
}

#[test]
fn cyclic_distribution_balances_tasks() {
    // §5.1: "a cell-by-cell cyclic distribution will tend to assign a
    // similar number of non-zeros (tasks) ... to each processor."
    // The paper measured < 6 % imbalance on its inputs; allow slack
    // for our smaller graphs but require the same order.
    let el = Preset::G500 { scale: 13 }.build(3);
    for p in [16usize, 25] {
        let r = count_triangles_default(&el, p);
        let imb = r.task_imbalance();
        assert!(imb < 1.35, "p={p}: task imbalance {imb}");
    }
}

#[test]
fn degree_ordering_beats_natural_order_for_balance() {
    // The cyclic distribution's balance argument leans on the degree
    // ordering; with a graph whose natural labels are adversarial
    // (heavy vertices clustered at one end), the pipeline must still
    // balance because it reorders internally.
    let n: u32 = 4096;
    let mut edges = Vec::new();
    let mut x = 7u64;
    // Dense head: vertices 0..64 form a near-clique.
    for u in 0..64u32 {
        for v in u + 1..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (x >> 33) % 3 != 0 {
                edges.push((u, v));
            }
        }
    }
    // Sparse tail ring.
    for u in 64..n {
        edges.push((u, (u + 1) % n));
    }
    let el = EdgeList::new(n as usize, edges).simplify();
    let r = count_triangles_default(&el, 16);
    assert!(r.task_imbalance() < 2.0, "imbalance {}", r.task_imbalance());
    let serial = tc_baselines::serial::count_default(&el);
    assert_eq!(r.triangles, serial);
}

#[test]
fn bytes_sent_scale_with_edges_not_quadratically() {
    // Preprocessing volume is O(m) per the §5.4 analysis; doubling the
    // scale (~2x the edges) must not 4x the bytes.
    let e1 = graph500(10, 5).simplify();
    let e2 = graph500(11, 5).simplify();
    let b1 = count_triangles_default(&e1, 16).total_bytes_sent() as f64;
    let b2 = count_triangles_default(&e2, 16).total_bytes_sent() as f64;
    let edge_ratio = e2.num_edges() as f64 / e1.num_edges() as f64;
    let byte_ratio = b2 / b1;
    assert!(
        byte_ratio < edge_ratio * 1.5,
        "bytes grew {byte_ratio:.2}x for {edge_ratio:.2}x edges"
    );
}

#[test]
fn shift_count_equals_grid_side() {
    let el = graph500(8, 1).simplify();
    for (p, q) in [(1usize, 1usize), (4, 2), (9, 3), (16, 4), (25, 5)] {
        let r = count_triangles_default(&el, p);
        for m in &r.ranks {
            assert_eq!(m.shift_compute.len(), q, "p={p}");
        }
    }
}

#[test]
fn unoptimized_configuration_does_more_work() {
    let el = graph500(10, 4).simplify();
    let opt = count_triangles(&el, 16, &TcConfig::paper());
    let raw = count_triangles(&el, 16, &TcConfig::unoptimized());
    assert_eq!(opt.triangles, raw.triangles);
    assert!(opt.total_lookups() <= raw.total_lookups());
    // Direct-hash rows only exist in the optimized run.
    let opt_direct: u64 = opt.ranks.iter().map(|m| m.direct_rows).sum();
    let raw_direct: u64 = raw.ranks.iter().map(|m| m.direct_rows).sum();
    assert!(opt_direct > 0);
    assert_eq!(raw_direct, 0);
}

#[test]
fn single_rank_sends_only_self_messages() {
    // p = 1: the pipeline must not require any remote traffic (all
    // alltoallv payloads are self-deliveries, which cost no sends).
    let el = graph500(9, 2).simplify();
    let r = count_triangles_default(&el, 1);
    assert_eq!(r.total_bytes_sent(), 0);
    assert_eq!(r.triangles, tc_baselines::serial::count_default(&el));
}
