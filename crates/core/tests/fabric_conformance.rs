//! Backend-conformance suite: the same counting pipelines on the
//! in-process fabric and on the multi-process socket fabric must be
//! *indistinguishable* — exact triangle counts, identical per-edge
//! supports, and identical per-rank deterministic counters (tasks,
//! probes, lookups, ops, logical bytes) — including under the PR 5
//! chaos soak shapes at 16 ranks.
//!
//! Each socket "process" is simulated by a thread holding its own
//! `SocketConfig`; all communication crosses real Unix-domain sockets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use tc_core::{
    try_count_per_edge, try_count_per_edge_socket, try_count_triangles, try_count_triangles_socket,
    try_count_triangles_summa, try_count_triangles_summa_socket, EdgeSupport, RankMetrics,
    SummaGrid, TcConfig,
};
use tc_gen::graph500;
use tc_graph::EdgeList;
use tc_mps::{FaultKind, FaultPlan, LinkFaults, MpsResult, SocketConfig, UniverseConfig};

static NEXT_MESH: AtomicUsize = AtomicUsize::new(0);

fn unix_endpoints(p: usize) -> Vec<String> {
    let mesh = NEXT_MESH.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    (0..p)
        .map(|r| {
            std::env::temp_dir()
                .join(format!("tcc-{pid}-{mesh}-{r}.sock"))
                .to_string_lossy()
                .into_owned()
        })
        .collect()
}

fn socket_cfg(rank: usize, peers: &[String], chaos: Option<&FaultPlan>) -> SocketConfig {
    SocketConfig {
        universe: UniverseConfig {
            recv_timeout: Some(Duration::from_secs(60)),
            chaos: chaos.cloned(),
            ..UniverseConfig::default()
        },
        ..SocketConfig::new(rank, peers.to_vec())
    }
}

/// Runs `f(rank_config)` once per rank, each on its own thread, and
/// returns the per-rank results in rank order.
fn run_mesh<T: Send>(
    p: usize,
    chaos: Option<&FaultPlan>,
    f: impl Fn(&SocketConfig) -> MpsResult<T> + Sync,
) -> Vec<T> {
    let peers = unix_endpoints(p);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let (f, peers) = (&f, &peers);
                s.spawn(move || f(&socket_cfg(rank, peers, chaos)))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join()
                    .expect("rank thread panicked")
                    .unwrap_or_else(|e| panic!("rank {rank}: {e}"))
            })
            .collect()
    })
}

/// Every deterministic per-rank quantity two backends must agree on.
/// Timings are excluded (wall/CPU time is not deterministic); logical
/// communication bytes are included — both backends run the same
/// message sequence, and the socket framing must not leak into the
/// logical counters.
fn rank_fingerprint(m: &RankMetrics) -> [u64; 9] {
    [
        m.tasks,
        m.probes,
        m.lookups,
        m.direct_rows,
        m.probed_rows,
        m.ppt_ops,
        m.tct_ops,
        m.local_triangles,
        m.bytes_sent,
    ]
}

fn small_graph() -> EdgeList {
    graph500(5, 7).simplify()
}

fn soak_graph() -> EdgeList {
    graph500(6, 42).simplify()
}

#[test]
fn cannon_4_ranks_conforms() {
    let el = small_graph();
    let cfg = TcConfig::paper();
    let reference = try_count_triangles(&el, 4, &cfg).expect("in-process run");
    assert!(reference.triangles > 0);
    let socket = run_mesh(4, None, |sock| try_count_triangles_socket(&el, &cfg, sock));
    for (rank, (t, m)) in socket.into_iter().enumerate() {
        assert_eq!(t, reference.triangles, "rank {rank}: triangle counts diverged");
        assert_eq!(
            rank_fingerprint(&m),
            rank_fingerprint(&reference.ranks[rank]),
            "rank {rank}: deterministic counters diverged across backends"
        );
    }
}

#[test]
fn cannon_16_ranks_conforms() {
    let el = soak_graph();
    let cfg = TcConfig::paper();
    let reference = try_count_triangles(&el, 16, &cfg).expect("in-process run");
    let socket = run_mesh(16, None, |sock| try_count_triangles_socket(&el, &cfg, sock));
    for (rank, (t, m)) in socket.into_iter().enumerate() {
        assert_eq!(t, reference.triangles, "rank {rank}: triangle counts diverged");
        assert_eq!(
            rank_fingerprint(&m),
            rank_fingerprint(&reference.ranks[rank]),
            "rank {rank}: deterministic counters diverged across backends"
        );
    }
}

#[test]
fn per_edge_supports_conform() {
    let el = small_graph();
    let cfg = TcConfig::paper();
    let (reference, ref_supports) = try_count_per_edge(&el, 4, &cfg).expect("in-process run");
    let socket = run_mesh(4, None, |sock| try_count_per_edge_socket(&el, &cfg, sock));
    let mut root_supports: Option<Vec<EdgeSupport>> = None;
    for (rank, (t, m, sup)) in socket.into_iter().enumerate() {
        assert_eq!(t, reference.triangles, "rank {rank}: triangle counts diverged");
        assert_eq!(rank_fingerprint(&m), rank_fingerprint(&reference.ranks[rank]));
        if rank == 0 {
            root_supports = Some(sup.expect("rank 0 gathers the supports"));
        } else {
            assert!(sup.is_none(), "only rank 0 should hold the support list");
        }
    }
    assert_eq!(
        root_supports.expect("rank 0 ran"),
        ref_supports,
        "per-edge supports diverged across backends"
    );
}

#[test]
fn summa_rectangular_grid_conforms() {
    let el = small_graph();
    let cfg = TcConfig::paper();
    let grid = SummaGrid::new(2, 3);
    let reference = try_count_triangles_summa(&el, grid, &cfg).expect("in-process run");
    let socket =
        run_mesh(grid.size(), None, |sock| try_count_triangles_summa_socket(&el, grid, &cfg, sock));
    for (rank, (t, m)) in socket.into_iter().enumerate() {
        assert_eq!(t, reference.triangles, "rank {rank}: triangle counts diverged");
        assert_eq!(
            rank_fingerprint(&m),
            rank_fingerprint(&reference.ranks[rank]),
            "rank {rank}: deterministic counters diverged across backends"
        );
    }
}

/// The PR 5 chaos-soak shapes, run over the socket wire at 16 ranks:
/// injected drops/reorders/duplicates on the *socket* transport must
/// be masked with exact counts and unchanged deterministic counters.
#[test]
fn chaos_soak_shapes_conform_at_16_ranks() {
    let el = soak_graph();
    let cfg = TcConfig::paper();
    let reference = try_count_triangles(&el, 16, &cfg).expect("clean in-process run");
    for kind in [FaultKind::Drop, FaultKind::Reorder, FaultKind::Duplicate] {
        for seed in [11u64, 33] {
            let prob = if kind == FaultKind::Drop { 0.1 } else { 0.2 };
            let mut faults = LinkFaults::only(kind, prob);
            faults.delay_max = Duration::from_micros(30);
            let plan = FaultPlan::new(seed).with_default(faults);
            let socket =
                run_mesh(16, Some(&plan), |sock| try_count_triangles_socket(&el, &cfg, sock));
            for (rank, (t, m)) in socket.into_iter().enumerate() {
                assert_eq!(
                    t, reference.triangles,
                    "{kind:?} seed {seed} rank {rank}: chaos changed the count"
                );
                assert_eq!(
                    rank_fingerprint(&m),
                    rank_fingerprint(&reference.ranks[rank]),
                    "{kind:?} seed {seed} rank {rank}: chaos leaked into the counters"
                );
            }
        }
    }
}
