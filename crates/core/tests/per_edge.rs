//! Per-edge triangle support correctness: the distributed accumulation
//! (with its three-way credit exchange) must match the serial
//! support computation edge for edge.

use tc_core::{count_per_edge, Enumeration, TcConfig};
use tc_gen::graph500;
use tc_graph::truss;
use tc_graph::EdgeList;

fn check(el: &EdgeList, p: usize, cfg: &TcConfig) {
    let serial = truss::edge_supports(el);
    let (r, sup) = count_per_edge(el, p, cfg);
    assert_eq!(sup.len(), el.num_edges(), "p={p}");
    let mut total3 = 0u64;
    for (e, (&(u, v), &s)) in sup.iter().zip(el.edges.iter().zip(&serial)) {
        assert_eq!((e.u, e.v), (u, v), "p={p}: edge order");
        assert_eq!(e.support, s, "p={p}: support of ({u},{v})");
        total3 += e.support;
    }
    // Each triangle contributes to exactly three edges.
    assert_eq!(total3, 3 * r.triangles, "p={p}");
}

#[test]
fn matches_serial_on_rmat() {
    let el = graph500(8, 5).simplify();
    for p in [1usize, 4, 9, 16] {
        check(&el, p, &TcConfig::paper());
    }
}

#[test]
fn works_under_both_enumerations() {
    let el = graph500(7, 2).simplify();
    check(&el, 9, &TcConfig::paper());
    check(&el, 9, &TcConfig::paper().with_enumeration(Enumeration::Ijk));
    check(&el, 4, &TcConfig::unoptimized());
}

#[test]
fn handles_triangle_free_and_tiny_graphs() {
    let star = EdgeList::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).simplify();
    check(&star, 4, &TcConfig::paper());
    check(&EdgeList::new(2, vec![(0, 1)]).simplify(), 4, &TcConfig::paper());
    let (_, sup) = count_per_edge(&EdgeList::empty(3), 4, &TcConfig::paper());
    assert!(sup.is_empty());
}

#[test]
fn supports_feed_truss_decomposition() {
    // End-to-end: distributed supports equal the peeler's starting
    // supports, so trussness computed from either must agree.
    let el = graph500(8, 11).simplify();
    let (_, sup) = count_per_edge(&el, 9, &TcConfig::paper());
    let d = truss::truss_decomposition(&el);
    assert_eq!(d.edges.len(), sup.len());
    for (e, &t) in sup.iter().zip(&d.trussness) {
        assert!(u64::from(t) <= e.support + 2, "({},{})", e.u, e.v);
    }
}
