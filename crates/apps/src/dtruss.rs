//! Distributed k-truss decomposition.
//!
//! The paper motivates its triangle-counting kernel as "an important
//! step in computing the k-truss decomposition of a graph" (§1); this
//! module closes that loop: a distributed-memory truss decomposition
//! running on the same message-passing substrate, with the triangle
//! supports computed by the same map-based set intersections.
//!
//! ## Algorithm
//!
//! AOP-style data placement (each rank owns a 1D block of the
//! degree-ordered vertices and replicates the adjacency of referenced
//! remote vertices once, up front), then level-by-level peeling with a
//! recompute-until-fixpoint inner loop:
//!
//! ```text
//! for k = 3, 4, … while edges remain alive:
//!   loop:
//!     recompute supports of alive owned edges (local intersections)
//!     dead := owned alive edges with support < k − 2
//!     if globally none: break        (fixpoint: survivors are ≥ k)
//!     mark dead, trussness = k − 1; broadcast deaths to every rank
//!     holding a copy of either endpoint's adjacency
//! ```
//!
//! The fixpoint formulation trades recomputation for simplicity and
//! obvious correctness (it needs no transactional decrement protocol);
//! supports are recomputed only for *alive* edges against *alive*
//! adjacencies, so the per-round cost shrinks as peeling progresses.
//! Results are validated against the serial bucket-queue peeler in
//! `tc_graph::truss`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use tc_graph::edgelist::EdgeList;
use tc_graph::vset::VertexSet;
use tc_graph::Block1D;
use tc_mps::{MpsResult, Universe};

use crate::adjstore;

/// Result of a distributed truss decomposition.
#[derive(Debug, Clone)]
pub struct DtrussResult {
    /// Edges `(u, v)` with `u < v`, sorted — same order as the
    /// simplified input.
    pub edges: Vec<(u32, u32)>,
    /// Trussness per edge, parallel to `edges`.
    pub trussness: Vec<u32>,
    /// Maximum trussness.
    pub max_truss: u32,
    /// Peeling rounds executed (support recomputations).
    pub rounds: u32,
    /// Wall time of the whole decomposition (slowest rank).
    pub time: Duration,
}

/// Runs the distributed truss decomposition on `p` ranks.
///
/// # Panics
///
/// Panics if `el` is not simplified.
pub fn truss_decomposition_dist(el: &EdgeList, p: usize) -> DtrussResult {
    match try_truss_decomposition_dist(el, p) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`truss_decomposition_dist`]: a crashed, hung,
/// or diverged rank surfaces as an [`tc_mps::MpsError`] instead of a
/// panic.
///
/// # Panics
///
/// Panics if `el` is not simplified.
pub fn try_truss_decomposition_dist(el: &EdgeList, p: usize) -> MpsResult<DtrussResult> {
    assert!(el.is_simple(), "truss decomposition needs a simplified graph");
    // Degree-ordering up front mirrors the counting pipeline and keeps
    // the per-edge intersection lists short.
    let (ordered, perm) = tc_graph::degree::relabel_by_degree(el.clone());
    let n = ordered.num_vertices;
    let csr = tc_graph::Csr::from_edge_list(&ordered);
    let block = Block1D::new(n, p);

    let outs = Universe::try_run(p, |comm| {
        let rank = comm.rank();
        let t0 = Instant::now();
        let (lo, hi) = block.range(rank);

        // ---- setup: local + ghost adjacency (AOP pattern) ----
        let store = adjstore::try_build_from_csr(comm, &csr, block)?;

        // Owned edges: (u, v) with u owned here, u < v.
        let mut owned: Vec<(u32, u32)> = Vec::new();
        for u in lo as u32..hi as u32 {
            for &v in store.neighbors(u) {
                if v > u {
                    owned.push((u, v));
                }
            }
        }
        let mut alive = vec![true; owned.len()];
        let mut trussness = vec![2u32; owned.len()];
        // Dead-edge flags for *all* edges this rank's intersections can
        // touch, keyed by (min, max).
        let mut dead_edges: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::new();
        let edge_index: HashMap<(u32, u32), usize> =
            owned.iter().copied().enumerate().map(|(i, e)| (e, i)).collect();

        let max_deg = store.max_row_len();
        let mut set = VertexSet::with_capacity(max_deg);
        let mut rounds = 0u32;
        let mut k = 3u32;
        let mut alive_count = comm.allreduce_sum_u64(owned.len() as u64)?;

        while alive_count > 0 {
            loop {
                rounds += 1;
                // Recompute supports of alive owned edges against the
                // alive subgraph.
                let mut deaths: Vec<(u32, u32)> = Vec::new();
                for (i, &(u, v)) in owned.iter().enumerate() {
                    if !alive[i] {
                        continue;
                    }
                    // |N⁺(u) ∩ N⁺(v)| over alive edges: hash u's alive
                    // neighbours, probe with v's, checking that both
                    // wing edges are alive.
                    set.clear();
                    for &w in store.neighbors(u) {
                        if w != v && !dead_edges.contains(&(u.min(w), u.max(w))) {
                            set.insert(w);
                        }
                    }
                    let mut support = 0u32;
                    for &w in store.neighbors(v) {
                        if w != u && set.contains(w) && !dead_edges.contains(&(v.min(w), v.max(w)))
                        {
                            support += 1;
                        }
                    }
                    if support < k - 2 {
                        deaths.push((u, v));
                    }
                }
                // Fixpoint check across all ranks.
                let global_deaths = comm.allreduce_sum_u64(deaths.len() as u64)?;
                if global_deaths == 0 {
                    break;
                }
                // Apply and broadcast the deaths to every rank holding
                // a copy of either endpoint's adjacency.
                let mut sends: Vec<Vec<[u32; 2]>> = (0..p).map(|_| Vec::new()).collect();
                for &(u, v) in &deaths {
                    let i = edge_index[&(u, v)];
                    alive[i] = false;
                    trussness[i] = k - 1;
                    let mut stamp = vec![false; p];
                    for &w in store.neighbors(u).iter().chain(store.neighbors(v)) {
                        let dst = block.owner(w);
                        if !stamp[dst] {
                            stamp[dst] = true;
                            sends[dst].push([u, v]);
                        }
                    }
                    for dst in [block.owner(u), block.owner(v)] {
                        if !stamp[dst] {
                            stamp[dst] = true;
                            sends[dst].push([u, v]);
                        }
                    }
                }
                for msg in comm.alltoallv(&sends)? {
                    for [u, v] in msg {
                        dead_edges.insert((u, v));
                    }
                }
            }
            // Survivors of level k have trussness ≥ k.
            let mut survivors = 0u64;
            for (i, a) in alive.iter().enumerate() {
                if *a {
                    trussness[i] = k;
                    survivors += 1;
                }
            }
            alive_count = comm.allreduce_sum_u64(survivors)?;
            k += 1;
        }

        // Gather (edge, trussness) triples on rank 0.
        let triples: Vec<[u32; 3]> =
            owned.iter().zip(&trussness).map(|(&(u, v), &t)| [u, v, t]).collect();
        let gathered = comm.gatherv(0, &triples)?;
        Ok((gathered, rounds, t0.elapsed()))
    })?;

    // Translate back to input labels on the gathered result.
    let inv = tc_graph::degree::invert_permutation(&perm);
    let mut edges_trussness: Vec<((u32, u32), u32)> = Vec::with_capacity(el.num_edges());
    let mut rounds = 0;
    let mut time = Duration::ZERO;
    for (gathered, r, t) in outs {
        rounds = rounds.max(r);
        time = time.max(t);
        if let Some(parts) = gathered {
            for part in parts {
                for [u, v, tr] in part {
                    let (ou, ov) = (inv[u as usize], inv[v as usize]);
                    edges_trussness.push(((ou.min(ov), ou.max(ov)), tr));
                }
            }
        }
    }
    edges_trussness.sort_unstable_by_key(|&(e, _)| e);
    let (edges, trussness): (Vec<_>, Vec<_>) = edges_trussness.into_iter().unzip();
    let max_truss = trussness.iter().copied().max().unwrap_or(0);
    Ok(DtrussResult { edges, trussness, max_truss, rounds, time })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::truss;

    fn check_matches_serial(el: &EdgeList, p: usize) {
        let serial = truss::truss_decomposition(el);
        let dist = truss_decomposition_dist(el, p);
        assert_eq!(dist.edges, serial.edges, "p={p}: edge sets differ");
        assert_eq!(dist.trussness, serial.trussness, "p={p}: trussness differs");
        assert_eq!(dist.max_truss, serial.max_truss());
    }

    #[test]
    fn k5_everywhere() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        let el = EdgeList::new(5, edges).simplify();
        for p in [1, 2, 4] {
            check_matches_serial(&el, p);
        }
    }

    #[test]
    fn mixed_structure() {
        // K4 + pendant triangle + tail (trussness levels 4, 3, 2).
        let el = EdgeList::new(
            8,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3), // K4
                (3, 4),
                (3, 5),
                (4, 5), // triangle
                (5, 6),
                (6, 7), // tail
            ],
        )
        .simplify();
        for p in [1, 3, 5] {
            check_matches_serial(&el, p);
        }
    }

    #[test]
    fn random_graphs_match_serial() {
        for seed in [1u64, 7, 23] {
            let el = tc_gen::graph500(7, seed).simplify();
            check_matches_serial(&el, 4);
        }
    }

    #[test]
    fn triangle_free_graph_is_all_twos() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).simplify();
        let d = truss_decomposition_dist(&el, 3);
        assert!(d.trussness.iter().all(|&t| t == 2));
        assert_eq!(d.max_truss, 2);
    }

    #[test]
    fn empty_graph() {
        let d = truss_decomposition_dist(&EdgeList::empty(4), 2);
        assert!(d.edges.is_empty());
        assert_eq!(d.max_truss, 0);
    }
}
