//! Ghost replication (AOP-style placement) for the mutable
//! [`AdjStore`].
//!
//! The store itself now lives in the graph substrate
//! ([`tc_graph::adj`], re-exported here for compatibility) so that
//! mutation-heavy consumers like the always-on analytics service can
//! use it without a dependency on the message-passing layer. What
//! remains here is the communication-coupled part: the personalized
//! all-to-all of Arifuzzaman et al.'s AOP that pushes each owned row
//! to every rank holding one of its neighbours, delivered into the
//! store as ghost rows.

pub use tc_graph::AdjStore;

use tc_graph::{Block1D, Csr};
use tc_mps::{Comm, MpsResult};

/// Builds a ghost-replicated store from this rank's block of the
/// shared input CSR: one personalized all-to-all pushes each owned row
/// to every rank that holds one of its neighbours.
///
/// # Panics
///
/// Panics if the exchange fails (a peer died or timed out); use
/// [`try_build_from_csr`] to handle that as an error.
pub fn build_from_csr(comm: &Comm, csr: &Csr, block: Block1D) -> AdjStore {
    match try_build_from_csr(comm, csr, block) {
        Ok(store) => store,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`build_from_csr`].
///
/// Wire format per destination: repeated `[v, len, row...]`. Declared
/// lengths come off the wire, so row materialization respects the
/// capped-preallocation discipline of [`tc_graph::adj::PREALLOC_CAP`].
pub fn try_build_from_csr(comm: &Comm, csr: &Csr, block: Block1D) -> MpsResult<AdjStore> {
    let p = comm.size();
    let rank = comm.rank();
    let (lo, hi) = block.range(rank);
    let mut sends: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
    let mut stamp = vec![usize::MAX; p];
    for v in lo as u32..hi as u32 {
        let row = csr.neighbors(v);
        for &w in row {
            let dst = block.owner(w);
            if dst != rank && stamp[dst] != v as usize {
                stamp[dst] = v as usize;
                let buf = &mut sends[dst];
                buf.push(v);
                buf.push(row.len() as u32);
                buf.extend_from_slice(row);
            }
        }
    }
    let recvd = comm.alltoallv(&sends)?;
    drop(sends);
    let mut store = AdjStore::from_csr_block(csr, lo, hi);
    for msg in &recvd {
        let mut at = 0;
        while at < msg.len() {
            let (v, len) = (msg[at], msg[at + 1] as usize);
            store.set_ghost(v, msg[at + 2..at + 2 + len].to_vec());
            at += 2 + len;
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::EdgeList;
    use tc_mps::Universe;

    #[test]
    fn ghosts_cover_all_referenced_vertices() {
        let el = tc_gen::graph500(7, 3).simplify();
        let csr = Csr::from_edge_list(&el);
        let n = csr.num_vertices();
        let p = 4;
        let block = Block1D::new(n, p);
        let ok = Universe::run(p, |comm| {
            let store = build_from_csr(comm, &csr, block);
            let (lo, hi) = block.range(comm.rank());
            for v in lo as u32..hi as u32 {
                assert!(store.owns(v));
                for &w in csr.neighbors(v) {
                    // Every referenced vertex must be resolvable and
                    // agree with the global adjacency.
                    assert_eq!(store.neighbors(w), csr.neighbors(w), "vertex {w}");
                }
            }
            store.max_row_len() <= csr.max_degree()
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let el = tc_gen::graph500(6, 1).simplify();
        let csr = Csr::from_edge_list(&el);
        let block = Block1D::new(csr.num_vertices(), 1);
        let ghost_entries =
            Universe::run(1, |comm| build_from_csr(comm, &csr, block).ghost_entries());
        assert_eq!(ghost_entries, vec![0]);
    }

    #[test]
    #[should_panic(expected = "neither owned nor ghosted")]
    fn unreferenced_remote_vertex_panics() {
        // Two isolated cliques owned by different ranks: rank 0 never
        // references rank 1's vertices.
        let el = EdgeList::new(8, vec![(0, 1), (0, 2), (1, 2), (5, 6), (5, 7), (6, 7)]).simplify();
        let csr = Csr::from_edge_list(&el);
        let block = Block1D::new(8, 2);
        Universe::run(2, |comm| {
            let store = build_from_csr(comm, &csr, block);
            if comm.rank() == 0 {
                let _ = store.neighbors(7);
            }
        });
    }

    #[test]
    fn replicated_store_accepts_mutation() {
        // The promoted store is mutable: a rank can apply edge churn
        // to its owned rows after replication.
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (3, 4)]).simplify();
        let csr = Csr::from_edge_list(&el);
        let block = Block1D::new(6, 2);
        let ok = Universe::run(2, |comm| {
            let mut store = build_from_csr(comm, &csr, block);
            let (lo, _) = block.range(comm.rank());
            let u = lo as u32;
            let before = store.neighbors(u).len();
            store.insert(u, (u + 1) % 6).unwrap();
            store.neighbors(u).len() >= before
        });
        assert!(ok.iter().all(|&b| b));
    }
}
