//! Overlapping (ghost-replicated) adjacency storage.
//!
//! The communication-avoiding data placement of Arifuzzaman et al.'s
//! AOP — each rank stores its 1D block of vertices *plus* the
//! adjacency lists of every remote vertex its edges reference —
//! extracted as a reusable building block. `tc_baselines::aop1d` uses
//! the oriented variant inline; applications that need *full*
//! (symmetric) neighbourhoods, like the distributed truss peeler,
//! build this store once and then work without further adjacency
//! communication.

use std::collections::HashMap;

use tc_graph::{Block1D, Csr};
use tc_mps::{Comm, MpsResult};

/// Per-rank adjacency: owned rows (views into the shared input CSR)
/// plus ghost rows replicated from remote owners.
#[derive(Debug)]
pub struct AdjStore<'a> {
    csr: &'a Csr,
    lo: u32,
    hi: u32,
    ghosts: HashMap<u32, Vec<u32>>,
    max_row: usize,
}

impl<'a> AdjStore<'a> {
    /// Builds the store: one personalized all-to-all pushes each owned
    /// row to every rank that holds one of its neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the exchange fails (a peer died or timed out); use
    /// [`AdjStore::try_build_from_csr`] to handle that as an error.
    pub fn build_from_csr(comm: &Comm, csr: &'a Csr, block: Block1D) -> Self {
        match Self::try_build_from_csr(comm, csr, block) {
            Ok(store) => store,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`AdjStore::build_from_csr`].
    pub fn try_build_from_csr(comm: &Comm, csr: &'a Csr, block: Block1D) -> MpsResult<Self> {
        let p = comm.size();
        let rank = comm.rank();
        let (lo, hi) = block.range(rank);
        let mut sends: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
        let mut stamp = vec![usize::MAX; p];
        for v in lo as u32..hi as u32 {
            let row = csr.neighbors(v);
            for &w in row {
                let dst = block.owner(w);
                if dst != rank && stamp[dst] != v as usize {
                    stamp[dst] = v as usize;
                    let buf = &mut sends[dst];
                    buf.push(v);
                    buf.push(row.len() as u32);
                    buf.extend_from_slice(row);
                }
            }
        }
        let recvd = comm.alltoallv(&sends)?;
        drop(sends);
        let mut ghosts = HashMap::new();
        let mut max_row = (lo..hi).map(|v| csr.degree(v as u32)).max().unwrap_or(0);
        for msg in &recvd {
            let mut at = 0;
            while at < msg.len() {
                let (v, len) = (msg[at], msg[at + 1] as usize);
                max_row = max_row.max(len);
                ghosts.insert(v, msg[at + 2..at + 2 + len].to_vec());
                at += 2 + len;
            }
        }
        Ok(Self { csr, lo: lo as u32, hi: hi as u32, ghosts, max_row })
    }

    /// Sorted full adjacency of `v` — owned or ghost.
    ///
    /// # Panics
    ///
    /// Panics if `v` is remote and was never referenced by an owned
    /// edge (such a vertex cannot appear in this rank's computations).
    pub fn neighbors(&self, v: u32) -> &[u32] {
        if v >= self.lo && v < self.hi {
            self.csr.neighbors(v)
        } else {
            self.ghosts
                .get(&v)
                .unwrap_or_else(|| panic!("vertex {v} is neither owned nor ghosted"))
                .as_slice()
        }
    }

    /// Whether `v` is owned by this rank.
    pub fn owns(&self, v: u32) -> bool {
        v >= self.lo && v < self.hi
    }

    /// Longest row in the store (sizes intersection sets).
    pub fn max_row_len(&self) -> usize {
        self.max_row
    }

    /// Total ghost entries replicated (the memory-overhead metric).
    pub fn ghost_entries(&self) -> usize {
        self.ghosts.values().map(|g| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::EdgeList;
    use tc_mps::Universe;

    #[test]
    fn ghosts_cover_all_referenced_vertices() {
        let el = tc_gen::graph500(7, 3).simplify();
        let csr = Csr::from_edge_list(&el);
        let n = csr.num_vertices();
        let p = 4;
        let block = Block1D::new(n, p);
        let ok = Universe::run(p, |comm| {
            let store = AdjStore::build_from_csr(comm, &csr, block);
            let (lo, hi) = block.range(comm.rank());
            for v in lo as u32..hi as u32 {
                assert!(store.owns(v));
                for &w in csr.neighbors(v) {
                    // Every referenced vertex must be resolvable and
                    // agree with the global adjacency.
                    assert_eq!(store.neighbors(w), csr.neighbors(w), "vertex {w}");
                }
            }
            store.max_row_len() <= csr.max_degree()
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let el = tc_gen::graph500(6, 1).simplify();
        let csr = Csr::from_edge_list(&el);
        let block = Block1D::new(csr.num_vertices(), 1);
        let ghost_entries =
            Universe::run(1, |comm| AdjStore::build_from_csr(comm, &csr, block).ghost_entries());
        assert_eq!(ghost_entries, vec![0]);
    }

    #[test]
    #[should_panic(expected = "neither owned nor ghosted")]
    fn unreferenced_remote_vertex_panics() {
        // Two isolated cliques owned by different ranks: rank 0 never
        // references rank 1's vertices.
        let el = EdgeList::new(8, vec![(0, 1), (0, 2), (1, 2), (5, 6), (5, 7), (6, 7)]).simplify();
        let csr = Csr::from_edge_list(&el);
        let block = Block1D::new(8, 2);
        Universe::run(2, |comm| {
            let store = AdjStore::build_from_csr(comm, &csr, block);
            if comm.rank() == 0 {
                let _ = store.neighbors(7);
            }
        });
    }
}
