//! # tc-apps — distributed applications on the counting substrate
//!
//! The paper's §1 motivates triangle counting as the inner kernel of
//! larger analytics; this crate builds those analytics on the same
//! message-passing substrate:
//!
//! - [`adjstore`] — reusable ghost-replicated (AOP-style) adjacency
//!   placement.
//! - [`dtruss`] — distributed k-truss decomposition via level peeling
//!   with recompute-until-fixpoint rounds, validated against the
//!   serial bucket-queue peeler.

#![warn(missing_docs)]

pub mod adjstore;
pub mod dtruss;

pub use adjstore::AdjStore;
pub use dtruss::{truss_decomposition_dist, DtrussResult};
