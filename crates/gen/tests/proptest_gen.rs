//! Property tests of the generators: determinism, bounds, and the
//! degree-shape contracts the presets promise.

use proptest::prelude::*;
use tc_gen::{graph500, rmat, watts_strogatz, Preset, RmatParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rmat_bounds_and_determinism(scale in 3u32..10, ef in 1usize..8, seed in any::<u64>()) {
        let a = rmat(scale, ef, RmatParams::GRAPH500, seed);
        let b = rmat(scale, ef, RmatParams::GRAPH500, seed);
        prop_assert_eq!(&a, &b);
        let n = 1usize << scale;
        prop_assert_eq!(a.num_vertices, n);
        prop_assert_eq!(a.num_edges(), ef * n);
        prop_assert!(a.edges.iter().all(|&(u, v)| (u as usize) < n && (v as usize) < n));
        // Simplification never grows the edge set.
        prop_assert!(a.simplify().num_edges() <= ef * n);
    }

    #[test]
    fn er_density_close_to_requested(scale in 8u32..12, seed in any::<u64>()) {
        // Sparse regime: m/C(n,2) <= 6.3 %, so duplicate collisions
        // (birthday effect) cost at most a few percent of the samples.
        let n = 1usize << scale;
        let m = 8 * n;
        let el = tc_gen::er::gnm(n, m, seed).simplify();
        prop_assert!(el.num_edges() > m * 9 / 10, "{} of {m}", el.num_edges());
        prop_assert!(el.num_edges() <= m);
    }

    #[test]
    fn ws_lattice_degree_regular(k in 1usize..5, seed in any::<u64>()) {
        let n = 12 * k; // comfortably above 2k+1
        let el = watts_strogatz(n, k, 0.0, seed).simplify();
        prop_assert!(el.degrees().iter().all(|&d| d as usize == 2 * k));
    }

    #[test]
    fn preset_names_roundtrip(scale in 3u32..20) {
        for p in [
            Preset::G500 { scale },
            Preset::TwitterLike { scale },
            Preset::FriendsterLike { scale },
        ] {
            prop_assert_eq!(Preset::parse(&p.name()), Some(p));
            prop_assert_eq!(p.scale(), scale);
        }
    }

    #[test]
    fn g500_skew_holds_across_seeds(seed in any::<u64>()) {
        let el = graph500(9, seed).simplify();
        let deg = el.degrees();
        let n = deg.len();
        let head: u64 = deg[..n / 4].iter().map(|&d| d as u64).sum();
        let tail: u64 = deg[3 * n / 4..].iter().map(|&d| d as u64).sum();
        prop_assert!(head > tail, "head {head} <= tail {tail}");
    }
}
