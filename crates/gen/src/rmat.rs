//! Graph500-style RMAT (recursive-matrix / Kronecker) generator.
//!
//! The paper's synthetic inputs g500-s26 … g500-s29 "were generated
//! using the graph500 generator … these follow the RMAT graph
//! specifications" (§6.1). This is that generator: `2^scale` vertices,
//! `edgefactor · 2^scale` edge samples, each sample drawn by `scale`
//! recursive quadrant choices with probabilities `(a, b, c, d)`;
//! Graph500 fixes `(0.57, 0.19, 0.19, 0.05)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tc_graph::edgelist::{EdgeList, VertexId};

/// RMAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl RmatParams {
    /// Graph500 reference parameters (d = 0.05 implied).
    pub const GRAPH500: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19 };

    /// Implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates that the probabilities form a distribution.
    pub fn validate(&self) {
        assert!(
            self.a > 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d() >= -1e-12,
            "RMAT probabilities must be non-negative and sum to at most 1"
        );
    }
}

/// Generates a raw RMAT edge list (duplicates and self loops included,
/// as emitted by the reference generator; callers `simplify()`).
///
/// Deterministic for a given `(scale, edge_factor, params, seed)`.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> EdgeList {
    params.validate();
    assert!(scale <= 31, "scale {scale} would overflow u32 vertex ids");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5bd1_e995_9e37_79b9);
    let ab = params.a + params.b;
    let a_norm_top = if ab > 0.0 { params.a / ab } else { 0.0 };
    let cd = params.c + params.d();
    let c_norm_bottom = if cd > 0.0 { params.c / cd } else { 0.0 };

    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let mut u: u64 = 0;
        let mut v: u64 = 0;
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            // First choose top/bottom half (row bit), then left/right
            // (column bit) conditioned on it.
            let top = rng.random::<f64>() < ab;
            let left = if top {
                rng.random::<f64>() < a_norm_top
            } else {
                rng.random::<f64>() < c_norm_bottom
            };
            if !top {
                u |= 1;
            }
            if !left {
                v |= 1;
            }
        }
        edges.push((u as VertexId, v as VertexId));
    }
    EdgeList::new(n, edges)
}

/// Graph500 preset: RMAT with the reference parameters and the
/// standard edge factor 16 (the paper's g500-sNN inputs).
pub fn graph500(scale: u32, seed: u64) -> EdgeList {
    rmat(scale, 16, RmatParams::GRAPH500, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_volume() {
        let el = rmat(8, 4, RmatParams::GRAPH500, 1);
        assert_eq!(el.num_vertices, 256);
        assert_eq!(el.num_edges(), 1024);
        assert!(el.edges.iter().all(|&(u, v)| u < 256 && v < 256));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(6, 8, RmatParams::GRAPH500, 42);
        let b = rmat(6, 8, RmatParams::GRAPH500, 42);
        let c = rmat(6, 8, RmatParams::GRAPH500, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_produces_heavy_head() {
        // With Graph500 params, low-id vertices should be much hotter
        // than high-id ones after simplification.
        let el = graph500(10, 7).simplify();
        let deg = el.degrees();
        let n = deg.len();
        let head: u64 = deg[..n / 8].iter().map(|&d| d as u64).sum();
        let tail: u64 = deg[7 * n / 8..].iter().map(|&d| d as u64).sum();
        assert!(head > tail * 4, "head {head} tail {tail}");
    }

    #[test]
    fn uniform_params_are_balanced() {
        let p = RmatParams { a: 0.25, b: 0.25, c: 0.25 };
        let el = rmat(10, 8, p, 3).simplify();
        let deg = el.degrees();
        let n = deg.len();
        let head: u64 = deg[..n / 2].iter().map(|&d| d as u64).sum();
        let tail: u64 = deg[n / 2..].iter().map(|&d| d as u64).sum();
        let ratio = head as f64 / tail.max(1) as f64;
        assert!(ratio > 0.8 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn rejects_bad_params() {
        rmat(4, 1, RmatParams { a: 0.9, b: 0.9, c: 0.9 }, 0);
    }

    #[test]
    fn scale_zero_is_single_vertex() {
        let el = rmat(0, 4, RmatParams::GRAPH500, 0);
        assert_eq!(el.num_vertices, 1);
        // All samples are (0,0) self loops; simplification empties it.
        assert_eq!(el.simplify().num_edges(), 0);
    }
}
