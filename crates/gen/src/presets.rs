//! Dataset presets mirroring the paper's Table 1 at laptop scale.
//!
//! | Paper dataset | Stand-in | Rationale |
//! |---|---|---|
//! | g500-s26 … s29 | `g500-sNN` (any scale) | same Graph500 RMAT generator, smaller scale |
//! | twitter | `twitter-like` | preferential attachment: heavy skew, triangle-rich |
//! | friendster | `friendster-like` | uniform random: wedge-rich, triangle-poor |
//!
//! The paper generates its synthetic inputs in-process "prior to
//! calling our triangle counting routine. This way, we avoid reading
//! the big graphs from the disk" (§6.1) — [`build`] does the same.

use tc_graph::EdgeList;

use crate::ba::barabasi_albert;
use crate::er::gnm;
use crate::rmat::graph500;

/// Default seed used by the experiment harness.
pub const DEFAULT_SEED: u64 = 42;

/// A parsed dataset specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Graph500 RMAT at the given scale (`n = 2^scale`, edge factor 16).
    G500 {
        /// log2 of the vertex count.
        scale: u32,
    },
    /// Skewed, triangle-rich social graph (`n = 2^scale`, ~28 edges/vertex).
    TwitterLike {
        /// log2 of the vertex count.
        scale: u32,
    },
    /// Uniform, triangle-poor graph (`n = 2^scale`, 15 edges/vertex sampled).
    FriendsterLike {
        /// log2 of the vertex count.
        scale: u32,
    },
}

impl Preset {
    /// Parses names like `g500-s16`, `twitter-like-14`, `friendster-like-14`.
    pub fn parse(name: &str) -> Option<Preset> {
        if let Some(s) = name.strip_prefix("g500-s") {
            return s.parse().ok().map(|scale| Preset::G500 { scale });
        }
        if let Some(s) = name.strip_prefix("twitter-like-") {
            return s.parse().ok().map(|scale| Preset::TwitterLike { scale });
        }
        if let Some(s) = name.strip_prefix("friendster-like-") {
            return s.parse().ok().map(|scale| Preset::FriendsterLike { scale });
        }
        None
    }

    /// Canonical name (inverse of [`Preset::parse`]).
    pub fn name(&self) -> String {
        match self {
            Preset::G500 { scale } => format!("g500-s{scale}"),
            Preset::TwitterLike { scale } => format!("twitter-like-{scale}"),
            Preset::FriendsterLike { scale } => format!("friendster-like-{scale}"),
        }
    }

    /// log2 of the vertex count.
    pub fn scale(&self) -> u32 {
        match *self {
            Preset::G500 { scale }
            | Preset::TwitterLike { scale }
            | Preset::FriendsterLike { scale } => scale,
        }
    }

    /// Generates the dataset (already simplified to an undirected
    /// simple graph). Deterministic per `(preset, seed)`.
    pub fn build(&self, seed: u64) -> EdgeList {
        match *self {
            Preset::G500 { scale } => graph500(scale, seed).simplify(),
            // Densities follow Table 1: twitter averages ~58 edges per
            // vertex (attach 28 → mean degree ≈ 56), friendster ~30
            // (15 samples per vertex → mean degree ≈ 30).
            Preset::TwitterLike { scale } => barabasi_albert(1usize << scale, 28, seed).simplify(),
            Preset::FriendsterLike { scale } => {
                let n = 1usize << scale;
                gnm(n, 15 * n, seed).simplify()
            }
        }
    }
}

/// The six-dataset testbed of Table 1, scaled so the *largest* g500
/// instance has `2^max_scale` vertices (the paper spans four g500
/// scales; we keep that structure).
pub fn table1_testbed(max_scale: u32) -> Vec<Preset> {
    assert!(max_scale >= 3, "need at least scale 3");
    vec![
        Preset::TwitterLike { scale: max_scale.saturating_sub(1) },
        Preset::FriendsterLike { scale: max_scale },
        Preset::G500 { scale: max_scale - 3 },
        Preset::G500 { scale: max_scale - 2 },
        Preset::G500 { scale: max_scale - 1 },
        Preset::G500 { scale: max_scale },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for name in ["g500-s16", "twitter-like-12", "friendster-like-9"] {
            let p = Preset::parse(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert_eq!(Preset::parse("g500-s16").unwrap(), Preset::G500 { scale: 16 });
        assert!(Preset::parse("unknown").is_none());
        assert!(Preset::parse("g500-sXX").is_none());
    }

    #[test]
    fn build_is_simplified_and_deterministic() {
        let p = Preset::G500 { scale: 8 };
        let a = p.build(1);
        assert!(a.is_simple());
        assert_eq!(a, p.build(1));
    }

    #[test]
    fn testbed_has_six_datasets() {
        let tb = table1_testbed(12);
        assert_eq!(tb.len(), 6);
        assert_eq!(tb[5], Preset::G500 { scale: 12 });
    }

    #[test]
    fn friendster_like_has_fewer_triangle_closures_than_twitter_like() {
        // Cheap proxy: transitivity-relevant shape — twitter-like must
        // have much higher max degree relative to average.
        let t = Preset::TwitterLike { scale: 10 }.build(3);
        let f = Preset::FriendsterLike { scale: 10 }.build(3);
        let tmax = *t.degrees().iter().max().unwrap() as f64;
        let fmax = *f.degrees().iter().max().unwrap() as f64;
        assert!(tmax > 2.0 * fmax, "twitter max {tmax} friendster max {fmax}");
    }
}
