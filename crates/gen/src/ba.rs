//! Barabási–Albert preferential-attachment generator.
//!
//! Produces power-law degree distributions with substantial clustering
//! around old hubs — the twitter-like regime (the paper attributes
//! twitter's higher per-rank work to exactly this shape, §7.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tc_graph::edgelist::{EdgeList, VertexId};

/// Grows a graph to `n` vertices, attaching each new vertex to
/// `attach` existing vertices chosen proportionally to degree (via the
/// repeated-endpoint urn). Deterministic per seed.
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> EdgeList {
    assert!(n <= u32::MAX as usize, "vertex count exceeds u32");
    assert!(attach >= 1, "each new vertex must attach at least once");
    let m0 = attach + 1;
    if n <= m0 {
        // Too small to grow: return a clique on n vertices.
        let mut edges = Vec::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                edges.push((u, v));
            }
        }
        return EdgeList::new(n, edges);
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc2b2_ae3d_27d4_eb4f);
    // Urn holds each endpoint once per incident edge; sampling from it
    // is degree-proportional.
    let mut urn: Vec<VertexId> = Vec::with_capacity(2 * attach * n);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(attach * n);
    // Seed clique on m0 vertices.
    for u in 0..m0 as VertexId {
        for v in u + 1..m0 as VertexId {
            edges.push((u, v));
            urn.push(u);
            urn.push(v);
        }
    }
    for new in m0 as VertexId..n as VertexId {
        let mut targets = Vec::with_capacity(attach);
        while targets.len() < attach {
            let t = urn[rng.random_range(0..urn.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            edges.push((t, new));
            urn.push(t);
            urn.push(new);
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_growth() {
        let n = 500;
        let attach = 3;
        let el = barabasi_albert(n, attach, 11).simplify();
        let m0 = attach + 1;
        let expect = m0 * (m0 - 1) / 2 + (n - m0) * attach;
        assert_eq!(el.num_edges(), expect);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert(100, 2, 4), barabasi_albert(100, 2, 4));
        assert_ne!(barabasi_albert(100, 2, 4), barabasi_albert(100, 2, 5));
    }

    #[test]
    fn small_n_is_clique() {
        let el = barabasi_albert(3, 4, 0);
        assert_eq!(el.num_edges(), 3);
    }

    #[test]
    fn old_vertices_become_hubs() {
        let el = barabasi_albert(2000, 2, 1).simplify();
        let deg = el.degrees();
        let head_max = *deg[..20].iter().max().unwrap();
        let tail_max = *deg[1980..].iter().max().unwrap();
        assert!(head_max > tail_max * 3, "head {head_max} tail {tail_max}");
    }

    #[test]
    #[should_panic(expected = "attach")]
    fn rejects_zero_attach() {
        barabasi_albert(10, 0, 0);
    }
}
