//! Watts–Strogatz small-world generator.
//!
//! The paper motivates triangle counting through clustering-coefficient
//! analyses of small-world networks (Watts & Strogatz, ref. [24]);
//! this generator produces that regime: a ring lattice (high
//! clustering) with a tunable rewiring probability `beta` that trades
//! clustering for short paths.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tc_graph::edgelist::{EdgeList, VertexId};

/// Generates a Watts–Strogatz graph: `n` vertices on a ring, each
/// connected to its `k` nearest neighbours on each side, then every
/// edge's far endpoint rewired with probability `beta`.
///
/// # Panics
///
/// Panics if `k == 0`, `2k + 1 > n` (lattice would self-intersect),
/// or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> EdgeList {
    assert!(k > 0, "each vertex needs at least one lattice neighbour");
    assert!(2 * k < n, "ring lattice needs n >= 2k + 1");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    assert!(n <= u32::MAX as usize, "vertex count exceeds u32");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x853c_49e6_748f_ea9b);
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n as u64 {
        for d in 1..=k as u64 {
            let v = (u + d) % n as u64;
            if rng.random::<f64>() < beta {
                // Rewire the far endpoint anywhere except u itself.
                let mut w = rng.random_range(0..n as u64 - 1);
                if w >= u {
                    w += 1;
                }
                edges.push((u as VertexId, w as VertexId));
            } else {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_zero_is_the_ring_lattice() {
        let el = watts_strogatz(20, 2, 0.0, 1).simplify();
        // Each vertex has exactly 2k = 4 neighbours.
        assert!(el.degrees().iter().all(|&d| d == 4));
        assert_eq!(el.num_edges(), 40);
    }

    #[test]
    fn lattice_has_high_clustering() {
        // k = 3 lattice: each vertex's neighbourhood is dense in
        // triangles; transitivity is 0.6 exactly for beta = 0.
        let el = watts_strogatz(100, 3, 0.0, 1).simplify();
        let csr = tc_graph::Csr::from_edge_list(&el);
        // Triangles per vertex on the ring: k(k-1) summed... verify
        // via wedge ratio instead of a closed form.
        let triangles: u64 = {
            // count closed wedges brute force on this small graph
            let mut t = 0u64;
            for u in 0..100u32 {
                let nu = csr.neighbors(u);
                for (i, &a) in nu.iter().enumerate() {
                    for &b in &nu[i + 1..] {
                        if csr.has_edge(a, b) {
                            t += 1;
                        }
                    }
                }
            }
            t / 3
        };
        let trans = tc_graph::stats::transitivity(&csr, triangles);
        assert!((trans - 0.6).abs() < 1e-9, "transitivity {trans}");
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let count = |beta: f64| {
            let el = watts_strogatz(2000, 4, beta, 7).simplify();
            tc_baselines_free_count(&el)
        };
        let lattice = count(0.0);
        let random = count(1.0);
        assert!(lattice > 3 * random, "lattice {lattice} vs rewired {random}");
    }

    /// Tiny local counter to avoid a dev-dependency cycle with
    /// tc-baselines.
    fn tc_baselines_free_count(el: &EdgeList) -> u64 {
        let csr = tc_graph::Csr::from_edge_list(el);
        let mut t = 0u64;
        for (u, v) in csr.edges() {
            t += tc_graph::vset::sorted_intersection_count(csr.neighbors(u), csr.neighbors(v));
        }
        t / 3
    }

    #[test]
    fn deterministic_and_bounded() {
        let a = watts_strogatz(50, 2, 0.3, 9);
        assert_eq!(a, watts_strogatz(50, 2, 0.3, 9));
        assert!(a.edges.iter().all(|&(u, v)| u < 50 && v < 50 && u != v));
    }

    #[test]
    #[should_panic(expected = "n >= 2k + 1")]
    fn rejects_oversized_k() {
        watts_strogatz(5, 3, 0.0, 0);
    }
}
