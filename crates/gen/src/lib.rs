//! # tc-gen — synthetic workload generators
//!
//! Deterministic generators for the triangle-counting testbed:
//!
//! - [`rmat`] — Graph500 RMAT/Kronecker (the paper's g500-sNN inputs).
//! - [`er`] — Erdős–Rényi G(n, m) (friendster stand-in).
//! - [`ba`] — Barabási–Albert preferential attachment (twitter stand-in).
//! - [`presets`] — named Table 1 datasets at configurable scale.

#![warn(missing_docs)]

pub mod ba;
pub mod er;
pub mod presets;
pub mod rmat;
pub mod ws;

pub use presets::{table1_testbed, Preset, DEFAULT_SEED};
pub use rmat::{graph500, rmat, RmatParams};
pub use ws::watts_strogatz;
