//! Erdős–Rényi G(n, m) generator.
//!
//! Uniform random graphs have vanishing clustering, which makes them
//! the right stand-in for the paper's friendster input (1.8B edges but
//! only 191,716 triangles in the Graph Challenge edition): lots of
//! wedges, almost no closures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tc_graph::edgelist::{EdgeList, VertexId};

/// Samples `m` edges uniformly (with replacement) over `n` vertices;
/// self loops excluded at the source. Deterministic per seed.
pub fn gnm(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n <= u32::MAX as usize, "vertex count exceeds u32");
    if n < 2 {
        return EdgeList::empty(n);
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.random_range(0..n as u64) as VertexId;
        let mut v = rng.random_range(0..n as u64 - 1) as VertexId;
        if v >= u {
            v += 1; // avoids self loops without rejection sampling
        }
        edges.push((u, v));
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bounds_and_no_self_loops() {
        let el = gnm(100, 500, 9);
        assert_eq!(el.num_edges(), 500);
        assert!(el.edges.iter().all(|&(u, v)| u != v && u < 100 && v < 100));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gnm(64, 128, 5), gnm(64, 128, 5));
        assert_ne!(gnm(64, 128, 5), gnm(64, 128, 6));
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(gnm(0, 10, 1).num_edges(), 0);
        assert_eq!(gnm(1, 10, 1).num_edges(), 0);
        let el = gnm(2, 10, 1).simplify();
        assert_eq!(el.edges, vec![(0, 1)]);
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let el = gnm(1 << 10, 1 << 14, 3).simplify();
        let deg = el.degrees();
        let avg = deg.iter().map(|&d| d as f64).sum::<f64>() / deg.len() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        // Poisson-ish: the max should stay within a small factor of the mean.
        assert!(max < avg * 4.0, "max {max} avg {avg}");
    }
}
