//! Chrome Trace Event Format export and validation.
//!
//! The emitted file is the JSON-object form of the
//! [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! (`{"traceEvents": [...]}`) and opens directly in
//! <https://ui.perfetto.dev> or `chrome://tracing`. Ranks map to
//! threads of a single process (`pid` 0, `tid` = rank), so the viewer
//! shows one horizontal lane per rank; spans become complete events
//! (`ph: "X"`), instants become `ph: "i"`, and per-rank metadata
//! events name each lane `rank N`.
//!
//! Span CPU time is exported as an `args.cpu_us` member, so the wall
//! bar and the CPU cost are both visible when a slice is selected.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::event::{ArgValue, EventKind};
use crate::json::{self, escape_into, fmt_f64, Value};
use crate::session::Trace;

/// Renders a finished trace as a Chrome-trace-event JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    to_chrome_json_with_metadata(trace, &[])
}

/// [`to_chrome_json`] with extra top-level document members: each
/// `(key, value)` pair is embedded verbatim, so `value` must already
/// be serialized JSON. This is how producers attach sidecar data —
/// e.g. a `tc-metrics` snapshot under a `"tcMetrics"` key — without
/// this crate depending on them. Trace viewers ignore unknown
/// members, and [`validate`] only reads `traceEvents`.
pub fn to_chrome_json_with_metadata(trace: &Trace, metadata: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(256 + trace.events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n  ");
    };
    // Lane metadata: name the process and each rank's thread.
    sep(&mut out);
    out.push_str(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"tc ranks\"}}",
    );
    for rank in trace.ranks() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        );
        // Sort lanes by rank rather than registration order.
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"sort_index\":{rank}}}}}"
        );
    }
    for ev in &trace.events {
        sep(&mut out);
        let ts_us = ev.ts_ns as f64 / 1e3;
        match ev.kind {
            EventKind::Span => {
                let dur_us = ev.dur_ns as f64 / 1e3;
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"name\":{name},\"cat\":{cat},\"pid\":0,\
                     \"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{",
                    name = json::escape(ev.name),
                    cat = json::escape(ev.cat.as_str()),
                    tid = ev.rank,
                    ts = fmt_f64(ts_us),
                    dur = fmt_f64(dur_us),
                );
                let _ = write!(out, "\"cpu_us\":{}", fmt_f64(ev.cpu_ns as f64 / 1e3));
                write_args(&mut out, &ev.args, false);
                out.push_str("}}");
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":{name},\"cat\":{cat},\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\"args\":{{",
                    name = json::escape(ev.name),
                    cat = json::escape(ev.cat.as_str()),
                    tid = ev.rank,
                    ts = fmt_f64(ts_us),
                );
                write_args(&mut out, &ev.args, true);
                out.push_str("}}");
            }
        }
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{}}}",
        trace.dropped
    );
    for (key, value) in metadata {
        out.push(',');
        escape_into(&mut out, key);
        out.push(':');
        out.push_str(value);
    }
    out.push('}');
    out
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)], mut first: bool) {
    for (k, v) in args {
        if !first {
            out.push(',');
        }
        first = false;
        escape_into(out, k);
        out.push(':');
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(n) => out.push_str(&fmt_f64(*n)),
            ArgValue::Str(s) => escape_into(out, s),
        }
    }
}

/// Writes [`to_chrome_json`] output to `path`.
pub fn write_chrome_json(trace: &Trace, path: &Path) -> std::io::Result<()> {
    write_chrome_json_with_metadata(trace, path, &[])
}

/// Writes [`to_chrome_json_with_metadata`] output to `path`.
pub fn write_chrome_json_with_metadata(
    trace: &Trace,
    path: &Path,
    metadata: &[(&str, &str)],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, to_chrome_json_with_metadata(trace, metadata))
}

/// What [`validate`] found in a Chrome trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Distinct rank lanes (`tid`s) that carry at least one span or
    /// instant, ascending.
    pub ranks: Vec<usize>,
    /// Complete (`ph: "X"`) events.
    pub spans: usize,
    /// Instant (`ph: "i"`) events.
    pub instants: usize,
    /// Span count per event name.
    pub spans_by_name: BTreeMap<String, usize>,
}

/// Parses `input` and checks it is structurally a Chrome trace-event
/// document this crate could have produced: a `traceEvents` array
/// whose members each have `ph`/`name`/`pid`/`tid`, with `ts` and
/// (for `"X"`) a non-negative `dur`. Returns a summary of the lanes
/// and events found.
pub fn validate(input: &str) -> Result<ChromeSummary, String> {
    let doc = json::parse(input).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" member")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut summary =
        ChromeSummary { ranks: Vec::new(), spans: 0, instants: 0, spans_by_name: BTreeMap::new() };
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_obj().ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no \"ph\""))?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no \"name\""))?;
        let tid = obj
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i} has no numeric \"tid\""))?;
        if obj.get("pid").and_then(Value::as_f64).is_none() {
            return Err(format!("event {i} has no numeric \"pid\""));
        }
        if tid < 0.0 || tid.fract() != 0.0 {
            return Err(format!("event {i} has non-integral tid {tid}"));
        }
        match ph {
            "M" => {} // metadata carries no ts
            "X" => {
                let ts = obj
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}) has no numeric \"ts\""))?;
                let dur = obj
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}) has no numeric \"dur\""))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} ({name}) has negative ts/dur"));
                }
                summary.spans += 1;
                *summary.spans_by_name.entry(name.to_string()).or_insert(0) += 1;
                summary.ranks.push(tid as usize);
            }
            "i" => {
                if obj.get("ts").and_then(Value::as_f64).is_none() {
                    return Err(format!("event {i} ({name}) has no numeric \"ts\""));
                }
                summary.instants += 1;
                summary.ranks.push(tid as usize);
            }
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
    }
    summary.ranks.sort_unstable();
    summary.ranks.dedup();
    if summary.spans == 0 && summary.instants == 0 {
        return Err("trace contains no span or instant events: the run recorded nothing. \
             This usually means the instrumented code ran before the TraceSession \
             began (the global enable atomic was still zero) or the session was \
             finished before any instrumented code executed"
            .into());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Event};

    fn ev(rank: usize, name: &'static str, kind: EventKind, ts: u64, dur: u64) -> Event {
        Event {
            rank,
            name,
            cat: Category::Phase,
            kind,
            ts_ns: ts,
            dur_ns: dur,
            cpu_ns: dur / 2,
            args: vec![("z", ArgValue::U64(1)), ("lbl", ArgValue::Str("a\"b".into()))],
        }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                ev(0, "ppt", EventKind::Span, 100, 1_000),
                ev(1, "tct", EventKind::Span, 200, 2_000),
                ev(0, "mark", EventKind::Instant, 300, 0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn export_validates_and_summarizes() {
        let json = to_chrome_json(&sample());
        let summary = validate(&json).unwrap();
        assert_eq!(summary.ranks, vec![0, 1]);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.spans_by_name.get("ppt"), Some(&1));
    }

    #[test]
    fn export_is_well_formed_json_with_lane_metadata() {
        let json = to_chrome_json(&sample());
        let doc = crate::json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"rank 0"), "{names:?}");
        assert!(names.contains(&"rank 1"), "{names:?}");
        // cpu_us rides along on spans.
        let span =
            events.iter().find(|e| e.get("ph").and_then(Value::as_str) == Some("X")).unwrap();
        assert!(span.get("args").unwrap().get("cpu_us").unwrap().as_f64().is_some());
    }

    #[test]
    fn empty_trace_is_a_hard_validation_error() {
        let json = to_chrome_json(&Trace { events: vec![], dropped: 0 });
        let err = validate(&json).unwrap_err();
        assert!(err.contains("enable atomic"), "{err}");
    }

    #[test]
    fn metadata_members_are_embedded_and_ignored_by_validate() {
        let snap = r#"{"schema":"tc-metrics-v1","ranks":[]}"#;
        let json = to_chrome_json_with_metadata(&sample(), &[("tcMetrics", snap)]);
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("tcMetrics").and_then(|m| m.get("schema")).and_then(Value::as_str),
            Some("tc-metrics-v1")
        );
        let summary = validate(&json).unwrap();
        assert_eq!(summary.spans, 2);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents":{}}"#).is_err());
        assert!(validate(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(validate(
            r#"{"traceEvents":[{"ph":"X","name":"a","pid":0,"tid":0,"ts":-1,"dur":1}]}"#
        )
        .is_err());
    }
}
