//! Sessions, rank lanes, and the recording fast path.
//!
//! The design splits responsibilities three ways:
//!
//! - a **global gate** ([`enabled`], one relaxed atomic load) that
//!   makes every instrumentation point free when no session is live;
//! - a **session** ([`TraceSession`]) owning per-rank ring buffers
//!   behind individually lockable mutexes, so any thread can snapshot
//!   a rank's recent events (timeout diagnostics need exactly that);
//! - a **thread-local binding** ([`RankGuard`]) that routes this
//!   thread's [`span`]/[`instant_with`] calls to its rank's ring.
//!
//! Binding is *explicit* — a session never captures events from
//! threads that were not registered against it — so concurrent
//! universes in one process (the normal state of `cargo test`) cannot
//! contaminate each other's traces.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::clock::thread_cpu_now;
use crate::event::{ArgValue, Category, Event, EventKind};

/// Count of live sessions; the recording gate.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Total events ever recorded in this process (test probe: asserts
/// that disabled paths stay bypassed).
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Whether any trace session is currently live. This is the single
/// atomic load every instrumentation point pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) != 0
}

/// Process-wide count of recorded events. Monotone; used by tests to
/// prove the recorder is bypassed when tracing is disabled.
pub fn events_recorded_total() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// Tunables of one session.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring capacity per rank: oldest events are dropped beyond this
    /// (the drop count is reported in the exported trace).
    pub capacity_per_rank: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity_per_rank: 1 << 16 }
    }
}

/// Bounded event ring for one rank.
struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// One rank's lane: a mutex-protected ring. The owning thread is the
/// only writer, so the lock is uncontended except when a diagnostic
/// reader snapshots it.
struct RankLane {
    ring: Mutex<Ring>,
}

pub(crate) struct SinkInner {
    epoch: Instant,
    capacity: usize,
    lanes: Mutex<HashMap<usize, Arc<RankLane>>>,
}

impl SinkInner {
    fn lane(&self, rank: usize) -> Arc<RankLane> {
        let mut lanes = self.lanes.lock().expect("trace lanes lock");
        Arc::clone(lanes.entry(rank).or_insert_with(|| {
            Arc::new(RankLane {
                ring: Mutex::new(Ring {
                    buf: VecDeque::with_capacity(self.capacity.min(1024)),
                    cap: self.capacity,
                    dropped: 0,
                }),
            })
        }))
    }
}

thread_local! {
    static LANE: RefCell<Option<LocalLane>> = const { RefCell::new(None) };
}

struct LocalLane {
    rank: usize,
    epoch: Instant,
    lane: Arc<RankLane>,
}

/// A live tracing session. Dropping (or [`TraceSession::finish`]ing)
/// it closes the gate again (when no other session is live).
pub struct TraceSession {
    inner: Arc<SinkInner>,
}

impl TraceSession {
    /// Starts a session with default configuration.
    pub fn begin() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// Starts a session with explicit tunables.
    pub fn with_config(cfg: TraceConfig) -> Self {
        let inner = Arc::new(SinkInner {
            epoch: Instant::now(),
            capacity: cfg.capacity_per_rank.max(1),
            lanes: Mutex::new(HashMap::new()),
        });
        ACTIVE_SESSIONS.fetch_add(1, Ordering::SeqCst);
        Self { inner }
    }

    /// A cloneable handle for wiring the session into rank runtimes
    /// (e.g. `tc_mps::UniverseConfig::trace`).
    pub fn handle(&self) -> TraceHandle {
        TraceHandle { inner: Arc::clone(&self.inner) }
    }

    /// Ends the session and returns everything it recorded, sorted by
    /// timestamp (ties broken by rank).
    pub fn finish(self) -> Trace {
        let inner = Arc::clone(&self.inner);
        drop(self); // closes the gate before draining
        let mut events = Vec::new();
        let mut dropped = 0u64;
        let lanes = inner.lanes.lock().expect("trace lanes lock");
        let mut ranks: Vec<usize> = lanes.keys().copied().collect();
        ranks.sort_unstable();
        for r in &ranks {
            let mut ring = lanes[r].ring.lock().expect("trace ring lock");
            dropped += ring.dropped;
            events.extend(ring.buf.drain(..));
        }
        drop(lanes);
        events.sort_by_key(|e| (e.ts_ns, e.rank));
        Trace { events, dropped }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for TraceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSession").finish_non_exhaustive()
    }
}

/// Cloneable, thread-safe reference to a session's sink.
#[derive(Clone)]
pub struct TraceHandle {
    inner: Arc<SinkInner>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle").finish_non_exhaustive()
    }
}

impl TraceHandle {
    /// Binds the calling thread to `rank`'s lane until the returned
    /// guard is dropped. Spans created on this thread while the guard
    /// lives are recorded into that lane.
    pub fn register_rank(&self, rank: usize) -> RankGuard {
        let lane = self.inner.lane(rank);
        let prev = LANE
            .with(|l| l.borrow_mut().replace(LocalLane { rank, epoch: self.inner.epoch, lane }));
        RankGuard { prev }
    }

    /// The last `n` events recorded by `rank`, oldest first, rendered
    /// one per line — the raw material of enriched timeout reports.
    /// Readable from any thread.
    pub fn recent(&self, rank: usize, n: usize) -> Vec<String> {
        let lanes = self.inner.lanes.lock().expect("trace lanes lock");
        let Some(lane) = lanes.get(&rank).cloned() else {
            return Vec::new();
        };
        drop(lanes);
        let ring = lane.ring.lock().expect("trace ring lock");
        let skip = ring.buf.len().saturating_sub(n);
        ring.buf.iter().skip(skip).map(Event::fmt_line).collect()
    }
}

/// Clears the thread's lane binding on drop (restoring any previous
/// binding, so nested universes behave).
pub struct RankGuard {
    prev: Option<LocalLane>,
}

impl Drop for RankGuard {
    fn drop(&mut self) {
        LANE.with(|l| {
            *l.borrow_mut() = self.prev.take();
        });
    }
}

impl std::fmt::Debug for RankGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankGuard").finish_non_exhaustive()
    }
}

/// Everything one session recorded.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All events, sorted by `(ts_ns, rank)`.
    pub events: Vec<Event>,
    /// Events lost to ring-buffer overflow across all ranks.
    pub dropped: u64,
}

impl Trace {
    /// The distinct ranks that recorded at least one event, ascending.
    pub fn ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.events.iter().map(|e| e.rank).collect();
        r.sort_unstable();
        r.dedup();
        r
    }
}

/// An open span; records itself into the current thread's lane when
/// dropped. When tracing is disabled (or the thread is unbound) this
/// is an inert zero-field-initialized struct — no clocks are read.
pub struct Span {
    rec: Option<SpanRec>,
}

struct SpanRec {
    name: &'static str,
    cat: Category,
    t0: Instant,
    cpu0: Duration,
    args: Vec<(&'static str, ArgValue)>,
}

/// Opens a span. The fast path when tracing is off is a single
/// relaxed atomic load.
#[inline]
pub fn span(name: &'static str, cat: Category) -> Span {
    if !enabled() {
        return Span { rec: None };
    }
    span_slow(name, cat)
}

#[cold]
fn span_slow(name: &'static str, cat: Category) -> Span {
    let bound = LANE.with(|l| l.borrow().is_some());
    if !bound {
        return Span { rec: None };
    }
    Span {
        rec: Some(SpanRec {
            name,
            cat,
            t0: Instant::now(),
            cpu0: thread_cpu_now(),
            args: Vec::new(),
        }),
    }
}

impl Span {
    /// Attaches an argument (builder style). A no-op when inert.
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        if let Some(rec) = &mut self.rec {
            rec.args.push((key, value.into()));
        }
        self
    }

    /// Attaches an argument after construction (for values only known
    /// at the end of the span, e.g. received byte counts).
    pub fn record_arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(rec) = &mut self.rec {
            rec.args.push((key, value.into()));
        }
    }

    /// Whether this span will produce an event. `false` whenever
    /// tracing is disabled or the thread has no rank lane — the
    /// bypass guarantee tests assert on this.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else {
            return;
        };
        let cpu_ns = thread_cpu_now().saturating_sub(rec.cpu0).as_nanos() as u64;
        let dur_ns = rec.t0.elapsed().as_nanos() as u64;
        LANE.with(|l| {
            if let Some(local) = l.borrow().as_ref() {
                let ev = Event {
                    rank: local.rank,
                    name: rec.name,
                    cat: rec.cat,
                    kind: EventKind::Span,
                    ts_ns: rec.t0.duration_since(local.epoch).as_nanos() as u64,
                    dur_ns,
                    cpu_ns,
                    args: rec.args,
                };
                local.lane.ring.lock().expect("trace ring lock").push(ev);
                EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("recording", &self.is_recording()).finish()
    }
}

/// Records a point event. `args` is a closure so argument assembly
/// costs nothing when tracing is off.
#[inline]
pub fn instant_with(
    name: &'static str,
    cat: Category,
    args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    instant_slow(name, cat, args());
}

#[cold]
fn instant_slow(name: &'static str, cat: Category, args: Vec<(&'static str, ArgValue)>) {
    LANE.with(|l| {
        if let Some(local) = l.borrow().as_ref() {
            let ev = Event {
                rank: local.rank,
                name,
                cat,
                kind: EventKind::Instant,
                ts_ns: Instant::now().duration_since(local.epoch).as_nanos() as u64,
                dur_ns: 0,
                cpu_ns: 0,
                args,
            };
            local.lane.ring.lock().expect("trace ring lock").push(ev);
            EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Session tests share process-global state (the gate); serialize
    // them so assertions about enabled() don't race.
    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _l = locked();
        assert!(!enabled());
        let before = events_recorded_total();
        let s = span("x", Category::Phase).arg("k", 1u64);
        assert!(!s.is_recording());
        drop(s);
        instant_with("y", Category::Task, || vec![("a", ArgValue::U64(1))]);
        assert_eq!(events_recorded_total(), before);
    }

    #[test]
    fn unbound_threads_record_nothing_even_when_enabled() {
        let _l = locked();
        let session = TraceSession::begin();
        assert!(enabled());
        // This thread never registered a rank: spans stay inert.
        let s = span("x", Category::Phase);
        assert!(!s.is_recording());
        drop(s);
        let trace = session.finish();
        assert!(trace.events.is_empty());
        assert!(!enabled());
    }

    #[test]
    fn bound_thread_records_span_with_args() {
        let _l = locked();
        let session = TraceSession::begin();
        let handle = session.handle();
        {
            let _g = handle.register_rank(3);
            let mut s = span("work", Category::Shift).arg("z", 2u64);
            assert!(s.is_recording());
            std::hint::black_box((0..10_000).sum::<u64>());
            s.record_arg("bytes", 64u64);
        }
        let trace = session.finish();
        assert_eq!(trace.events.len(), 1);
        let ev = &trace.events[0];
        assert_eq!(ev.rank, 3);
        assert_eq!(ev.name, "work");
        assert_eq!(ev.kind, EventKind::Span);
        assert_eq!(ev.arg("z").and_then(ArgValue::as_u64), Some(2));
        assert_eq!(ev.arg("bytes").and_then(ArgValue::as_u64), Some(64));
        assert_eq!(trace.ranks(), vec![3]);
    }

    #[test]
    fn guard_restores_previous_binding() {
        let _l = locked();
        let session = TraceSession::begin();
        let handle = session.handle();
        let _outer = handle.register_rank(0);
        {
            let _inner = handle.register_rank(1);
            drop(span("inner", Category::Phase));
        }
        drop(span("outer", Category::Phase));
        let trace = session.finish();
        let by_rank: Vec<(usize, &str)> = trace.events.iter().map(|e| (e.rank, e.name)).collect();
        assert!(by_rank.contains(&(1, "inner")), "{by_rank:?}");
        assert!(by_rank.contains(&(0, "outer")), "{by_rank:?}");
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _l = locked();
        let session = TraceSession::with_config(TraceConfig { capacity_per_rank: 4 });
        let handle = session.handle();
        {
            let _g = handle.register_rank(0);
            for _ in 0..10 {
                drop(span("e", Category::Task));
            }
        }
        let trace = session.finish();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 6);
    }

    #[test]
    fn recent_reads_cross_thread() {
        let _l = locked();
        let session = TraceSession::begin();
        let handle = session.handle();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = handle.register_rank(5);
                drop(span("alpha", Category::Comm).arg("src", 1u64));
                drop(span("beta", Category::Comm));
            });
        });
        let recent = handle.recent(5, 8);
        assert_eq!(recent.len(), 2);
        assert!(recent[0].contains("alpha"), "{recent:?}");
        assert!(recent[1].contains("beta"), "{recent:?}");
        assert!(handle.recent(99, 8).is_empty());
        let trace = session.finish();
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn events_sorted_by_timestamp_across_ranks() {
        let _l = locked();
        let session = TraceSession::begin();
        let handle = session.handle();
        std::thread::scope(|s| {
            for r in 0..4 {
                let h = handle.clone();
                s.spawn(move || {
                    let _g = h.register_rank(r);
                    for _ in 0..5 {
                        drop(span("tick", Category::Task));
                    }
                });
            }
        });
        let trace = session.finish();
        assert_eq!(trace.events.len(), 20);
        assert!(trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(trace.ranks(), vec![0, 1, 2, 3]);
    }
}
