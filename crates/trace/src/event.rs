//! The event model: what one recorded span or instant looks like.

use std::fmt;

/// Coarse classification of an event, exported as the Chrome-trace
/// `cat` field (Perfetto colors and filters by it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// A top-level algorithm phase (ppt, tct, baseline setup/count).
    Phase,
    /// One Cannon shift or SUMMA panel step.
    Shift,
    /// Point-to-point communication (send/recv/shift exchanges).
    Comm,
    /// A collective operation (barrier, bcast, reduce, …).
    Collective,
    /// Map-intersection task work.
    Task,
    /// Runtime bookkeeping (rank lifecycle, diagnostics).
    Runtime,
}

impl Category {
    /// The Chrome-trace `cat` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Phase => "phase",
            Category::Shift => "shift",
            Category::Comm => "comm",
            Category::Collective => "coll",
            Category::Task => "task",
            Category::Runtime => "runtime",
        }
    }
}

/// Whether an event covers an interval or a single point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval with wall and CPU durations (Chrome `ph: "X"`).
    Span,
    /// A point event (Chrome `ph: "i"`).
    Instant,
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned counter (byte counts, sequence numbers, ranks…).
    U64(u64),
    /// A floating-point quantity.
    F64(f64),
    /// Free-form text.
    Str(String),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl ArgValue {
    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

/// One recorded event.
///
/// Timestamps are nanosecond offsets from the owning session's epoch
/// (the instant the session began), so events from different ranks
/// share one timeline.
#[derive(Debug, Clone)]
pub struct Event {
    /// The rank whose lane recorded this event.
    pub rank: usize,
    /// Event name (static so recording stays allocation-light).
    pub name: &'static str,
    /// Category lane.
    pub cat: Category,
    /// Span or instant.
    pub kind: EventKind,
    /// Wall-clock start, nanoseconds since the session epoch.
    pub ts_ns: u64,
    /// Wall-clock duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Thread-CPU time consumed inside the span (0 for instants).
    pub cpu_ns: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// Value of argument `key`, if present.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One-line rendering for diagnostic dumps:
    /// `+12.345ms recv{src=1, bytes=64} (0.8ms)`.
    pub fn fmt_line(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "+{:.3}ms {}", self.ts_ns as f64 / 1e6, self.name);
        if !self.args.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k}={v}");
            }
            out.push('}');
        }
        if self.kind == EventKind::Span {
            let _ = write!(out, " ({:.3}ms)", self.dur_ns as f64 / 1e6);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_line_renders_args_and_duration() {
        let ev = Event {
            rank: 2,
            name: "recv",
            cat: Category::Comm,
            kind: EventKind::Span,
            ts_ns: 1_500_000,
            dur_ns: 250_000,
            cpu_ns: 0,
            args: vec![("src", ArgValue::U64(1)), ("bytes", ArgValue::U64(64))],
        };
        let line = ev.fmt_line();
        assert!(line.contains("+1.500ms recv"), "{line}");
        assert!(line.contains("src=1"), "{line}");
        assert!(line.contains("(0.250ms)"), "{line}");
    }

    #[test]
    fn arg_lookup() {
        let ev = Event {
            rank: 0,
            name: "x",
            cat: Category::Task,
            kind: EventKind::Instant,
            ts_ns: 0,
            dur_ns: 0,
            cpu_ns: 0,
            args: vec![("z", ArgValue::U64(7))],
        };
        assert_eq!(ev.arg("z").and_then(ArgValue::as_u64), Some(7));
        assert!(ev.arg("missing").is_none());
    }
}
