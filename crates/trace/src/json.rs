//! Minimal JSON writing and parsing helpers.
//!
//! The container has no registry access, so instead of `serde` the
//! exporter hand-writes JSON and the validator uses the small
//! recursive-descent parser below. The parser supports the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) — enough to round-trip Chrome trace files and bench reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Formats an `f64` the way JSON requires: no NaN/Inf (mapped to
/// `null`), integers without a trailing `.0` kept parseable.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    format!("{v}")
}

/// Parses a complete JSON document. Trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { pos: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(arr)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by \uXXXX with a low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the
                    // raw bytes (the input is a &str, so they are
                    // guaranteed valid).
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        self.pos = start + width;
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>().map(Value::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "a\"b\\c\nd\te\u{1}f héllo 😀";
        let lit = escape(s);
        let v = parse(&lit).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2,true,false,null],"b":{"c":"d"}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[5], Value::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn parses_surrogate_pair() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} x"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse(r#""\uD800""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn fmt_f64_is_parseable() {
        for v in [0.0, 1.5, -2.0, 1e-9, 12345.0] {
            let s = fmt_f64(v);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(v), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
