//! Trace-derived performance analysis.
//!
//! [`analyze`] digests a finished [`Trace`] into the same quantities
//! `tc_core`'s critical-path *model* predicts, so the two can be
//! cross-checked:
//!
//! - **per-phase critical path** — for every [`Category::Phase`] span
//!   name, the maximum over ranks of that rank's CPU time inside the
//!   phase. With phase barriers on both sides, the slowest rank *is*
//!   the phase's critical path (the substitution `TcResult::
//!   modeled_ppt_time` makes).
//! - **per-shift breakdown** — for every `shift_compute` /
//!   `shift_xchg` span (keyed by the `z` argument), the max and mean
//!   rank CPU. The sum over shifts of the per-shift maxima is the
//!   trace-derived counterpart of `TcResult::modeled_tct_time`
//!   (Cannon's shift loop synchronizes every shift, so per-shift
//!   maxima accumulate).
//! - **blocked-time attribution** — per rank, wall time spent inside
//!   communication spans minus the CPU consumed there: time the rank
//!   sat waiting on a peer, split into point-to-point and collective
//!   waits.
//!
//! The analyzer only reads span names from [`crate::names`], so the
//! instrumentation sites and this module cannot drift apart silently.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{ArgValue, Category, EventKind};
use crate::names;
use crate::session::Trace;

/// Per-shift (or per-SUMMA-panel) aggregates across ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftBreakdown {
    /// Shift index (the span's `z` argument).
    pub z: u64,
    /// Slowest rank's compute CPU in this shift, seconds.
    pub max_compute_s: f64,
    /// Mean over ranks of compute CPU in this shift, seconds.
    pub mean_compute_s: f64,
    /// Slowest rank's operand-exchange wall time after this shift,
    /// seconds (0 when the trace has no exchange span for `z`).
    pub max_xchg_s: f64,
    /// Ranks that recorded a compute span for this shift.
    pub ranks: usize,
}

/// Per-rank blocked-time attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct RankAttribution {
    /// The rank.
    pub rank: usize,
    /// Total CPU across all of the rank's spans, seconds.
    pub cpu_s: f64,
    /// Wall minus CPU inside point-to-point spans (send/recv),
    /// seconds: time blocked waiting for a matching message.
    pub p2p_blocked_s: f64,
    /// Wall minus CPU inside collective spans, seconds: time blocked
    /// waiting for peers to reach the collective.
    pub coll_blocked_s: f64,
}

/// Everything [`analyze`] derives from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// For each phase-span name: max over ranks of per-rank CPU in
    /// that phase, seconds.
    pub phase_critical_path_s: BTreeMap<String, f64>,
    /// Σ over shifts of the per-shift max rank compute CPU, seconds —
    /// the trace-derived `modeled_tct_time`.
    pub shift_critical_path_s: f64,
    /// Per-shift aggregates, ascending by `z`.
    pub shifts: Vec<ShiftBreakdown>,
    /// Per-rank blocked-time attribution, ascending by rank.
    pub ranks: Vec<RankAttribution>,
}

impl TraceAnalysis {
    /// The preprocessing critical path (max rank CPU of the `ppt`
    /// phase spans), seconds; 0 when the trace has none.
    pub fn ppt_critical_path_s(&self) -> f64 {
        self.phase_critical_path_s.get(names::PHASE_PPT).copied().unwrap_or(0.0)
    }

    /// The trace-derived counting critical path: Σ over shifts of the
    /// per-shift max compute CPU, seconds.
    pub fn tct_critical_path_s(&self) -> f64 {
        self.shift_critical_path_s
    }

    /// A human-readable multi-line report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "phase critical paths (max rank CPU):");
        for (name, s) in &self.phase_critical_path_s {
            let _ = writeln!(out, "  {name:<20} {:>10.3} ms", s * 1e3);
        }
        if !self.shifts.is_empty() {
            let _ = writeln!(
                out,
                "shift critical path: {:.3} ms over {} shifts",
                self.shift_critical_path_s * 1e3,
                self.shifts.len()
            );
            let _ = writeln!(
                out,
                "  {:>4} {:>12} {:>12} {:>12}",
                "z", "max comp ms", "mean comp ms", "max xchg ms"
            );
            for s in &self.shifts {
                let _ = writeln!(
                    out,
                    "  {:>4} {:>12.3} {:>12.3} {:>12.3}",
                    s.z,
                    s.max_compute_s * 1e3,
                    s.mean_compute_s * 1e3,
                    s.max_xchg_s * 1e3
                );
            }
        }
        if !self.ranks.is_empty() {
            let _ = writeln!(out, "blocked-time attribution:");
            let _ = writeln!(
                out,
                "  {:>4} {:>10} {:>14} {:>14}",
                "rank", "cpu ms", "p2p blocked ms", "coll blocked ms"
            );
            for r in &self.ranks {
                let _ = writeln!(
                    out,
                    "  {:>4} {:>10.3} {:>14.3} {:>14.3}",
                    r.rank,
                    r.cpu_s * 1e3,
                    r.p2p_blocked_s * 1e3,
                    r.coll_blocked_s * 1e3
                );
            }
        }
        out
    }
}

const NS: f64 = 1e-9;

/// Computes the [`TraceAnalysis`] of a finished trace.
///
/// Errors when the trace holds no events at all: a session that was
/// begun but recorded nothing is almost always a bug at the call site
/// (the instrumented code ran before the global enable atomic was
/// raised, or the session was finished too early), and silently
/// analyzing it would report an all-zero critical path.
pub fn analyze(trace: &Trace) -> Result<TraceAnalysis, String> {
    if trace.events.is_empty() {
        return Err("trace contains no events: tracing was enabled but nothing was recorded. \
             This usually means the instrumented code ran before the TraceSession \
             began (the global enable atomic was still zero) or the session was \
             finished before any instrumented code executed"
            .into());
    }
    // phase name -> rank -> accumulated cpu ns
    let mut phase: BTreeMap<&str, BTreeMap<usize, u64>> = BTreeMap::new();
    // z -> rank -> compute cpu ns
    let mut compute: BTreeMap<u64, BTreeMap<usize, u64>> = BTreeMap::new();
    // z -> max xchg wall ns
    let mut xchg: BTreeMap<u64, u64> = BTreeMap::new();
    // rank -> attribution accumulators
    let mut ranks: BTreeMap<usize, RankAttribution> = BTreeMap::new();

    for ev in &trace.events {
        if ev.kind != EventKind::Span {
            continue;
        }
        let att = ranks.entry(ev.rank).or_insert_with(|| RankAttribution {
            rank: ev.rank,
            cpu_s: 0.0,
            p2p_blocked_s: 0.0,
            coll_blocked_s: 0.0,
        });
        att.cpu_s += ev.cpu_ns as f64 * NS;
        let blocked = ev.dur_ns.saturating_sub(ev.cpu_ns) as f64 * NS;
        match ev.cat {
            Category::Phase => {
                *phase.entry(ev.name).or_default().entry(ev.rank).or_insert(0) += ev.cpu_ns;
            }
            Category::Shift => {
                let z = ev.arg("z").and_then(ArgValue::as_u64).unwrap_or(0);
                match ev.name {
                    names::SHIFT_COMPUTE => {
                        *compute.entry(z).or_default().entry(ev.rank).or_insert(0) += ev.cpu_ns;
                    }
                    names::SHIFT_XCHG | names::SKEW => {
                        let slot = xchg.entry(z).or_insert(0);
                        *slot = (*slot).max(ev.dur_ns);
                    }
                    _ => {}
                }
            }
            Category::Comm => att.p2p_blocked_s += blocked,
            Category::Collective => att.coll_blocked_s += blocked,
            Category::Task | Category::Runtime => {}
        }
    }

    let phase_critical_path_s = phase
        .into_iter()
        .map(|(name, per_rank)| {
            let max = per_rank.values().copied().max().unwrap_or(0);
            (name.to_string(), max as f64 * NS)
        })
        .collect();

    let mut shifts = Vec::with_capacity(compute.len());
    let mut shift_critical_path_s = 0.0;
    for (z, per_rank) in compute {
        let n = per_rank.len();
        let max = per_rank.values().copied().max().unwrap_or(0) as f64 * NS;
        let sum: u64 = per_rank.values().sum();
        shift_critical_path_s += max;
        shifts.push(ShiftBreakdown {
            z,
            max_compute_s: max,
            mean_compute_s: if n == 0 { 0.0 } else { sum as f64 * NS / n as f64 },
            max_xchg_s: xchg.get(&z).copied().unwrap_or(0) as f64 * NS,
            ranks: n,
        });
    }

    Ok(TraceAnalysis {
        phase_critical_path_s,
        shift_critical_path_s,
        shifts,
        ranks: ranks.into_values().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn span(
        rank: usize,
        name: &'static str,
        cat: Category,
        dur_ns: u64,
        cpu_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Event {
        Event { rank, name, cat, kind: EventKind::Span, ts_ns: 0, dur_ns, cpu_ns, args }
    }

    fn z(v: u64) -> Vec<(&'static str, ArgValue)> {
        vec![("z", ArgValue::U64(v))]
    }

    #[test]
    fn phase_critical_path_is_max_rank_cpu() {
        let trace = Trace {
            events: vec![
                span(0, names::PHASE_PPT, Category::Phase, 9_000, 5_000, vec![]),
                span(1, names::PHASE_PPT, Category::Phase, 9_000, 8_000, vec![]),
                span(0, names::PHASE_TCT, Category::Phase, 9_000, 2_000, vec![]),
            ],
            dropped: 0,
        };
        let a = analyze(&trace).unwrap();
        assert!((a.ppt_critical_path_s() - 8_000.0 * NS).abs() < 1e-12);
        assert!((a.phase_critical_path_s[names::PHASE_TCT] - 2_000.0 * NS).abs() < 1e-12);
    }

    #[test]
    fn shift_critical_path_sums_per_shift_maxima() {
        // z=0: max(3,7)=7; z=1: max(10,2)=10 → 17 total.
        let trace = Trace {
            events: vec![
                span(0, names::SHIFT_COMPUTE, Category::Shift, 3, 3, z(0)),
                span(1, names::SHIFT_COMPUTE, Category::Shift, 7, 7, z(0)),
                span(0, names::SHIFT_COMPUTE, Category::Shift, 10, 10, z(1)),
                span(1, names::SHIFT_COMPUTE, Category::Shift, 2, 2, z(1)),
                span(0, names::SHIFT_XCHG, Category::Shift, 40, 1, z(0)),
                span(1, names::SHIFT_XCHG, Category::Shift, 60, 1, z(0)),
            ],
            dropped: 0,
        };
        let a = analyze(&trace).unwrap();
        assert!((a.tct_critical_path_s() - 17.0 * NS).abs() < 1e-15);
        assert_eq!(a.shifts.len(), 2);
        assert_eq!(a.shifts[0].z, 0);
        assert!((a.shifts[0].max_compute_s - 7.0 * NS).abs() < 1e-15);
        assert!((a.shifts[0].mean_compute_s - 5.0 * NS).abs() < 1e-15);
        assert!((a.shifts[0].max_xchg_s - 60.0 * NS).abs() < 1e-15);
        assert_eq!(a.shifts[0].ranks, 2);
        assert!((a.shifts[1].max_compute_s - 10.0 * NS).abs() < 1e-15);
    }

    #[test]
    fn blocked_time_split_by_category() {
        let trace = Trace {
            events: vec![
                span(2, names::RECV, Category::Comm, 1_000, 100, vec![]),
                span(2, "allreduce", Category::Collective, 500, 50, vec![]),
                span(2, "work", Category::Task, 400, 400, vec![]),
            ],
            dropped: 0,
        };
        let a = analyze(&trace).unwrap();
        assert_eq!(a.ranks.len(), 1);
        let r = &a.ranks[0];
        assert_eq!(r.rank, 2);
        assert!((r.p2p_blocked_s - 900.0 * NS).abs() < 1e-15);
        assert!((r.coll_blocked_s - 450.0 * NS).abs() < 1e-15);
        assert!((r.cpu_s - 550.0 * NS).abs() < 1e-15);
    }

    #[test]
    fn empty_trace_is_a_hard_error() {
        let err = analyze(&Trace { events: vec![], dropped: 0 }).unwrap_err();
        assert!(err.contains("enable atomic"), "{err}");
    }

    #[test]
    fn report_mentions_phases_and_shifts() {
        let trace = Trace {
            events: vec![
                span(0, names::PHASE_PPT, Category::Phase, 9_000, 5_000, vec![]),
                span(0, names::SHIFT_COMPUTE, Category::Shift, 3, 3, z(0)),
            ],
            dropped: 0,
        };
        let rep = analyze(&trace).unwrap().report();
        assert!(rep.contains("ppt"), "{rep}");
        assert!(rep.contains("shift critical path"), "{rep}");
        assert!(rep.contains("blocked-time"), "{rep}");
    }
}
