//! Per-thread CPU clocks.
//!
//! When more ranks than cores share a machine, per-rank *wall* times
//! measure scheduler interleaving, not algorithmic work. Per-thread
//! CPU time keeps measuring the work itself; every span records both
//! clocks so the critical-path analysis can choose the right one.
//!
//! This is the workspace's single implementation of the thread CPU
//! clock — `tc_mps::cputime` re-exports it.

use std::time::Duration;

/// CPU time consumed by the calling thread since it started.
///
/// Linux uses `CLOCK_THREAD_CPUTIME_ID`; other platforms fall back to
/// a monotonic wall clock, which keeps the API total but degrades the
/// model — all supported CI targets are Linux.
pub fn thread_cpu_now() -> Duration {
    #[cfg(target_os = "linux")]
    {
        // Declared inline rather than through the `libc` crate so the
        // workspace builds without registry access.
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        extern "C" {
            fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
        }
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // SAFETY: ts is a valid out-pointer; the clock id is a constant
        // the kernel accepts for any live thread.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
        Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
    }
    #[cfg(not(target_os = "linux"))]
    {
        // Fallback: monotonic wall clock (documented degradation).
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed()
    }
}

/// A stopwatch over the calling thread's CPU clock.
#[derive(Debug, Clone, Copy)]
pub struct CpuTimer {
    start: Duration,
}

impl CpuTimer {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Self { start: thread_cpu_now() }
    }

    /// CPU time consumed by this thread since [`CpuTimer::start`].
    pub fn elapsed(&self) -> Duration {
        thread_cpu_now().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_clock_advances_under_compute() {
        let t = CpuTimer::start();
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(acc);
        assert!(t.elapsed() > Duration::ZERO);
    }

    #[test]
    fn cpu_clock_ignores_sleep() {
        // Sleeping burns (almost) no CPU: the CPU delta must be far
        // smaller than the wall delta.
        let cpu = CpuTimer::start();
        let wall = std::time::Instant::now();
        std::thread::sleep(Duration::from_millis(60));
        let cpu_d = cpu.elapsed();
        let wall_d = wall.elapsed();
        assert!(wall_d >= Duration::from_millis(55));
        assert!(cpu_d < wall_d / 4, "cpu {cpu_d:?} wall {wall_d:?}");
    }
}
