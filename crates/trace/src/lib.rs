//! # tc-trace — per-rank event tracing
//!
//! A low-overhead span/event recorder for the triangle-counting
//! workspace, plus two consumers:
//!
//! - [`chrome`] — a Chrome-trace-event JSON exporter, so any traced
//!   run opens in [Perfetto](https://ui.perfetto.dev) or
//!   `chrome://tracing` with one lane per rank;
//! - [`analysis`] — a trace analyzer that computes the per-phase
//!   critical path, per-shift compute/communication breakdown, and
//!   blocked-time attribution directly from recorded spans, so the
//!   critical-path *model* in `tc_core::TcResult::modeled_*` can be
//!   audited against what the ranks actually did.
//!
//! ## Recording model
//!
//! Tracing is **off by default** and gated by a single relaxed atomic
//! load ([`enabled`]): when no [`TraceSession`] is live, every
//! instrumentation point returns immediately without reading a clock
//! or touching a thread-local. A session hands out a cloneable
//! [`TraceHandle`]; rank threads bind themselves to the session with
//! [`TraceHandle::register_rank`] (the `tc-mps` universe does this
//! automatically when its config carries a handle), after which
//! [`span`] and [`instant_with`] record into that rank's bounded ring
//! buffer. Rings are individually lockable from *other* threads too,
//! which is what lets a timing-out rank include every peer's last few
//! trace events in its diagnostic report.
//!
//! Spans capture both the monotonic wall clock and the calling
//! thread's CPU clock (`CLOCK_THREAD_CPUTIME_ID`), because on an
//! oversubscribed host (more ranks than cores) wall durations measure
//! the scheduler while CPU durations keep measuring the work — the
//! same substitution `tc_core`'s critical-path model makes.
//!
//! ## Example
//!
//! ```
//! use tc_trace::{span, Category, TraceSession};
//!
//! let session = TraceSession::begin();
//! let handle = session.handle();
//! {
//!     let _rank = handle.register_rank(0);
//!     let _s = span("work", Category::Phase).arg("items", 3u64);
//! } // span recorded when dropped
//! let trace = session.finish();
//! assert_eq!(trace.events.len(), 1);
//! let json = tc_trace::chrome::to_chrome_json(&trace);
//! tc_trace::chrome::validate(&json).unwrap();
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
mod clock;
mod event;
pub mod json;
mod session;

pub use clock::{thread_cpu_now, CpuTimer};
pub use event::{ArgValue, Category, Event, EventKind};
pub use session::{
    enabled, events_recorded_total, instant_with, span, RankGuard, Span, Trace, TraceConfig,
    TraceHandle, TraceSession,
};

/// Canonical span/event names shared by the instrumentation sites and
/// the [`analysis`] module, so the two cannot drift apart.
pub mod names {
    /// Preprocessing phase (paper "ppt").
    pub const PHASE_PPT: &str = "ppt";
    /// Triangle-counting phase (paper "tct").
    pub const PHASE_TCT: &str = "tct";
    /// Compute part of one Cannon shift / SUMMA panel (arg `z`).
    pub const SHIFT_COMPUTE: &str = "shift_compute";
    /// Operand movement between two shifts / panels (arg `z`).
    pub const SHIFT_XCHG: &str = "shift_xchg";
    /// The initial Cannon skew exchange.
    pub const SKEW: &str = "skew";
    /// A blocking point-to-point receive.
    pub const RECV: &str = "recv";
    /// A (buffered, non-blocking) point-to-point send.
    pub const SEND: &str = "send";
    /// Preprocessing step 1: initial cyclic redistribution.
    pub const PREP_REDIST: &str = "cyclic_redistribute";
    /// Preprocessing step 2: distributed counting sort.
    pub const PREP_SORT: &str = "degree_sort";
    /// Preprocessing step 2b: old→new label push.
    pub const PREP_LABELS: &str = "label_push";
    /// Preprocessing step 4: 2D redistribution of U/L/task entries.
    pub const PREP_2D: &str = "redistribute_2d";
    /// Baseline setup phase (ghost exchange, 2-core peel, …).
    pub const BASE_SETUP: &str = "setup";
    /// Baseline counting phase.
    pub const BASE_COUNT: &str = "count";
    /// Reliable transport re-delivered frames for a missing sequence
    /// (instant; args carry link and frame counts).
    pub const RETRANSMIT: &str = "retransmit";
    /// Reliable transport received a frame that failed CRC/length
    /// verification (instant; args carry the source rank).
    pub const FRAME_CORRUPT: &str = "frame_corrupt";
    /// Socket fabric mesh setup: bind, dial lower ranks, accept higher
    /// ranks (span; args carry rank and universe size).
    pub const FABRIC_CONNECT: &str = "fabric_connect";
    /// Socket fabric hello exchange on one fresh connection (span;
    /// args carry the local rank).
    pub const FABRIC_HANDSHAKE: &str = "fabric_handshake";
}
