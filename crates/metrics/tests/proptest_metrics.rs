//! Property tests for the log₂ histogram, the Welford accumulator and
//! the exporters: recording is order- and partition-invariant,
//! quantile estimates bound the true quantile within one bucket,
//! Welford statistics agree with the naive two-pass formulas, and the
//! Prometheus exposition is a pure function of the JSON snapshot
//! (round-tripping the snapshot through its parser reproduces the
//! exposition byte-for-byte).

use proptest::prelude::*;
use tc_metrics::{histogram, Log2Histogram, MetricValue, MetricsSnapshot, TimingStats, Welford};

fn recorded(samples: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    /// A histogram is a multiset summary: any permutation of the
    /// sample stream produces the identical histogram.
    #[test]
    fn record_is_order_invariant(
        samples in proptest::collection::vec(any::<u64>(), 0..200),
        seed in any::<u64>(),
    ) {
        let mut shuffled = samples.clone();
        // Fisher–Yates with a splitmix-style LCG (no rand dep needed).
        let mut state = seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(recorded(&samples), recorded(&shuffled));
    }

    /// Splitting the samples at any point, recording each half into
    /// its own histogram, and merging equals recording everything
    /// into one histogram.
    #[test]
    fn merge_is_partition_invariant(
        samples in proptest::collection::vec(any::<u64>(), 0..200),
        cut_raw in any::<u64>(),
    ) {
        let cut = cut_raw as usize % (samples.len() + 1);
        let mut left = recorded(&samples[..cut]);
        let right = recorded(&samples[cut..]);
        left.merge(&right);
        prop_assert_eq!(left, recorded(&samples));
    }

    /// `quantile_bounds(q)` brackets the true q-quantile of the
    /// recorded multiset, and the bracket is a single log₂ bucket.
    #[test]
    fn quantile_bounds_contain_true_quantile(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        q_pm in 0u32..1001,
    ) {
        let q = q_pm as f64 / 1000.0;
        let h = recorded(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let truth = sorted[idx];
        let (lo, hi) = h.quantile_bounds(q).expect("non-empty histogram");
        prop_assert!(lo <= truth && truth <= hi, "{lo} <= {truth} <= {hi} (q={q})");
        let (blo, bhi) = histogram::bucket_bounds(histogram::bucket_index(truth));
        prop_assert!(lo >= blo && hi <= bhi, "bracket wider than one bucket");
    }

    /// Welford accumulation agrees with the naive two-pass mean and
    /// sample variance on small inputs (timing-magnitude samples, up
    /// to ~17 minutes in nanoseconds).
    #[test]
    fn welford_agrees_with_naive_two_pass(
        samples in proptest::collection::vec(0u64..1_000_000_000_000, 1..100),
    ) {
        let mut w = Welford::new();
        for &s in &samples {
            w.push(s as f64);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = if samples.len() < 2 {
            0.0
        } else {
            samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
        prop_assert_eq!(w.count(), samples.len() as u64);
        prop_assert!(close(w.mean(), mean), "mean {} vs {}", w.mean(), mean);
        prop_assert!(close(w.variance(), var), "var {} vs {}", w.variance(), var);
    }

    /// Welford merging is partition- and order-invariant: shuffling
    /// the stream and splitting it anywhere, then merging the halves,
    /// matches the single-stream accumulation.
    #[test]
    fn welford_merge_is_order_and_partition_invariant(
        samples in proptest::collection::vec(0u64..1_000_000_000_000, 0..100),
        cut_raw in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut whole = Welford::new();
        for &s in &samples {
            whole.push(s as f64);
        }
        let mut shuffled = samples.clone();
        let mut state = seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let cut = cut_raw as usize % (shuffled.len() + 1);
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for &s in &shuffled[..cut] {
            a.push(s as f64);
        }
        for &s in &shuffled[cut..] {
            b.push(s as f64);
        }
        a.merge(&b);
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!(close(a.mean(), whole.mean()), "mean {} vs {}", a.mean(), whole.mean());
        prop_assert!(
            close(a.variance(), whole.variance()),
            "var {} vs {}", a.variance(), whole.variance()
        );
    }

    /// Pooling per-record timing summaries preserves count, min/max
    /// and (within float tolerance) mean and stddev of the combined
    /// sample stream, regardless of how the stream is chunked.
    #[test]
    fn timing_stats_pool_matches_flat_summary(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000_000, 1..12),
            1..8,
        ),
    ) {
        let parts: Vec<TimingStats> =
            chunks.iter().map(|c| TimingStats::from_samples(c).unwrap()).collect();
        let pooled = TimingStats::pool(&parts).unwrap();
        let flat: Vec<u64> = chunks.iter().flatten().copied().collect();
        let direct = TimingStats::from_samples(&flat).unwrap();
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0);
        prop_assert_eq!(pooled.tries, direct.tries);
        prop_assert_eq!((pooled.min, pooled.max), (direct.min, direct.max));
        prop_assert!(close(pooled.mean, direct.mean), "mean {} vs {}", pooled.mean, direct.mean);
        prop_assert!(
            close(pooled.stddev, direct.stddev),
            "stddev {} vs {}", pooled.stddev, direct.stddev
        );
    }

    /// Aggregates stay exact no matter what was recorded.
    #[test]
    fn aggregates_are_exact(samples in proptest::collection::vec(any::<u64>(), 0..200)) {
        let h = recorded(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mut sum = 0u64;
        for &v in &samples {
            sum = sum.saturating_add(v); // sum saturates, mirroring record()
        }
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.min(), samples.iter().copied().min());
        prop_assert_eq!(h.max(), samples.iter().copied().max());
    }
}

#[test]
fn empty_and_single_sample_edge_cases_do_not_panic() {
    let empty = Log2Histogram::new();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.quantile(0.5), None);
    assert_eq!(empty.quantile_bounds(0.0), None);
    assert_eq!(empty.min(), None);
    assert_eq!(empty.mean(), None);

    for v in [0u64, 1, 2, u64::MAX] {
        let mut h = Log2Histogram::new();
        h.record(v);
        for q in [0.0, 0.5, 1.0] {
            let (lo, hi) = h.quantile_bounds(q).expect("single sample");
            assert!(lo <= v && v <= hi, "{lo} <= {v} <= {hi}");
        }
        assert_eq!(h.min(), Some(v));
        assert_eq!(h.max(), Some(v));
    }
}

/// The Prometheus exposition carries no information beyond the JSON
/// snapshot: parsing the snapshot back and re-rendering reproduces
/// the exposition exactly.
#[test]
fn prometheus_exposition_round_trips_through_json_snapshot() {
    let mut snap = MetricsSnapshot::new();
    let mut h = Log2Histogram::new();
    for v in [1u64, 7, 7, 300, 40_000] {
        h.record(v);
    }
    for rank in 0..3usize {
        snap.insert(rank, "tct.ops".into(), MetricValue::Counter(100 + rank as u64));
        snap.insert(rank, "hash.slots".into(), MetricValue::Gauge(1 << (10 + rank)));
        snap.insert(rank, "shift.bytes".into(), MetricValue::Hist(h.clone()));
    }
    let exposition = tc_metrics::prometheus::to_prometheus(&snap);
    assert!(exposition.contains("tct_ops"), "{exposition}");

    let parsed = MetricsSnapshot::from_json(&snap.to_json()).expect("snapshot parses");
    assert_eq!(parsed, snap);
    assert_eq!(tc_metrics::prometheus::to_prometheus(&parsed), exposition);
}
