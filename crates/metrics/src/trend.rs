//! Per-commit perf-trend history and the `perftrend` renderer.
//!
//! Every `benchdiff`-blessed suite run appends one
//! `tc-bench-history-v1` JSON line per (run key, timing) to
//! `results/BENCH_HISTORY.jsonl`, stamped with the commit id and ISO
//! date the caller passes in (`--commit`/`--date` — this library
//! never reads the clock, so records stay reproducible). The
//! `tricount perftrend` subcommand ([`cli_main`]) renders the
//! trajectory two ways: an ASCII sparkline table on stdout and a
//! self-contained hand-rolled HTML/SVG page, flagging the worst
//! regression and best improvement across the last N commits.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::report::RunRecord;
use crate::stats::TimingStats;

/// History-row schema tag; bump on breaking layout changes.
pub const HISTORY_SCHEMA: &str = "tc-bench-history-v1";

/// One (commit, run key, timing) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Commit id the suite ran at (any revision string).
    pub commit: String,
    /// ISO date of the run (caller-supplied; never `Date::now`).
    pub date: String,
    /// Run key: `dataset/algorithm/pN/config`.
    pub key: String,
    /// Timing name within the run record.
    pub timing: String,
    /// The timing's summary at that commit.
    pub stats: TimingStats,
}

impl HistoryRow {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"schema\":\"");
        out.push_str(HISTORY_SCHEMA);
        for (k, v) in [
            ("commit", &self.commit),
            ("date", &self.date),
            ("key", &self.key),
            ("timing", &self.timing),
        ] {
            out.push_str("\",\"");
            out.push_str(k);
            out.push_str("\":\"");
            json::escape_into(&mut out, v);
        }
        out.push_str(&format!(
            "\",\"mean\":{},\"stddev\":{},\"min\":{},\"max\":{},\"median\":{},\"tries\":{}}}",
            json::fmt_f64(self.stats.mean),
            json::fmt_f64(self.stats.stddev),
            self.stats.min,
            self.stats.max,
            self.stats.median,
            self.stats.tries
        ));
        out
    }

    /// Parses one already-parsed JSON object as a history row.
    pub fn from_value(v: &Value) -> Result<HistoryRow, String> {
        let want_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("history row missing string '{key}'"))
        };
        let want_f64 = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("history row missing number '{key}'"))
        };
        let want_u64 = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("history row missing integer '{key}'"))
        };
        Ok(HistoryRow {
            commit: want_str("commit")?,
            date: want_str("date")?,
            key: want_str("key")?,
            timing: want_str("timing")?,
            stats: TimingStats {
                mean: want_f64("mean")?,
                stddev: want_f64("stddev")?,
                min: want_u64("min")?,
                max: want_u64("max")?,
                median: want_u64("median")?,
                tries: want_u64("tries")?.max(1),
            },
        })
    }

    /// Extracts all history rows from a JSON-lines log. Lines with
    /// other schemas are skipped; malformed JSON is an error.
    pub fn parse_jsonl(text: &str) -> Result<Vec<HistoryRow>, String> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if v.get("schema").and_then(Value::as_str) == Some(HISTORY_SCHEMA) {
                out.push(Self::from_value(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
            }
        }
        Ok(out)
    }
}

/// Distills run records into one history row per (key, timing),
/// pooling repeat records of the same key.
pub fn rows_from_records(records: &[RunRecord], commit: &str, date: &str) -> Vec<HistoryRow> {
    let mut grouped: BTreeMap<(String, String), Vec<TimingStats>> = BTreeMap::new();
    for r in records {
        for (timing, s) in &r.timings_ns {
            grouped.entry((r.key(), timing.clone())).or_default().push(*s);
        }
    }
    grouped
        .into_iter()
        .filter_map(|((key, timing), parts)| {
            TimingStats::pool(&parts).map(|stats| HistoryRow {
                commit: commit.to_string(),
                date: date.to_string(),
                key,
                timing,
                stats,
            })
        })
        .collect()
}

/// Appends one history row per (key, timing) of `records` to the
/// JSON-lines log at `path`. Returns the number of rows appended.
pub fn append_history(
    path: &str,
    records: &[RunRecord],
    commit: &str,
    date: &str,
) -> Result<usize, String> {
    use std::io::Write;
    let rows = rows_from_records(records, commit, date);
    let mut text = String::new();
    for row in &rows {
        text.push_str(&row.to_json_line());
        text.push('\n');
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .map_err(|e| format!("cannot append history to {path}: {e}"))?;
    Ok(rows.len())
}

/// One series of the trend: a (key, timing) across commits.
struct Series<'a> {
    key: &'a str,
    timing: &'a str,
    /// One slot per commit in the window (`None` when that commit has
    /// no observation for this series).
    points: Vec<Option<&'a TimingStats>>,
}

impl Series<'_> {
    fn label(&self) -> String {
        format!("{} :: {}", self.key, self.timing)
    }

    /// Relative mean change first → last observed point, if at least
    /// two points exist.
    fn first_to_last(&self) -> Option<f64> {
        let mut obs = self.points.iter().flatten();
        let first = obs.next()?;
        let last = obs.last()?;
        Some((last.mean - first.mean) / first.mean.max(1.0))
    }
}

/// The trend, resolved against a commit window.
struct Trend<'a> {
    /// (commit, date) in first-appearance order, windowed to last N.
    commits: Vec<(&'a str, &'a str)>,
    series: Vec<Series<'a>>,
}

fn resolve<'a>(rows: &'a [HistoryRow], last: usize) -> Trend<'a> {
    let mut commits: Vec<(&str, &str)> = Vec::new();
    for r in rows {
        if !commits.iter().any(|(c, _)| *c == r.commit) {
            commits.push((&r.commit, &r.date));
        }
    }
    let skip = commits.len().saturating_sub(last.max(1));
    let commits: Vec<(&str, &str)> = commits.into_iter().skip(skip).collect();
    let mut series: BTreeMap<(&str, &str), Vec<Option<&TimingStats>>> = BTreeMap::new();
    for r in rows {
        let Some(slot) = commits.iter().position(|(c, _)| *c == r.commit) else {
            continue;
        };
        let points = series.entry((&r.key, &r.timing)).or_insert_with(|| vec![None; commits.len()]);
        points[slot] = Some(&r.stats);
    }
    let series =
        series.into_iter().map(|((key, timing), points)| Series { key, timing, points }).collect();
    Trend { commits, series }
}

/// A series label paired with its first-to-last relative change.
type Mover = Option<(String, f64)>;

/// The extreme movers: (worst regression, best improvement) — `None`
/// when no series moved that way.
fn extremes(trend: &Trend<'_>) -> (Mover, Mover) {
    let mut worst: Mover = None;
    let mut best: Mover = None;
    for s in &trend.series {
        let Some(delta) = s.first_to_last() else { continue };
        if delta > 0.0 && worst.as_ref().is_none_or(|(_, d)| delta > *d) {
            worst = Some((s.label(), delta));
        }
        if delta < 0.0 && best.as_ref().is_none_or(|(_, d)| delta < *d) {
            best = Some((s.label(), delta));
        }
    }
    (worst, best)
}

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(points: &[Option<&TimingStats>]) -> String {
    let means: Vec<f64> = points.iter().flatten().map(|s| s.mean).collect();
    let (lo, hi) = means
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &m| (lo.min(m), hi.max(m)));
    points
        .iter()
        .map(|p| match p {
            None => '·',
            Some(_) if hi <= lo => SPARKS[3],
            Some(s) => {
                let level = ((s.mean - lo) / (hi - lo) * 7.0).round() as usize;
                SPARKS[level.min(7)]
            }
        })
        .collect()
}

/// Renders the ASCII sparkline table plus the movers summary.
pub fn render_ascii(rows: &[HistoryRow], last: usize) -> String {
    let trend = resolve(rows, last);
    let mut out = String::new();
    if trend.commits.is_empty() {
        out.push_str("perftrend: no history rows\n");
        return out;
    }
    let (first, last_commit) = (trend.commits[0], trend.commits[trend.commits.len() - 1]);
    out.push_str(&format!(
        "perf trend over {} commit{}: {} ({}) → {} ({})\n\n",
        trend.commits.len(),
        if trend.commits.len() == 1 { "" } else { "s" },
        first.0,
        first.1,
        last_commit.0,
        last_commit.1
    ));
    let label_w = trend.series.iter().map(|s| s.label().len()).max().unwrap_or(6).max(6);
    out.push_str(&format!(
        "{:<label_w$}  {:<width$}  {:>12}  {:>12}  {:>8}\n",
        "series",
        "trend",
        "first",
        "last",
        "Δ",
        width = trend.commits.len().max(5)
    ));
    for s in &trend.series {
        let mut obs = s.points.iter().flatten();
        let first = obs.next();
        let last_p = s.points.iter().flatten().next_back();
        let fmt = |p: Option<&&TimingStats>| {
            p.map_or_else(|| "-".to_string(), |s| format!("{:.3}ms", s.mean / 1e6))
        };
        let delta =
            s.first_to_last().map_or_else(|| "-".to_string(), |d| format!("{:+.1}%", d * 100.0));
        out.push_str(&format!(
            "{:<label_w$}  {:<width$}  {:>12}  {:>12}  {:>8}\n",
            s.label(),
            sparkline(&s.points),
            fmt(first),
            fmt(last_p),
            delta,
            width = trend.commits.len().max(5)
        ));
    }
    let (worst, best) = extremes(&trend);
    out.push('\n');
    match worst {
        Some((label, d)) => {
            out.push_str(&format!("worst regression:  {label} ({:+.1}%)\n", d * 100.0))
        }
        None => out.push_str("worst regression:  none\n"),
    }
    match best {
        Some((label, d)) => {
            out.push_str(&format!("best improvement:  {label} ({:+.1}%)\n", d * 100.0))
        }
        None => out.push_str("best improvement:  none\n"),
    }
    out
}

/// Renders a self-contained HTML page: one inline SVG per series
/// (mean line over the commit axis with a ±1 stddev band), plus the
/// movers summary. No scripts, no external assets.
pub fn render_html(rows: &[HistoryRow], last: usize) -> String {
    let trend = resolve(rows, last);
    let mut out = String::with_capacity(4096);
    out.push_str(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>tricount perf trend</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
         color:#1a1a2e;background:#fafafa}\n\
         h1{font-size:1.3rem}h2{font-size:0.95rem;font-family:ui-monospace,monospace;\
         margin:1.5rem 0 0.25rem}\n\
         .movers{background:#fff;border:1px solid #ddd;border-radius:6px;\
         padding:0.75rem 1rem}\n\
         .reg{color:#b02a2a}.imp{color:#1a7a4a}\n\
         svg{background:#fff;border:1px solid #ddd;border-radius:6px}\n\
         </style></head><body>\n<h1>tricount perf trend</h1>\n",
    );
    if trend.commits.is_empty() {
        out.push_str("<p>No history rows.</p></body></html>\n");
        return out;
    }
    let esc =
        |s: &str| -> String { s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;") };
    out.push_str(&format!(
        "<p>{} commit{}: <code>{}</code> ({}) → <code>{}</code> ({})</p>\n",
        trend.commits.len(),
        if trend.commits.len() == 1 { "" } else { "s" },
        esc(trend.commits[0].0),
        esc(trend.commits[0].1),
        esc(trend.commits[trend.commits.len() - 1].0),
        esc(trend.commits[trend.commits.len() - 1].1),
    ));
    let (worst, best) = extremes(&trend);
    out.push_str("<div class=\"movers\">");
    match worst {
        Some((label, d)) => out.push_str(&format!(
            "<div class=\"reg\">worst regression: {} ({:+.1}%)</div>",
            esc(&label),
            d * 100.0
        )),
        None => out.push_str("<div>worst regression: none</div>"),
    }
    match best {
        Some((label, d)) => out.push_str(&format!(
            "<div class=\"imp\">best improvement: {} ({:+.1}%)</div>",
            esc(&label),
            d * 100.0
        )),
        None => out.push_str("<div>best improvement: none</div>"),
    }
    out.push_str("</div>\n");
    for s in &trend.series {
        out.push_str(&format!("<h2>{}</h2>\n", esc(&s.label())));
        out.push_str(&series_svg(s, &trend.commits));
    }
    out.push_str("</body></html>\n");
    out
}

/// One series as an inline SVG: ±1σ band, mean polyline, point dots.
fn series_svg(s: &Series<'_>, commits: &[(&str, &str)]) -> String {
    const W: f64 = 720.0;
    const H: f64 = 150.0;
    const ML: f64 = 70.0; // left margin (y labels)
    const MR: f64 = 12.0;
    const MT: f64 = 10.0;
    const MB: f64 = 24.0; // bottom margin (commit labels)
    let obs: Vec<(usize, &TimingStats)> =
        s.points.iter().enumerate().filter_map(|(i, p)| p.map(|st| (i, st))).collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, st) in &obs {
        lo = lo.min(st.mean - st.stddev);
        hi = hi.max(st.mean + st.stddev);
    }
    if !lo.is_finite() || hi <= lo {
        let mid = obs.first().map_or(1.0, |(_, st)| st.mean);
        lo = mid * 0.9 - 1.0;
        hi = mid * 1.1 + 1.0;
    }
    let n = commits.len().max(2) as f64;
    let x = |i: usize| ML + (W - ML - MR) * i as f64 / (n - 1.0);
    let y = |v: f64| MT + (H - MT - MB) * (1.0 - (v - lo) / (hi - lo));
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         role=\"img\" aria-label=\"mean timing per commit\">\n"
    );
    // y-axis labels at the band extremes.
    for v in [lo, (lo + hi) / 2.0, hi] {
        svg.push_str(&format!(
            "<text x=\"{:.0}\" y=\"{:.1}\" font-size=\"10\" fill=\"#777\" \
             text-anchor=\"end\">{:.2}ms</text>\n",
            ML - 6.0,
            y(v) + 3.0,
            v / 1e6
        ));
        svg.push_str(&format!(
            "<line x1=\"{ML}\" y1=\"{0:.1}\" x2=\"{1}\" y2=\"{0:.1}\" \
             stroke=\"#eee\"/>\n",
            y(v),
            W - MR
        ));
    }
    // ±1σ band.
    if obs.len() > 1 {
        let mut band = String::from("<polygon fill=\"#7aa6d622\" stroke=\"none\" points=\"");
        for (i, st) in &obs {
            band.push_str(&format!("{:.1},{:.1} ", x(*i), y(st.mean + st.stddev)));
        }
        for (i, st) in obs.iter().rev() {
            band.push_str(&format!("{:.1},{:.1} ", x(*i), y(st.mean - st.stddev)));
        }
        band.push_str("\"/>\n");
        svg.push_str(&band);
    }
    // Mean polyline.
    if obs.len() > 1 {
        let pts: Vec<String> =
            obs.iter().map(|(i, st)| format!("{:.1},{:.1}", x(*i), y(st.mean))).collect();
        svg.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"#2a5d9c\" stroke-width=\"1.5\" points=\"{}\"/>\n",
            pts.join(" ")
        ));
    }
    for (i, st) in &obs {
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#2a5d9c\"><title>{}: \
             {:.3}ms ±{:.3} (n={})</title></circle>\n",
            x(*i),
            y(st.mean),
            commits[*i].0,
            st.mean / 1e6,
            st.stddev / 1e6,
            st.tries
        ));
    }
    // First/last commit labels.
    svg.push_str(&format!(
        "<text x=\"{ML}\" y=\"{:.0}\" font-size=\"10\" fill=\"#777\">{}</text>\n",
        H - 8.0,
        commits[0].0
    ));
    svg.push_str(&format!(
        "<text x=\"{:.0}\" y=\"{:.0}\" font-size=\"10\" fill=\"#777\" \
         text-anchor=\"end\">{}</text>\n",
        W - MR,
        H - 8.0,
        commits[commits.len() - 1].0
    ));
    svg.push_str("</svg>\n");
    svg
}

/// Command-line driver behind `tricount perftrend`. `args` excludes
/// the program / subcommand name. Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut file: Option<String> = None;
    let mut last = 20usize;
    let mut html: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--last" => {
                let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()).filter(|v| *v > 0)
                else {
                    eprintln!("perftrend: --last needs a positive integer");
                    return 2;
                };
                last = v;
            }
            "--html" => {
                let Some(p) = it.next() else {
                    eprintln!("perftrend: --html needs a path");
                    return 2;
                };
                html = Some(p.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other if other.starts_with('-') => {
                eprintln!("perftrend: unknown flag '{other}'\n{USAGE}");
                return 2;
            }
            path if file.is_none() => file = Some(path.to_string()),
            extra => {
                eprintln!("perftrend: unexpected argument '{extra}'\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("perftrend: need a history file\n{USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perftrend: cannot read {path}: {e}");
            return 2;
        }
    };
    let rows = match HistoryRow::parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perftrend: {path}: {e}");
            return 2;
        }
    };
    if rows.is_empty() {
        eprintln!("perftrend: {path} contains no {HISTORY_SCHEMA} rows");
        return 2;
    }
    print!("{}", render_ascii(&rows, last));
    if let Some(out) = html {
        if let Err(e) = std::fs::write(&out, render_html(&rows, last)) {
            eprintln!("perftrend: cannot write {out}: {e}");
            return 2;
        }
        println!("perftrend: wrote {out}");
    }
    0
}

const USAGE: &str = "usage: tricount perftrend <HISTORY.jsonl> [options]

Renders the per-commit perf trend recorded by `benchdiff --history`
(schema tc-bench-history-v1): an ASCII sparkline table per
(run, timing) series, flagging the worst regression and the best
improvement across the commit window.

options:
  --last <n>      window: last N commits (default 20)
  --html <path>   also write a self-contained HTML/SVG page
";

#[cfg(test)]
mod tests {
    use super::*;

    fn row(commit: &str, key: &str, timing: &str, means_ms: &[u64]) -> HistoryRow {
        let ns: Vec<u64> = means_ms.iter().map(|&m| m * 1_000_000).collect();
        HistoryRow {
            commit: commit.into(),
            date: format!("2026-08-0{}", (commit.len() % 9) + 1),
            key: key.into(),
            timing: timing.into(),
            stats: TimingStats::from_samples(&ns).unwrap(),
        }
    }

    #[test]
    fn history_rows_round_trip() {
        let r = row("abc1234", "g500-s8/2d/p16/default", "tct.wall_ns", &[100, 110, 90]);
        let line = r.to_json_line();
        assert!(line.contains(HISTORY_SCHEMA));
        let back = HistoryRow::parse_jsonl(&line).unwrap();
        assert_eq!(back, vec![r]);
        // Foreign schemas are skipped, garbage is not.
        let mixed = format!("{line}\n{{\"schema\":\"tc-run-v2\"}}\n");
        assert_eq!(HistoryRow::parse_jsonl(&mixed).unwrap().len(), 1);
        assert!(HistoryRow::parse_jsonl("nope\n").is_err());
    }

    #[test]
    fn ascii_render_flags_movers() {
        let rows = vec![
            row("c1", "a/2d/p4/default", "tct.wall_ns", &[100, 100, 100]),
            row("c1", "b/2d/p4/default", "tct.wall_ns", &[100, 100, 100]),
            row("c2", "a/2d/p4/default", "tct.wall_ns", &[150, 150, 150]),
            row("c2", "b/2d/p4/default", "tct.wall_ns", &[80, 80, 80]),
        ];
        let text = render_ascii(&rows, 20);
        assert!(text.contains("2 commits"), "{text}");
        assert!(
            text.contains("worst regression:  a/2d/p4/default :: tct.wall_ns (+50.0%)"),
            "{text}"
        );
        assert!(
            text.contains("best improvement:  b/2d/p4/default :: tct.wall_ns (-20.0%)"),
            "{text}"
        );
        assert!(text.contains('█') && text.contains('▁'), "{text}");
    }

    #[test]
    fn window_limits_commits() {
        let rows: Vec<HistoryRow> = (0..5)
            .map(|i| row(&format!("c{i}"), "a/2d/p4/x", "t_ns", &[100 + i, 100 + i]))
            .collect();
        let text = render_ascii(&rows, 2);
        assert!(text.contains("2 commits"), "{text}");
        assert!(text.contains("c3") && text.contains("c4"), "{text}");
        assert!(!text.contains("c0 "), "{text}");
    }

    #[test]
    fn html_is_self_contained_svg() {
        let rows = vec![
            row("c1", "a/2d/p4/default", "tct.wall_ns", &[100, 105, 95]),
            row("c2", "a/2d/p4/default", "tct.wall_ns", &[120, 125, 115]),
        ];
        let html = render_html(&rows, 20);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<svg"), "{html}");
        assert!(html.contains("polyline"), "{html}");
        assert!(!html.contains("<script"), "no scripts: {html}");
        assert!(html.contains("worst regression"), "{html}");
    }

    #[test]
    fn rows_from_records_pool_repeats() {
        let mut rec = RunRecord {
            dataset: "a".into(),
            algorithm: "2d".into(),
            ranks: 4,
            config: "default".into(),
            triangles: 1,
            counters: Default::default(),
            timings_ns: [("tct.wall_ns".to_string(), TimingStats::from_single(100))]
                .into_iter()
                .collect(),
        };
        let mut rec2 = rec.clone();
        rec2.timings_ns.insert("tct.wall_ns".into(), TimingStats::from_single(200));
        rec.timings_ns.insert("tct.cpu_ns".into(), TimingStats::from_single(50));
        let rows = rows_from_records(&[rec, rec2], "c9", "2026-08-08");
        assert_eq!(rows.len(), 2);
        let wall = rows.iter().find(|r| r.timing == "tct.wall_ns").unwrap();
        assert_eq!(wall.stats.tries, 2);
        assert_eq!(wall.commit, "c9");
    }
}
