//! # tc-metrics — per-rank metrics registry and regression engine
//!
//! The quantitative companion to `tc-trace`: where tracing records
//! *when* things happened, this crate records *how much* — operation
//! counts, probe counts, communicated bytes, task counts, buffer
//! high-water marks — the architecture-independent quantities the
//! paper's evaluation (Tables 1–5) is built on.
//!
//! Zero dependencies, same instrumentation discipline as `tc-trace`:
//!
//! - when no [`MetricsSession`] is live, every instrumentation point
//!   costs exactly one relaxed atomic load ([`enabled`]);
//! - threads record only after being bound to a rank via
//!   [`MetricsHandle::register_rank`], so concurrent universes in one
//!   test process cannot contaminate each other;
//! - a finished session drains into a [`MetricsSnapshot`] with two
//!   exporters: a schema-versioned JSON document
//!   ([`MetricsSnapshot::to_json`]) and a Prometheus-style text
//!   exposition ([`prometheus::to_prometheus`]).
//!
//! On top of the registry sit benchmark [`report::RunRecord`]s
//! (JSON-lines, one per run) and the [`diff`] engine (`benchdiff`):
//! noise-aware comparison that hard-fails on any drift in
//! deterministic counters and applies a median/relative-tolerance
//! test to wall-clock timings.

pub mod diff;
pub mod histogram;
pub mod json;
pub mod mem;
pub mod prometheus;
pub mod registry;
pub mod report;
pub mod snapshot;
pub mod stats;
pub mod trend;

pub use histogram::Log2Histogram;
pub use mem::MemScope;
pub use registry::{
    counter_add, enabled, gauge_max, gauge_set, hist_record, hist_touch, values_recorded_total,
    MetricsHandle, MetricsSession, RankGuard,
};
pub use report::RunRecord;
pub use snapshot::{MetricValue, MetricsSnapshot};
pub use stats::{welch_t, TimingStats, Welford};

/// Well-known metric names, shared by every instrumented layer so
/// exporters, tests and docs agree on spelling.
pub mod names {
    // mps runtime (fed natively by `tc_mps::Universe`).
    pub const MPS_BYTES_SENT: &str = "mps.bytes_sent";
    pub const MPS_MSGS_SENT: &str = "mps.msgs_sent";
    pub const MPS_BYTES_RECV: &str = "mps.bytes_recv";
    pub const MPS_MSGS_RECV: &str = "mps.msgs_recv";
    pub const MPS_SEND_NS: &str = "mps.send_ns";
    pub const MPS_RECV_NS: &str = "mps.recv_ns";
    pub const MPS_COLLECTIVES: &str = "mps.collectives";

    // Reliable-delivery transport (fed by `tc_mps` only when a fault
    // plan is installed; clean runs must report all of these as zero —
    // see [`MPS_RELIABILITY`]).
    pub const MPS_REL_FRAMES_SENT: &str = "mps.rel.frames_sent";
    pub const MPS_REL_RETRANSMITS: &str = "mps.rel.retransmits";
    pub const MPS_REL_NACKS: &str = "mps.rel.nacks";
    pub const MPS_REL_CORRUPT_FRAMES: &str = "mps.rel.corrupt_frames";
    pub const MPS_REL_DUP_FRAMES: &str = "mps.rel.dup_frames";
    pub const MPS_REL_REORDERED_FRAMES: &str = "mps.rel.reordered_frames";
    pub const MPS_REL_REORDER_DEPTH_MAX: &str = "mps.rel.reorder_depth_max";
    pub const MPS_REL_INJECTED_DROPS: &str = "mps.rel.injected_drops";
    pub const MPS_REL_INJECTED_DUPS: &str = "mps.rel.injected_dups";
    pub const MPS_REL_INJECTED_REORDERS: &str = "mps.rel.injected_reorders";
    pub const MPS_REL_INJECTED_DELAYS: &str = "mps.rel.injected_delays";
    pub const MPS_REL_INJECTED_CORRUPTIONS: &str = "mps.rel.injected_corruptions";
    pub const MPS_REL_REORDER_EVICTED: &str = "mps.rel.reorder_evicted";
    /// Per-link reliable-transport sequence-state resets performed when
    /// a surviving rank reconnects at a bumped epoch (one per peer
    /// link). Zero unless a rank crashed and the fleet rejoined.
    pub const MPS_REL_EPOCH_RESETS: &str = "mps.rel.epoch_resets";

    /// Every reliable-delivery counter, plus the crash-recovery pair
    /// ([`MPS_REL_EPOCH_RESETS`], [`MPS_FABRIC_REJOINS`]). Benchmark
    /// records default each of these to zero so a clean (chaos-off,
    /// crash-free) run *proves* the transport stayed out of the way —
    /// the counters are present and zero, not merely absent.
    pub const MPS_RELIABILITY: &[&str] = &[
        MPS_REL_FRAMES_SENT,
        MPS_REL_RETRANSMITS,
        MPS_REL_NACKS,
        MPS_REL_CORRUPT_FRAMES,
        MPS_REL_DUP_FRAMES,
        MPS_REL_REORDERED_FRAMES,
        MPS_REL_REORDER_DEPTH_MAX,
        MPS_REL_INJECTED_DROPS,
        MPS_REL_INJECTED_DUPS,
        MPS_REL_INJECTED_REORDERS,
        MPS_REL_INJECTED_DELAYS,
        MPS_REL_INJECTED_CORRUPTIONS,
        MPS_REL_REORDER_EVICTED,
        MPS_REL_EPOCH_RESETS,
        MPS_FABRIC_REJOINS,
    ];

    // Socket fabric wire counters (fed by `tc_mps` only on the
    // multi-process socket backend; zero/absent on in-process runs).
    pub const MPS_FABRIC_CONNECTS: &str = "mps.fabric.connects";
    pub const MPS_FABRIC_ACCEPTS: &str = "mps.fabric.accepts";
    pub const MPS_FABRIC_HANDSHAKES: &str = "mps.fabric.handshakes";
    pub const MPS_FABRIC_WIRE_MSGS_SENT: &str = "mps.fabric.wire_msgs_sent";
    pub const MPS_FABRIC_WIRE_BYTES_SENT: &str = "mps.fabric.wire_bytes_sent";
    pub const MPS_FABRIC_WIRE_MSGS_RECV: &str = "mps.fabric.wire_msgs_recv";
    pub const MPS_FABRIC_WIRE_BYTES_RECV: &str = "mps.fabric.wire_bytes_recv";
    pub const MPS_FABRIC_ACKS_SENT: &str = "mps.fabric.acks_sent";
    pub const MPS_FABRIC_NACKS_SENT: &str = "mps.fabric.nacks_sent";
    /// Fleet rejoins: a surviving rank reconnected its socket fabric at
    /// a bumped epoch after a peer crashed. Zero in crash-free runs.
    pub const MPS_FABRIC_REJOINS: &str = "mps.fabric.rejoins";

    // Phase timings (per rank, nanoseconds).
    pub const PPT_WALL_NS: &str = "ppt.wall_ns";
    pub const PPT_CPU_NS: &str = "ppt.cpu_ns";
    pub const PPT_COMM_NS: &str = "ppt.comm_ns";
    pub const TCT_WALL_NS: &str = "tct.wall_ns";
    pub const TCT_CPU_NS: &str = "tct.cpu_ns";
    pub const TCT_COMM_NS: &str = "tct.comm_ns";

    // Deterministic kernel quantities (paper Tables 3–4).
    pub const PPT_OPS: &str = "ppt.ops";
    pub const TCT_OPS: &str = "tct.ops";
    pub const TCT_TASKS: &str = "tct.tasks";
    pub const TCT_PROBES: &str = "tct.probes";
    pub const TCT_LOOKUPS: &str = "tct.lookups";
    pub const TCT_DIRECT_ROWS: &str = "tct.direct_rows";
    pub const TCT_PROBED_ROWS: &str = "tct.probed_rows";
    pub const TCT_TRIANGLES: &str = "tct.triangles";

    // Adaptive intersection-kernel dispatch (deterministic: the
    // strategy choice is a pure function of block shapes). The
    // `*_lookups` tallies partition `tct.lookups` exactly.
    pub const TCT_KERNEL_HASH_TASKS: &str = "tct.kernel.hash_tasks";
    pub const TCT_KERNEL_MERGE_TASKS: &str = "tct.kernel.merge_tasks";
    pub const TCT_KERNEL_BITMAP_TASKS: &str = "tct.kernel.bitmap_tasks";
    pub const TCT_KERNEL_BITMAP_ROWS: &str = "tct.kernel.bitmap_rows";
    pub const TCT_KERNEL_HASH_LOOKUPS: &str = "tct.kernel.hash_lookups";
    pub const TCT_KERNEL_MERGE_LOOKUPS: &str = "tct.kernel.merge_lookups";
    pub const TCT_KERNEL_BITMAP_LOOKUPS: &str = "tct.kernel.bitmap_lookups";
    /// Task-row loads served by the map's consecutive-row reuse cache.
    pub const TCT_KERNEL_MAP_REUSES: &str = "tct.kernel.map_reuses";

    /// Every adaptive-kernel counter. Counting runs pre-seed all of
    /// these to zero (present-and-zero, like [`MPS_RELIABILITY`]), so
    /// a row produced under `--kernel hash` still *proves* no fast
    /// path engaged rather than silently omitting the family.
    pub const TCT_KERNEL: &[&str] = &[
        TCT_KERNEL_HASH_TASKS,
        TCT_KERNEL_MERGE_TASKS,
        TCT_KERNEL_BITMAP_TASKS,
        TCT_KERNEL_BITMAP_ROWS,
        TCT_KERNEL_HASH_LOOKUPS,
        TCT_KERNEL_MERGE_LOOKUPS,
        TCT_KERNEL_BITMAP_LOOKUPS,
        TCT_KERNEL_MAP_REUSES,
    ];

    // Per-shift distributions and hash-table shape.
    pub const SHIFT_BYTES: &str = "tct.shift_bytes";
    pub const SHIFT_COMPUTE_NS: &str = "tct.shift_compute_ns";
    /// Bytes pushed through `to_blob` serialization in the counting
    /// phase. Deterministic: the zero-copy pipeline serializes each
    /// operand once (at the skew / panel root) instead of once per
    /// shift, so this counter is the before/after of the optimization.
    pub const SHIFT_BYTES_SERIALIZED: &str = "tct.shift_bytes_serialized";
    /// Wall time between posting a shift exchange and starting to wait
    /// on it — the window in which the transfer ran under compute.
    pub const SHIFT_OVERLAP_WINDOW_NS: &str = "tct.shift_overlap_window_ns";
    pub const HASH_SLOTS: &str = "tct.hash_slots";
    pub const HASH_MAX_ROW: &str = "tct.hash_max_row";
    pub const HASH_LOAD_PCT: &str = "tct.hash_load_pct";

    // High-water memory scopes (bytes).
    pub const MEM_PREP_STAGING: &str = "mem.prep_staging";
    pub const MEM_SHIFT_STAGING: &str = "mem.shift_staging";
    pub const MEM_SUMMA_PANELS: &str = "mem.summa_panels";

    // 1D baseline phases.
    pub const BASE_SETUP_NS: &str = "base.setup_ns";
    pub const BASE_COUNT_NS: &str = "base.count_ns";
    pub const BASE_GHOST_ENTRIES: &str = "base.ghost_entries";

    // Always-on analytics service (`tc-serve`).
    /// Update batches applied through the incremental delta path.
    pub const SERVE_BATCHES_APPLIED: &str = "serve.batches_applied";
    /// Net edge inserts applied (after batch normalization).
    pub const SERVE_EDGES_INSERTED: &str = "serve.edges_inserted";
    /// Net edge deletes applied (after batch normalization).
    pub const SERVE_EDGES_DELETED: &str = "serve.edges_deleted";
    /// Neighborhood intersections evaluated by the delta kernel.
    pub const SERVE_DELTA_INTERSECTIONS: &str = "serve.delta_intersections";
    /// `count` queries answered.
    pub const SERVE_QUERIES_COUNT: &str = "serve.queries_count";
    /// `support` queries answered.
    pub const SERVE_QUERIES_SUPPORT: &str = "serve.queries_support";
    /// `truss` queries answered.
    pub const SERVE_QUERIES_TRUSS: &str = "serve.queries_truss";
    /// `stats`/`metrics` queries answered.
    pub const SERVE_QUERIES_STATS: &str = "serve.queries_stats";
    /// Requests rejected by admission control (typed `over_capacity`).
    pub const SERVE_REJECTED_QUERIES: &str = "serve.rejected_queries";
    /// Full 2D recounts executed. Pinned to the cold-start value in
    /// steady state — the incremental path must never fall back to a
    /// recount on the hot path.
    pub const SERVE_FULL_RECOUNTS: &str = "serve.full_recounts";
    /// Queries answered with a typed `degraded` reply because a peer
    /// rank was down. Zero in crash-free runs.
    pub const SERVE_DEGRADED_QUERIES: &str = "serve.degraded_queries";
    /// Update batches buffered (or rejected) while a peer rank was
    /// down instead of being applied immediately. Zero in crash-free
    /// runs.
    pub const SERVE_DEGRADED_UPDATES: &str = "serve.degraded_updates";
    /// Rank recoveries completed: a respawned or surviving rank
    /// restored durable state and passed the fingerprint check at a
    /// bumped epoch. Zero in crash-free runs.
    pub const SERVE_RECOVERIES: &str = "serve.recoveries";
    /// Normalized batch size distribution (net ops per applied batch).
    pub const SERVE_BATCH_SIZE: &str = "serve.batch_size";
    /// Batch apply latency distribution (nanoseconds).
    pub const SERVE_BATCH_APPLY_NS: &str = "serve.batch_apply_ns";

    // Per-query latency distributions (nanoseconds), one per query
    // op. Pre-seeded by the service frontend so exports show every op
    // at zero even before its first query — see [`SERVE_QUERY_LATENCY`].
    pub const SERVE_QUERY_LATENCY_COUNT_NS: &str = "serve.query_latency.count_ns";
    pub const SERVE_QUERY_LATENCY_SUPPORT_NS: &str = "serve.query_latency.support_ns";
    pub const SERVE_QUERY_LATENCY_TRUSS_NS: &str = "serve.query_latency.truss_ns";
    pub const SERVE_QUERY_LATENCY_STATS_NS: &str = "serve.query_latency.stats_ns";

    /// Every per-query latency histogram the service records.
    pub const SERVE_QUERY_LATENCY: &[&str] = &[
        SERVE_QUERY_LATENCY_COUNT_NS,
        SERVE_QUERY_LATENCY_SUPPORT_NS,
        SERVE_QUERY_LATENCY_TRUSS_NS,
        SERVE_QUERY_LATENCY_STATS_NS,
    ];

    /// Every deterministic `serve.*` counter, plus the `.count`
    /// projections of the service histograms (batch size and the
    /// per-op query latencies). Benchmark records default each of
    /// these to zero so an offline (batch) run *proves* the service
    /// layer stayed out of the way, and service runs always report
    /// the full family — present-and-zero, not absent.
    pub const SERVE: &[&str] = &[
        SERVE_BATCHES_APPLIED,
        SERVE_EDGES_INSERTED,
        SERVE_EDGES_DELETED,
        SERVE_DELTA_INTERSECTIONS,
        SERVE_QUERIES_COUNT,
        SERVE_QUERIES_SUPPORT,
        SERVE_QUERIES_TRUSS,
        SERVE_QUERIES_STATS,
        SERVE_REJECTED_QUERIES,
        SERVE_FULL_RECOUNTS,
        SERVE_DEGRADED_QUERIES,
        SERVE_DEGRADED_UPDATES,
        SERVE_RECOVERIES,
        "serve.batch_size.count",
        "serve.batch_size.sum",
        "serve.query_latency.count_ns.count",
        "serve.query_latency.support_ns.count",
        "serve.query_latency.truss_ns.count",
        "serve.query_latency.stats_ns.count",
    ];
}
