//! `benchdiff`: noise-aware comparison of benchmark reports.
//!
//! Runs are matched by their `(dataset, algorithm, ranks, config)`
//! key. Two regimes apply:
//!
//! - **deterministic quantities** (triangle counts and every entry in
//!   `counters`: ops, probes, bytes, tasks, …) must match *exactly* —
//!   the generators are seeded and the kernels deterministic, so any
//!   drift is a real behavior change, not noise;
//! - **timings** with repeat tries on both sides get an effect-size
//!   verdict: a change only fails when the means are separated by
//!   more than `--sigmas` combined standard errors (Welch's t — the
//!   `mean ± k·se` intervals are disjoint) *and* the relative shift
//!   exceeds `--min-effect`. Single-shot rows (tries = 1, e.g. from a
//!   legacy `tc-run-v1` baseline) fall back to the fixed `--tol`
//!   band on medians, and sub-threshold durations are ignored
//!   entirely — wall clocks on shared CI runners are noisy.
//!
//! The driver ([`cli_main`]) backs both the `benchdiff` binary in
//! `tc-bench` and the `tricount benchdiff` subcommand. With
//! `--history` it also appends each blessed candidate's timing rows
//! to the per-commit trend log that `tricount perftrend` renders.

use std::collections::BTreeMap;

use crate::report::RunRecord;
use crate::stats::{self, TimingStats};

/// Comparison tunables.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative tolerance for timing regressions (0.25 = +25%) —
    /// the fallback rule for rows without spread (tries = 1).
    pub tolerance: f64,
    /// Skip timing comparison entirely (cross-machine baselines).
    pub deterministic_only: bool,
    /// Timings where both means are below this are never compared.
    pub min_timing_ns: u64,
    /// Effect-size rule: a shift must exceed this many combined
    /// standard errors (Welch's t) to count at all.
    pub sigmas: f64,
    /// Effect-size rule: and the relative mean shift must exceed this
    /// fraction (statistically significant but trivial shifts pass).
    pub min_effect: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.25,
            deterministic_only: false,
            min_timing_ns: 1_000_000,
            sigmas: 3.0,
            min_effect: 0.02,
        }
    }
}

/// Outcome of one comparison row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    Pass,
    /// Passed, and meaningfully faster than baseline.
    Improved,
    Fail,
}

impl RowStatus {
    fn label(self) -> &'static str {
        match self {
            RowStatus::Pass => "ok",
            RowStatus::Improved => "improved",
            RowStatus::Fail => "FAIL",
        }
    }
}

/// One comparison result line.
#[derive(Debug, Clone)]
pub struct DiffRow {
    pub key: String,
    pub metric: String,
    pub base: String,
    pub cand: String,
    pub status: RowStatus,
    pub note: String,
}

/// The full comparison outcome.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub rows: Vec<DiffRow>,
    /// Keys present in both reports.
    pub compared: usize,
    /// Failing rows.
    pub failures: usize,
}

impl DiffReport {
    /// Overall verdict: no failures and at least one key compared.
    pub fn pass(&self) -> bool {
        self.failures == 0 && self.compared > 0
    }

    fn verdict(&self) -> &'static str {
        if self.pass() {
            "PASS"
        } else {
            "FAIL"
        }
    }

    /// Human-readable table plus verdict line.
    pub fn render(&self) -> String {
        let headers = ["run", "metric", "baseline", "candidate", "status", "note"];
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<[String; 6]> = self
            .rows
            .iter()
            .map(|r| {
                [
                    r.key.clone(),
                    r.metric.clone(),
                    r.base.clone(),
                    r.cand.clone(),
                    r.status.label().to_string(),
                    r.note.clone(),
                ]
            })
            .collect();
        for row in &cells {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cols: &[&str], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cols.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &cells {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            out.push_str(&fmt_row(&refs, &widths));
            out.push('\n');
        }
        out.push_str(&format!(
            "benchdiff: {} ({} runs compared, {} failure{})\n",
            self.verdict(),
            self.compared,
            self.failures,
            if self.failures == 1 { "" } else { "s" }
        ));
        out
    }

    /// Machine-readable verdict document.
    pub fn verdict_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"tc-benchdiff-v1\",\"verdict\":\"");
        out.push_str(self.verdict());
        out.push_str(&format!(
            "\",\"compared\":{},\"failures\":{},\"rows\":[",
            self.compared, self.failures
        ));
        let mut first = true;
        for r in self.rows.iter().filter(|r| r.status == RowStatus::Fail) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"run\":\"");
            crate::json::escape_into(&mut out, &r.key);
            out.push_str("\",\"metric\":\"");
            crate::json::escape_into(&mut out, &r.metric);
            out.push_str("\",\"baseline\":\"");
            crate::json::escape_into(&mut out, &r.base);
            out.push_str("\",\"candidate\":\"");
            crate::json::escape_into(&mut out, &r.cand);
            out.push_str("\",\"note\":\"");
            crate::json::escape_into(&mut out, &r.note);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

/// Groups records by run key, preserving repeat order.
fn group(records: &[RunRecord]) -> BTreeMap<String, Vec<&RunRecord>> {
    let mut out: BTreeMap<String, Vec<&RunRecord>> = BTreeMap::new();
    for r in records {
        out.entry(r.key()).or_default().push(r);
    }
    out
}

/// Pools the timing `name` across repeat records of one key, if any
/// repeat has it.
fn pooled_timing(repeats: &[&RunRecord], name: &str) -> Option<TimingStats> {
    let parts: Vec<TimingStats> =
        repeats.iter().filter_map(|r| r.timings_ns.get(name).copied()).collect();
    TimingStats::pool(&parts)
}

/// The timing verdict: effect size when both sides carry spread,
/// fixed relative band on medians otherwise.
fn timing_verdict(
    base: &TimingStats,
    cand: &TimingStats,
    opts: &DiffOptions,
) -> (RowStatus, String) {
    if let Some(t) = stats::welch_t(base, cand) {
        let rel = (cand.mean - base.mean) / base.mean.max(1.0);
        if t > opts.sigmas && rel > opts.min_effect {
            (
                RowStatus::Fail,
                format!("+{:.1}% slower (t={:.1} > {:.1}σ)", rel * 100.0, t, opts.sigmas),
            )
        } else if t < -opts.sigmas && rel < -opts.min_effect {
            (RowStatus::Improved, format!("{:.1}% (t={:.1})", rel * 100.0, t))
        } else {
            (RowStatus::Pass, format!("indistinguishable (t={t:.1})"))
        }
    } else {
        let (bm, cm) = (base.median, cand.median);
        let delta = (cm as f64 - bm as f64) / (bm.max(1) as f64);
        if delta > opts.tolerance {
            (
                RowStatus::Fail,
                format!("+{:.1}% exceeds ±{:.0}% tolerance", delta * 100.0, opts.tolerance * 100.0),
            )
        } else if delta < -opts.tolerance {
            (RowStatus::Improved, format!("{:.1}%", delta * 100.0))
        } else {
            (RowStatus::Pass, String::new())
        }
    }
}

/// Checks that every repeat of one key agrees on a deterministic
/// quantity; returns the agreed value or an error note.
fn agreed<'a, T: PartialEq + Copy + std::fmt::Display>(
    repeats: &[&'a RunRecord],
    get: impl Fn(&'a RunRecord) -> Option<T>,
) -> Result<Option<T>, String> {
    let mut found: Option<T> = None;
    for &r in repeats {
        match (found, get(r)) {
            (None, v) => found = v,
            (Some(a), Some(b)) if a != b => {
                return Err(format!("nondeterministic across repeats ({a} vs {b})"));
            }
            _ => {}
        }
    }
    Ok(found)
}

/// Compares `cand` against `base`.
pub fn diff_reports(base: &[RunRecord], cand: &[RunRecord], opts: &DiffOptions) -> DiffReport {
    let base_runs = group(base);
    let cand_runs = group(cand);
    let mut report = DiffReport::default();
    let mut push = |report: &mut DiffReport, row: DiffRow| {
        if row.status == RowStatus::Fail {
            report.failures += 1;
        }
        report.rows.push(row);
    };
    for (key, b) in &base_runs {
        let Some(c) = cand_runs.get(key) else {
            push(
                &mut report,
                DiffRow {
                    key: key.clone(),
                    metric: "<run>".into(),
                    base: "present".into(),
                    cand: "missing".into(),
                    status: RowStatus::Fail,
                    note: "run missing from candidate report".into(),
                },
            );
            continue;
        };
        report.compared += 1;
        let mut ok_counters = 0usize;
        let mut ok_timings = 0usize;

        // Triangle counts: the correctness anchor, exact.
        compare_exact(
            &mut report,
            &mut push,
            &mut ok_counters,
            key,
            "triangles",
            agreed(b, |r| Some(r.triangles)),
            agreed(c, |r| Some(r.triangles)),
        );

        // Deterministic counters: exact, and the candidate must still
        // report everything the baseline did.
        let mut names: Vec<&String> = b[0].counters.keys().collect();
        names.sort_unstable();
        for name in names {
            compare_exact(
                &mut report,
                &mut push,
                &mut ok_counters,
                key,
                name,
                agreed(b, |r| r.counters.get(name.as_str()).copied()),
                agreed(c, |r| r.counters.get(name.as_str()).copied()),
            );
        }

        // Timings: effect size (or the tolerance fallback).
        if !opts.deterministic_only {
            let mut tnames: Vec<&String> = b[0].timings_ns.keys().collect();
            tnames.sort_unstable();
            for name in tnames {
                let (Some(bs), Some(cs)) = (pooled_timing(b, name), pooled_timing(c, name)) else {
                    continue;
                };
                if bs.mean.max(cs.mean) < opts.min_timing_ns as f64 {
                    ok_timings += 1;
                    continue;
                }
                let (status, note) = timing_verdict(&bs, &cs, opts);
                if status == RowStatus::Pass {
                    ok_timings += 1;
                } else {
                    push(
                        &mut report,
                        DiffRow {
                            key: key.clone(),
                            metric: name.clone(),
                            base: bs.fmt_ms(),
                            cand: cs.fmt_ms(),
                            status,
                            note,
                        },
                    );
                }
            }
        }

        push(
            &mut report,
            DiffRow {
                key: key.clone(),
                metric: "<summary>".into(),
                base: String::new(),
                cand: String::new(),
                status: RowStatus::Pass,
                note: format!("{ok_counters} deterministic exact, {ok_timings} timings in band"),
            },
        );
    }
    for key in cand_runs.keys() {
        if !base_runs.contains_key(key) {
            report.rows.push(DiffRow {
                key: key.clone(),
                metric: "<run>".into(),
                base: "missing".into(),
                cand: "present".into(),
                status: RowStatus::Pass,
                note: "new run (not in baseline)".into(),
            });
        }
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn compare_exact(
    report: &mut DiffReport,
    push: &mut impl FnMut(&mut DiffReport, DiffRow),
    ok_count: &mut usize,
    key: &str,
    name: &str,
    base: Result<Option<u64>, String>,
    cand: Result<Option<u64>, String>,
) {
    let fail = |b: String, c: String, note: String| DiffRow {
        key: key.to_string(),
        metric: name.to_string(),
        base: b,
        cand: c,
        status: RowStatus::Fail,
        note,
    };
    match (base, cand) {
        (Err(note), _) => push(report, fail("?".into(), String::new(), format!("baseline {note}"))),
        (_, Err(note)) => {
            push(report, fail(String::new(), "?".into(), format!("candidate {note}")))
        }
        (Ok(Some(b)), Ok(Some(c))) if b != c => {
            push(report, fail(b.to_string(), c.to_string(), "deterministic counter drift".into()))
        }
        (Ok(Some(_)), Ok(None)) => push(
            report,
            fail("present".into(), "missing".into(), "counter absent from candidate".into()),
        ),
        _ => *ok_count += 1,
    }
}

/// Command-line driver shared by the `benchdiff` binary and the
/// `tricount benchdiff` subcommand. `args` excludes the program /
/// subcommand name. Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut files: Vec<String> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut verdict_json: Option<String> = None;
    let mut history: Option<String> = None;
    let mut commit: Option<String> = None;
    let mut date: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" | "--tolerance" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("benchdiff: --tol needs a number (e.g. 0.25)");
                    return 2;
                };
                opts.tolerance = v;
            }
            "--min-timing-ms" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("benchdiff: --min-timing-ms needs a number");
                    return 2;
                };
                opts.min_timing_ns = (v * 1e6) as u64;
            }
            "--sigmas" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()).filter(|v| *v > 0.0)
                else {
                    eprintln!("benchdiff: --sigmas needs a positive number (e.g. 3)");
                    return 2;
                };
                opts.sigmas = v;
            }
            "--min-effect" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()).filter(|v| *v >= 0.0)
                else {
                    eprintln!("benchdiff: --min-effect needs a non-negative fraction");
                    return 2;
                };
                opts.min_effect = v;
            }
            "--deterministic-only" => opts.deterministic_only = true,
            "--verdict-json" => {
                let Some(p) = it.next() else {
                    eprintln!("benchdiff: --verdict-json needs a path");
                    return 2;
                };
                verdict_json = Some(p.clone());
            }
            "--history" => {
                let Some(p) = it.next() else {
                    eprintln!("benchdiff: --history needs a path");
                    return 2;
                };
                history = Some(p.clone());
            }
            "--commit" => {
                let Some(p) = it.next() else {
                    eprintln!("benchdiff: --commit needs a revision id");
                    return 2;
                };
                commit = Some(p.clone());
            }
            "--date" => {
                let Some(p) = it.next() else {
                    eprintln!("benchdiff: --date needs an ISO date");
                    return 2;
                };
                date = Some(p.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other if other.starts_with('-') => {
                eprintln!("benchdiff: unknown flag '{other}'\n{USAGE}");
                return 2;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.len() < 2 {
        eprintln!("benchdiff: need a baseline and at least one candidate report\n{USAGE}");
        return 2;
    }
    let load = |path: &str| -> Result<Vec<RunRecord>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        RunRecord::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
    };
    let base = match load(&files[0]) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchdiff: {e}");
            return 2;
        }
    };
    let mut cand = Vec::new();
    for path in &files[1..] {
        match load(path) {
            Ok(r) => cand.extend(r),
            Err(e) => {
                eprintln!("benchdiff: {e}");
                return 2;
            }
        }
    }
    if base.is_empty() {
        eprintln!("benchdiff: baseline {} contains no run records", files[0]);
        return 2;
    }
    if history.is_some() && (commit.is_none() || date.is_none()) {
        eprintln!("benchdiff: --history requires --commit and --date");
        return 2;
    }
    let report = diff_reports(&base, &cand, &opts);
    print!("{}", report.render());
    if let Some(path) = verdict_json {
        if let Err(e) = std::fs::write(&path, report.verdict_json() + "\n") {
            eprintln!("benchdiff: cannot write {path}: {e}");
            return 2;
        }
    }
    if report.pass() {
        if let (Some(path), Some(commit), Some(date)) = (history, commit, date) {
            match crate::trend::append_history(&path, &cand, &commit, &date) {
                Ok(n) => println!("benchdiff: appended {n} history rows to {path}"),
                Err(e) => {
                    eprintln!("benchdiff: {e}");
                    return 2;
                }
            }
        }
        0
    } else {
        1
    }
}

const USAGE: &str = "usage: benchdiff <BASELINE.jsonl> <CANDIDATE.jsonl>... [options]

Compares benchmark run records (schema tc-run-v2, legacy tc-run-v1
accepted) matched by (dataset, algorithm, ranks, config).
Deterministic counters and triangle counts must match exactly.
Timings with repeat tries on both sides use an effect-size verdict
(Welch's t beyond --sigmas AND a relative shift beyond --min-effect);
single-shot rows fall back to the fixed --tol band on medians.

options:
  --tol <frac>            fallback timing tolerance for tries=1 rows
                          (default 0.25 = ±25%)
  --sigmas <k>            effect-size threshold in combined standard
                          errors (default 3)
  --min-effect <frac>     minimum relative shift that counts
                          (default 0.02 = 2%)
  --min-timing-ms <ms>    ignore timings below this (default 1.0)
  --deterministic-only    skip timing comparison (cross-machine)
  --verdict-json <path>   write machine-readable verdict
  --history <path>        on PASS, append candidate timing rows to
                          this trend log (requires --commit/--date)
  --commit <rev>          commit id recorded in history rows
  --date <iso>            ISO date recorded in history rows
";

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(dataset: &str, ops: u64, wall_ms: u64) -> RunRecord {
        RunRecord {
            dataset: dataset.into(),
            algorithm: "2d".into(),
            ranks: 16,
            config: "default".into(),
            triangles: 999,
            counters: [("tct.ops".to_string(), ops)].into_iter().collect(),
            timings_ns: [("tct.wall".to_string(), TimingStats::from_single(wall_ms * 1_000_000))]
                .into_iter()
                .collect(),
        }
    }

    /// One 5-try record whose wall timing summarizes `wall_ms`.
    fn rec_tries(dataset: &str, wall_ms: &[u64]) -> RunRecord {
        let ns: Vec<u64> = wall_ms.iter().map(|&m| m * 1_000_000).collect();
        let mut r = rec(dataset, 100, wall_ms[0]);
        r.timings_ns = [("tct.wall".to_string(), TimingStats::from_samples(&ns).unwrap())]
            .into_iter()
            .collect();
        r
    }

    #[test]
    fn identical_reports_pass() {
        let base = vec![rec("a", 100, 50), rec("b", 200, 80)];
        let report = diff_reports(&base, &base.clone(), &DiffOptions::default());
        assert!(report.pass(), "{}", report.render());
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn counter_drift_fails_hard() {
        let base = vec![rec("a", 100, 50)];
        let mut cand = base.clone();
        cand[0].counters.insert("tct.ops".into(), 101);
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass());
        assert!(report.render().contains("deterministic counter drift"));
    }

    #[test]
    fn triangle_mismatch_fails_hard() {
        let base = vec![rec("a", 100, 50)];
        let mut cand = base.clone();
        cand[0].triangles = 998;
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass());
    }

    #[test]
    fn timing_regression_beyond_tolerance_fails() {
        let base = vec![rec("a", 100, 100)];
        let cand = vec![rec("a", 100, 140)];
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass(), "{}", report.render());
        assert!(report.render().contains("tolerance"));
        // Same inflation under --deterministic-only is ignored.
        let opts = DiffOptions { deterministic_only: true, ..DiffOptions::default() };
        assert!(diff_reports(&base, &cand, &opts).pass());
    }

    #[test]
    fn timing_within_tolerance_or_below_floor_passes() {
        let base = vec![rec("a", 100, 100)];
        let cand = vec![rec("a", 100, 110)];
        assert!(diff_reports(&base, &cand, &DiffOptions::default()).pass());
        // Sub-floor timings never compare, no matter the ratio.
        let base = vec![rec("a", 100, 0)];
        let cand = vec![rec("a", 100, 0)];
        assert!(diff_reports(&base, &cand, &DiffOptions::default()).pass());
    }

    #[test]
    fn timings_use_median_of_repeats() {
        // Candidate has one noisy outlier; medians still agree.
        let base = vec![rec("a", 100, 100), rec("a", 100, 102), rec("a", 100, 98)];
        let cand = vec![rec("a", 100, 101), rec("a", 100, 400), rec("a", 100, 99)];
        assert!(diff_reports(&base, &cand, &DiffOptions::default()).pass());
    }

    #[test]
    fn nondeterministic_repeats_fail() {
        let base = vec![rec("a", 100, 50)];
        let cand = vec![rec("a", 100, 50), rec("a", 101, 50)];
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass());
        assert!(report.render().contains("nondeterministic"));
    }

    #[test]
    fn missing_run_fails_and_new_run_notes() {
        let base = vec![rec("a", 100, 50)];
        let cand = vec![rec("b", 100, 50)];
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass());
        let text = report.render();
        assert!(text.contains("missing from candidate"), "{text}");
        assert!(text.contains("new run"), "{text}");
    }

    #[test]
    fn missing_counter_in_candidate_fails() {
        let base = vec![rec("a", 100, 50)];
        let mut cand = base.clone();
        cand[0].counters.clear();
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass());
        assert!(report.render().contains("absent from candidate"));
    }

    #[test]
    fn verdict_json_lists_failures() {
        let base = vec![rec("a", 100, 50)];
        let mut cand = base.clone();
        cand[0].counters.insert("tct.ops".into(), 7);
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        let v = crate::json::parse(&report.verdict_json()).unwrap();
        assert_eq!(v.get("verdict").unwrap().as_str(), Some("FAIL"));
        assert_eq!(v.get("rows").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn empty_intersection_is_not_a_pass() {
        let report = diff_reports(&[], &[], &DiffOptions::default());
        assert!(!report.pass());
    }

    #[test]
    fn seeded_slowdown_fails_by_effect_size_at_five_tries() {
        let base = vec![rec_tries("a", &[100, 101, 99, 100, 100])];
        let cand = vec![rec_tries("a", &[200, 202, 198, 201, 199])];
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass(), "{}", report.render());
        assert!(report.render().contains("σ"), "{}", report.render());
        // The unperturbed re-run of the same suite passes.
        let rerun = vec![rec_tries("a", &[101, 100, 99, 102, 100])];
        let report = diff_reports(&base, &rerun, &DiffOptions::default());
        assert!(report.pass(), "{}", report.render());
    }

    #[test]
    fn noisy_but_equal_passes_where_fixed_band_fails() {
        // +30% mean shift, swamped by a ±24 ms spread: the effect-size
        // verdict keeps it (t ≈ 2.0 < 3σ)…
        let base = vec![rec_tries("a", &[70, 85, 100, 115, 130])];
        let cand = vec![rec_tries("a", &[100, 115, 130, 145, 160])];
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(report.pass(), "{}", report.render());
        // …while the same medians as single shots trip the old fixed
        // ±25% band.
        let base1 = vec![rec("a", 100, 100)];
        let cand1 = vec![rec("a", 100, 130)];
        let report = diff_reports(&base1, &cand1, &DiffOptions::default());
        assert!(!report.pass(), "{}", report.render());
        assert!(report.render().contains("tolerance"));
    }

    #[test]
    fn tiny_but_significant_shifts_pass_min_effect() {
        // 1% shift with microscopic spread: t is huge but the effect
        // is below the 2% practical floor.
        let base = vec![rec_tries("a", &[1000, 1000, 1000, 1001, 999])];
        let cand = vec![rec_tries("a", &[1010, 1010, 1010, 1011, 1009])];
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(report.pass(), "{}", report.render());
    }

    #[test]
    fn v1_baseline_diffs_against_v2_candidate() {
        let v1 = r#"{"schema":"tc-run-v1","dataset":"a","algorithm":"2d","ranks":16,"config":"default","triangles":999,"counters":{"tct.ops":100},"timings_ns":{"tct.wall":100000000}}"#;
        let base = RunRecord::parse_jsonl(v1).unwrap();
        // v1 row has no spread, so the tolerance band governs.
        let cand = vec![rec_tries("a", &[110, 111, 109, 110, 110])];
        assert!(diff_reports(&base, &cand, &DiffOptions::default()).pass());
        let cand = vec![rec_tries("a", &[140, 141, 139, 140, 140])];
        let report = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(!report.pass(), "{}", report.render());
        assert!(report.render().contains("tolerance"));
    }
}
