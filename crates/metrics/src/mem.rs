//! High-water memory accounting for big transient buffers.
//!
//! Preprocessing, Cannon shifts and SUMMA panel staging all build
//! large send/receive buffers whose peak footprint — not the steady
//! state — determines whether a configuration fits in memory. A
//! [`MemScope`] brackets such a buffer's lifetime: bytes are added to
//! the named scope's live count on creation and subtracted on drop,
//! and the registry keeps the high-water mark, exported as a gauge.
//!
//! When metrics are disabled (or the thread has no rank binding) a
//! scope is a zero-cost inert value: one relaxed atomic load at
//! construction, nothing on drop.

use crate::registry::{enabled, mem_acquire, mem_release};

/// RAII guard accounting `bytes` as live under `name` until dropped.
#[derive(Debug)]
pub struct MemScope {
    name: &'static str,
    bytes: u64,
}

impl MemScope {
    /// Starts tracking `bytes` under the scope `name`.
    #[inline]
    pub fn track(name: &'static str, bytes: u64) -> Self {
        if enabled() {
            mem_acquire(name, bytes);
        } else {
            // Inert: remember nothing to release.
            return Self { name, bytes: 0 };
        }
        Self { name, bytes }
    }

    /// Grows the tracked footprint (e.g. a buffer that was resized).
    pub fn grow(&mut self, additional: u64) {
        if self.bytes > 0 || enabled() {
            mem_acquire(self.name, additional);
            self.bytes = self.bytes.saturating_add(additional);
        }
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        if self.bytes > 0 {
            mem_release(self.name, self.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests::locked;
    use crate::registry::{values_recorded_total, MetricsSession};

    #[test]
    fn scope_tracks_high_water_across_overlap() {
        let _l = locked();
        let session = MetricsSession::begin();
        let handle = session.handle();
        {
            let _g = handle.register_rank(0);
            let a = MemScope::track("stage", 100);
            {
                let _b = MemScope::track("stage", 50);
            }
            drop(a);
            let _c = MemScope::track("stage", 20);
        }
        let snap = session.finish();
        assert_eq!(snap.gauge(0, "stage"), Some(150));
    }

    #[test]
    fn grow_raises_the_peak() {
        let _l = locked();
        let session = MetricsSession::begin();
        let handle = session.handle();
        {
            let _g = handle.register_rank(0);
            let mut a = MemScope::track("stage", 10);
            a.grow(90);
        }
        let snap = session.finish();
        assert_eq!(snap.gauge(0, "stage"), Some(100));
    }

    #[test]
    fn disabled_scope_is_inert() {
        let _l = locked();
        let before = values_recorded_total();
        {
            let _a = MemScope::track("stage", 1 << 30);
        }
        assert_eq!(values_recorded_total(), before);
    }
}
