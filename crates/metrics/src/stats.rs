//! Numerically stable summary statistics for repeated timings.
//!
//! The n-try benchmark harness measures every timing `--tries` times
//! and distills the samples into a [`TimingStats`] (the `tc-run-v2`
//! timing value). Accumulation uses Welford's online algorithm — the
//! naive sum-of-squares formula cancels catastrophically at
//! nanosecond magnitudes — and two partial accumulations merge
//! exactly (Chan et al.), so pooling repeats is order-invariant.
//!
//! On top of the summaries sits the effect-size machinery `benchdiff`
//! uses instead of a fixed tolerance band: [`welch_t`] computes
//! Welch's t statistic for two summaries, and a difference only
//! counts when the means are separated by more than `k` combined
//! standard errors (equivalently: the `mean ± k·se` intervals are
//! disjoint).

/// Welford online accumulator: count, mean, and the centered second
/// moment `M2 = Σ(x − mean)²`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Merges another accumulation into this one (Chan et al.'s
    /// parallel update): the result equals accumulating both sample
    /// streams into a single accumulator, up to float rounding.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let nf = n as f64;
        self.mean += d * (other.n as f64 / nf);
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64 / nf);
        self.n = n;
    }

    /// Samples accumulated.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            // m2 is non-negative up to rounding; clamp the rounding.
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Summary of one timing over `tries` repeat measurements — the
/// timing value of a `tc-run-v2` record. A single-shot (v1) timing
/// lifts to `tries = 1` with zero spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Mean nanoseconds.
    pub mean: f64,
    /// Sample standard deviation (0 when `tries < 2`).
    pub stddev: f64,
    /// Fastest try.
    pub min: u64,
    /// Slowest try.
    pub max: u64,
    /// Median try (upper median for even counts).
    pub median: u64,
    /// Number of measured tries behind this summary.
    pub tries: u64,
}

impl TimingStats {
    /// Summarizes a set of raw samples (`None` when empty).
    pub fn from_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut w = Welford::new();
        for &s in samples {
            w.push(s as f64);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(Self {
            mean: w.mean(),
            stddev: w.stddev(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median: sorted[sorted.len() / 2],
            tries: samples.len() as u64,
        })
    }

    /// Lifts a single-shot measurement (a `tc-run-v1` timing).
    pub fn from_single(v: u64) -> Self {
        Self { mean: v as f64, stddev: 0.0, min: v, max: v, median: v, tries: 1 }
    }

    /// Pools repeat summaries of the same timing into one.
    ///
    /// When every part is a single-shot sample the pool is exact
    /// (including the median). Otherwise mean and variance merge
    /// exactly via [`Welford::merge`], min/max fold, and the median —
    /// not recoverable from summaries — is approximated by the median
    /// of the part medians.
    pub fn pool(parts: &[TimingStats]) -> Option<Self> {
        match parts {
            [] => None,
            [one] => Some(*one),
            _ if parts.iter().all(|p| p.tries == 1) => {
                let samples: Vec<u64> = parts.iter().map(|p| p.median).collect();
                Self::from_samples(&samples)
            }
            _ => {
                let mut w = Welford::new();
                let mut min = u64::MAX;
                let mut max = 0u64;
                let mut medians = Vec::with_capacity(parts.len());
                for p in parts {
                    w.merge(&Welford {
                        n: p.tries,
                        mean: p.mean,
                        m2: p.stddev * p.stddev * (p.tries.saturating_sub(1)) as f64,
                    });
                    min = min.min(p.min);
                    max = max.max(p.max);
                    medians.push(p.median);
                }
                medians.sort_unstable();
                Some(Self {
                    mean: w.mean(),
                    stddev: w.stddev(),
                    min,
                    max,
                    median: medians[medians.len() / 2],
                    tries: w.count(),
                })
            }
        }
    }

    /// Renders as milliseconds for diff tables: `12.3±0.4ms (n=5)`,
    /// or plain `12.3ms` for single-shot summaries.
    pub fn fmt_ms(&self) -> String {
        if self.tries <= 1 {
            format!("{:.3}ms", self.mean / 1e6)
        } else {
            format!("{:.3}±{:.3}ms (n={})", self.mean / 1e6, self.stddev / 1e6, self.tries)
        }
    }
}

/// Welch's t statistic for the difference `cand − base`.
///
/// `None` unless both sides carry at least two tries and the
/// combined standard error is positive (identical repeats or
/// single-shot summaries carry no usable spread — callers fall back
/// to the fixed tolerance band).
pub fn welch_t(base: &TimingStats, cand: &TimingStats) -> Option<f64> {
    if base.tries < 2 || cand.tries < 2 {
        return None;
    }
    let se2 = base.stddev * base.stddev / base.tries as f64
        + cand.stddev * cand.stddev / cand.tries as f64;
    if se2 <= 0.0 || !se2.is_finite() {
        return None;
    }
    Some((cand.mean - base.mean) / se2.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var =
            samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        (mean, if samples.len() < 2 { 0.0 } else { var })
    }

    #[test]
    fn welford_matches_naive_two_pass() {
        let samples = [100u64, 102, 98, 100, 110];
        let mut w = Welford::new();
        for &s in &samples {
            w.push(s as f64);
        }
        let (mean, var) = naive(&samples);
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_stream() {
        let all = [5u64, 9, 1, 14, 2, 8, 3];
        let mut whole = Welford::new();
        for &s in &all {
            whole.push(s as f64);
        }
        for cut in 0..=all.len() {
            let (mut a, mut b) = (Welford::new(), Welford::new());
            for &s in &all[..cut] {
                a.push(s as f64);
            }
            for &s in &all[cut..] {
                b.push(s as f64);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-9, "cut {cut}");
            assert!((a.variance() - whole.variance()).abs() < 1e-9, "cut {cut}");
        }
    }

    #[test]
    fn timing_stats_summarize_and_lift() {
        let s = TimingStats::from_samples(&[100, 300, 200]).unwrap();
        assert_eq!((s.min, s.max, s.median, s.tries), (100, 300, 200, 3));
        assert!((s.mean - 200.0).abs() < 1e-9);
        let one = TimingStats::from_single(42);
        assert_eq!((one.min, one.max, one.median, one.tries), (42, 42, 42, 1));
        assert_eq!(one.stddev, 0.0);
        assert!(TimingStats::from_samples(&[]).is_none());
    }

    #[test]
    fn pooling_single_shots_is_exact() {
        let parts: Vec<TimingStats> =
            [100u64, 102, 98].iter().map(|&v| TimingStats::from_single(v)).collect();
        let pooled = TimingStats::pool(&parts).unwrap();
        assert_eq!(pooled, TimingStats::from_samples(&[100, 102, 98]).unwrap());
    }

    #[test]
    fn pooling_summaries_matches_pooled_samples() {
        let a = [100u64, 110, 90, 105, 95];
        let b = [200u64, 210, 190];
        let pooled = TimingStats::pool(&[
            TimingStats::from_samples(&a).unwrap(),
            TimingStats::from_samples(&b).unwrap(),
        ])
        .unwrap();
        let joined: Vec<u64> = a.iter().chain(&b).copied().collect();
        let direct = TimingStats::from_samples(&joined).unwrap();
        assert_eq!(pooled.tries, direct.tries);
        assert_eq!((pooled.min, pooled.max), (direct.min, direct.max));
        assert!((pooled.mean - direct.mean).abs() < 1e-6);
        assert!((pooled.stddev - direct.stddev).abs() < 1e-6);
    }

    #[test]
    fn welch_t_separates_real_shifts_and_ignores_noise() {
        let base = TimingStats::from_samples(&[100, 101, 99, 100, 100]).unwrap();
        let slow = TimingStats::from_samples(&[200, 202, 198, 201, 199]).unwrap();
        assert!(welch_t(&base, &slow).unwrap() > 10.0);
        // Same +30% mean shift, but swamped by spread: small t.
        let noisy_base = TimingStats::from_samples(&[70, 85, 100, 115, 130]).unwrap();
        let noisy_cand = TimingStats::from_samples(&[100, 115, 130, 145, 160]).unwrap();
        let t = welch_t(&noisy_base, &noisy_cand).unwrap();
        assert!(t > 0.0 && t < 3.0, "t={t}");
        // Single-shot sides carry no spread.
        assert!(welch_t(&TimingStats::from_single(5), &slow).is_none());
        // Zero combined spread is unusable too.
        let flat = TimingStats::from_samples(&[100, 100, 100]).unwrap();
        assert!(welch_t(&flat, &flat).is_none());
    }
}
