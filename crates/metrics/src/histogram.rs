//! Log₂-bucketed histogram: fixed footprint, exact count/sum/min/max,
//! lossless merge, and quantile estimates bounded by one bucket.
//!
//! Bucket `0` holds the value `0`; bucket `i` (1 ≤ i ≤ 64) holds the
//! half-open power-of-two range `[2^(i-1), 2^i)` (the last bucket is
//! closed at `u64::MAX`). Recording and merging are pure additions,
//! so the result is independent of ordering and of how a sample set
//! is partitioned across ranks before merging — the property the
//! proptests in `tests/histogram.rs` pin down.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A mergeable log₂-bucketed histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self { buckets: [0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Equivalent to having recorded both
    /// sample sets into one histogram, in any order.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Per-bucket sample counts (index ↔ [`bucket_bounds`]).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Reconstructs a histogram from raw bucket counts plus the exact
    /// aggregates (the snapshot parser's entry point). Returns `None`
    /// if the bucket counts do not sum to `count`.
    pub fn from_parts(buckets: [u64; NUM_BUCKETS], sum: u64, min: u64, max: u64) -> Option<Self> {
        let count: u64 = buckets.iter().sum();
        let h = Self { buckets, count, sum, min, max };
        (count == 0 || min <= max).then_some(h)
    }

    /// Inclusive value bounds `[lo, hi]` of the bucket holding the
    /// `q`-quantile sample (`0.0 ≤ q ≤ 1.0`), tightened by the exact
    /// min/max. `None` when empty. The true quantile of the recorded
    /// sample set always lies within the returned bounds.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target sample among the sorted samples.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for i in 0..NUM_BUCKETS {
            seen += self.buckets[i];
            if seen >= target {
                let (lo, hi) = bucket_bounds(i);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        unreachable!("bucket counts sum to self.count");
    }

    /// Point estimate of the `q`-quantile: the upper bound of its
    /// bucket (a pessimistic estimate, off by at most one bucket).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bounds(q).map(|(_, hi)| hi)
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile_bounds(1.0), None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Log2Histogram::new();
        h.record(37);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_bounds(q), Some((37, 37)));
        }
    }

    #[test]
    fn merge_equals_joint_recording() {
        let (a_samples, b_samples) = ([0u64, 1, 5, 1 << 20], [3u64, 3, u64::MAX]);
        let mut joint = Log2Histogram::new();
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for &v in &a_samples {
            joint.record(v);
            a.record(v);
        }
        for &v in &b_samples {
            joint.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn quantile_bounds_contain_true_quantile() {
        let samples = [1u64, 2, 2, 9, 100, 1000, 1001, 5000];
        let mut h = Log2Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        for (i, &truth) in sorted.iter().enumerate() {
            let q = (i + 1) as f64 / sorted.len() as f64;
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(lo <= truth && truth <= hi, "q={q}: {truth} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_aggregates() {
        let mut buckets = [0u64; NUM_BUCKETS];
        buckets[1] = 2;
        assert!(Log2Histogram::from_parts(buckets, 2, 1, 1).is_some());
        assert!(Log2Histogram::from_parts(buckets, 2, 5, 1).is_none());
    }
}
