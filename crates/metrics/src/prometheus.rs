//! Prometheus-style text exposition of a metrics snapshot.
//!
//! Metric names are sanitized (`.` → `_`, prefixed `tc_`) and each
//! rank becomes a `rank="N"` label. Log₂ histograms are emitted as
//! standard cumulative `_bucket{le=...}` series (bucket upper bounds)
//! plus `_sum` and `_count`.

use std::collections::BTreeMap;

use crate::histogram::{bucket_bounds, Log2Histogram};
use crate::snapshot::{MetricValue, MetricsSnapshot};

/// Sanitized exposition name for a registry metric name.
pub fn exposition_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("tc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the full text exposition of `snap`.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    // Group series by metric name so each gets exactly one # TYPE line.
    let mut by_name: BTreeMap<&str, Vec<(usize, &MetricValue)>> = BTreeMap::new();
    for rank in snap.ranks() {
        for (name, value) in snap.rank(rank).expect("listed rank present") {
            by_name.entry(name).or_default().push((rank, value));
        }
    }
    let mut out = String::new();
    for (name, series) in by_name {
        let pname = exposition_name(name);
        let kind = match series[0].1 {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Hist(_) => "histogram",
        };
        out.push_str(&format!("# TYPE {pname} {kind}\n"));
        for (rank, value) in series {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!("{pname}{{rank=\"{rank}\"}} {v}\n"));
                }
                MetricValue::Hist(h) => write_hist(&mut out, &pname, rank, h),
            }
        }
    }
    out
}

fn write_hist(out: &mut String, pname: &str, rank: usize, h: &Log2Histogram) {
    let buckets = h.buckets();
    let last_nonempty = buckets.iter().rposition(|&n| n > 0);
    let mut cumulative = 0u64;
    if let Some(last) = last_nonempty {
        for (i, &n) in buckets.iter().enumerate().take(last + 1) {
            cumulative += n;
            let (_, le) = bucket_bounds(i);
            out.push_str(&format!("{pname}_bucket{{rank=\"{rank}\",le=\"{le}\"}} {cumulative}\n"));
        }
    }
    out.push_str(&format!("{pname}_bucket{{rank=\"{rank}\",le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{pname}_sum{{rank=\"{rank}\"}} {}\n", h.sum()));
    out.push_str(&format!("{pname}_count{{rank=\"{rank}\"}} {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_names_are_sanitized() {
        assert_eq!(exposition_name("tct.ops"), "tc_tct_ops");
        assert_eq!(exposition_name("mem.prep-staging"), "tc_mem_prep_staging");
    }

    #[test]
    fn counters_gauges_and_histograms_expose() {
        let mut snap = MetricsSnapshot::new();
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        snap.insert(0, "ops".into(), MetricValue::Counter(7));
        snap.insert(1, "ops".into(), MetricValue::Counter(9));
        snap.insert(0, "hwm".into(), MetricValue::Gauge(5));
        snap.insert(0, "lat".into(), MetricValue::Hist(h));
        let text = to_prometheus(&snap);
        assert!(text.contains("# TYPE tc_ops counter\n"), "{text}");
        assert!(text.contains("tc_ops{rank=\"0\"} 7\n"), "{text}");
        assert!(text.contains("tc_ops{rank=\"1\"} 9\n"), "{text}");
        assert!(text.contains("# TYPE tc_hwm gauge\n"), "{text}");
        assert!(text.contains("# TYPE tc_lat histogram\n"), "{text}");
        // Cumulative buckets: le=0 → 1 sample, le=1 → still 1,
        // le=3 → all 3; +Inf always equals count.
        assert!(text.contains("tc_lat_bucket{rank=\"0\",le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("tc_lat_bucket{rank=\"0\",le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("tc_lat_bucket{rank=\"0\",le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("tc_lat_bucket{rank=\"0\",le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("tc_lat_sum{rank=\"0\"} 6\n"), "{text}");
        assert!(text.contains("tc_lat_count{rank=\"0\"} 3\n"), "{text}");
        // One # TYPE line per metric, not per rank.
        assert_eq!(text.matches("# TYPE tc_ops").count(), 1);
    }

    #[test]
    fn empty_histogram_exposes_only_inf_bucket() {
        let mut snap = MetricsSnapshot::new();
        snap.insert(0, "lat".into(), MetricValue::Hist(Log2Histogram::new()));
        let text = to_prometheus(&snap);
        assert!(text.contains("tc_lat_bucket{rank=\"0\",le=\"+Inf\"} 0\n"), "{text}");
        assert!(!text.contains("le=\"0\""), "{text}");
    }
}
