//! Benchmark run records: the JSON-lines schema `benchdiff` consumes.
//!
//! Every bench binary (and `tricount count --json`) appends one
//! `tc-run-v1` object per run. A report file may interleave other
//! line kinds (e.g. the table records bench binaries also emit);
//! [`RunRecord::parse_jsonl`] picks out the run records and ignores
//! the rest, but still insists every line is valid JSON.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::snapshot::{MetricValue, MetricsSnapshot};

/// Run-record schema tag; bump on breaking layout changes.
pub const RUN_SCHEMA: &str = "tc-run-v1";

/// One benchmark run: identity key, deterministic counters, and
/// noisy timings.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Input graph name (e.g. `g500-s8`).
    pub dataset: String,
    /// Algorithm name (e.g. `2d`, `summa`, `aop1d`).
    pub algorithm: String,
    /// Number of ranks.
    pub ranks: u64,
    /// Free-form configuration discriminator (kernel flags, grid
    /// shape, …); runs only compare when it matches.
    pub config: String,
    /// Triangle count — the correctness anchor.
    pub triangles: u64,
    /// Deterministic quantities (ops, probes, bytes, tasks, …):
    /// `benchdiff` hard-fails on any drift.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock style measurements in nanoseconds: compared as
    /// medians with a relative tolerance.
    pub timings_ns: BTreeMap<String, u64>,
}

impl RunRecord {
    /// Distills a cluster-wide snapshot into a run record.
    ///
    /// The split into deterministic counters vs noisy timings follows
    /// the naming convention: anything whose name ends in `_ns` is a
    /// timing, everything else (ops, probes, bytes, tasks, sizes) is
    /// expected to be bit-identical across repeat runs. Counters are
    /// summed across ranks, gauges take the cluster maximum, and
    /// histograms contribute their `count`/`sum` (or just the summed
    /// nanoseconds for timing histograms).
    pub fn from_snapshot(
        dataset: &str,
        algorithm: &str,
        ranks: u64,
        config: &str,
        triangles: u64,
        snap: &MetricsSnapshot,
    ) -> Self {
        let mut counters = BTreeMap::new();
        let mut timings_ns = BTreeMap::new();
        // Reliability and serve counters are present-and-zero by
        // default: a chaos-off run proves the transport was inert, and
        // an offline run proves the service layer never ran (benchdiff
        // hard-fails if any of them ever drifts from the baseline's
        // zero), rather than silently omitting the evidence.
        for name in crate::names::MPS_RELIABILITY.iter().chain(crate::names::SERVE) {
            counters.insert((*name).to_string(), 0);
        }
        for (name, value) in snap.merged() {
            match value {
                MetricValue::Counter(v) => {
                    if name.ends_with("_ns") {
                        timings_ns.insert(name, v);
                    } else {
                        counters.insert(name, v);
                    }
                }
                MetricValue::Gauge(v) => {
                    counters.insert(name, v);
                }
                MetricValue::Hist(h) => {
                    if name.ends_with("_ns") {
                        timings_ns.insert(format!("{name}.sum"), h.sum());
                    } else {
                        counters.insert(format!("{name}.count"), h.count());
                        counters.insert(format!("{name}.sum"), h.sum());
                    }
                }
            }
        }
        Self {
            dataset: dataset.to_string(),
            algorithm: algorithm.to_string(),
            ranks,
            config: config.to_string(),
            triangles,
            counters,
            timings_ns,
        }
    }

    /// The identity `benchdiff` matches runs by.
    pub fn key(&self) -> String {
        format!("{}/{}/p{}/{}", self.dataset, self.algorithm, self.ranks, self.config)
    }

    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"");
        out.push_str(RUN_SCHEMA);
        out.push_str("\",\"dataset\":\"");
        json::escape_into(&mut out, &self.dataset);
        out.push_str("\",\"algorithm\":\"");
        json::escape_into(&mut out, &self.algorithm);
        out.push_str("\",\"ranks\":");
        out.push_str(&self.ranks.to_string());
        out.push_str(",\"config\":\"");
        json::escape_into(&mut out, &self.config);
        out.push_str("\",\"triangles\":");
        out.push_str(&self.triangles.to_string());
        for (section, map) in [("counters", &self.counters), ("timings_ns", &self.timings_ns)] {
            out.push_str(&format!(",\"{section}\":{{"));
            let mut first = true;
            for (k, v) in map {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                json::escape_into(&mut out, k);
                out.push_str(&format!("\":{v}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses one already-parsed JSON object as a run record.
    pub fn from_value(v: &Value) -> Result<RunRecord, String> {
        let want_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("run record missing string '{key}'"))
        };
        let want_u64 = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("run record missing integer '{key}'"))
        };
        let map_of = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            let mut out = BTreeMap::new();
            if let Some(members) = v.get(key).and_then(Value::as_obj) {
                for (k, val) in members {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| format!("run record '{key}.{k}' is not a u64"))?;
                    out.insert(k.clone(), n);
                }
            }
            Ok(out)
        };
        Ok(RunRecord {
            dataset: want_str("dataset")?,
            algorithm: want_str("algorithm")?,
            ranks: want_u64("ranks")?,
            config: want_str("config")?,
            triangles: want_u64("triangles")?,
            counters: map_of("counters")?,
            timings_ns: map_of("timings_ns")?,
        })
    }

    /// Extracts all run records from a JSON-lines report. Lines with
    /// other schemas (or none) are skipped; malformed JSON is an
    /// error.
    pub fn parse_jsonl(text: &str) -> Result<Vec<RunRecord>, String> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if v.get("schema").and_then(Value::as_str) == Some(RUN_SCHEMA) {
                out.push(Self::from_value(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            dataset: "g500-s8".into(),
            algorithm: "2d".into(),
            ranks: 16,
            config: "default".into(),
            triangles: 12345,
            counters: [("tct.ops".to_string(), 777u64), ("mps.bytes_sent".to_string(), 4096)]
                .into_iter()
                .collect(),
            timings_ns: [("tct.wall".to_string(), 1_000_000u64)].into_iter().collect(),
        }
    }

    #[test]
    fn run_record_round_trips() {
        let rec = sample();
        let line = rec.to_json_line();
        let back = RunRecord::parse_jsonl(&line).unwrap();
        assert_eq!(back, vec![rec]);
    }

    #[test]
    fn key_includes_all_match_fields() {
        assert_eq!(sample().key(), "g500-s8/2d/p16/default");
    }

    #[test]
    fn from_snapshot_splits_timings_from_counters() {
        let mut snap = MetricsSnapshot::new();
        for rank in 0..2usize {
            snap.insert(rank, "tct.ops".into(), MetricValue::Counter(100));
            snap.insert(rank, "tct.wall_ns".into(), MetricValue::Counter(5_000));
            snap.insert(rank, "tct.hash_slots".into(), MetricValue::Gauge(64 * (rank as u64 + 1)));
            let mut bytes = crate::Log2Histogram::new();
            bytes.record(1024);
            snap.insert(rank, "tct.shift_bytes".into(), MetricValue::Hist(bytes));
            let mut lat = crate::Log2Histogram::new();
            lat.record(700);
            snap.insert(rank, "tct.shift_compute_ns".into(), MetricValue::Hist(lat));
        }
        let rec = RunRecord::from_snapshot("g500-s8", "2d", 2, "default", 9, &snap);
        assert_eq!(rec.key(), "g500-s8/2d/p2/default");
        assert_eq!(rec.counters.get("tct.ops"), Some(&200));
        assert_eq!(rec.counters.get("tct.hash_slots"), Some(&128), "gauge takes max");
        assert_eq!(rec.counters.get("tct.shift_bytes.count"), Some(&2));
        assert_eq!(rec.counters.get("tct.shift_bytes.sum"), Some(&2048));
        assert_eq!(rec.timings_ns.get("tct.wall_ns"), Some(&10_000));
        assert_eq!(rec.timings_ns.get("tct.shift_compute_ns.sum"), Some(&1400));
        assert!(!rec.counters.contains_key("tct.wall_ns"));
        assert!(!rec.timings_ns.contains_key("tct.ops"));
    }

    #[test]
    fn parse_jsonl_skips_foreign_lines_but_rejects_garbage() {
        let mixed = format!(
            "{}\n{{\"title\":\"Table 2\",\"columns\":[],\"rows\":[]}}\n\n{}\n",
            sample().to_json_line(),
            sample().to_json_line()
        );
        assert_eq!(RunRecord::parse_jsonl(&mixed).unwrap().len(), 2);
        assert!(RunRecord::parse_jsonl("not json\n").is_err());
    }
}
