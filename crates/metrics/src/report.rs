//! Benchmark run records: the JSON-lines schema `benchdiff` consumes.
//!
//! Every bench binary (and `tricount count --json`) appends one
//! `tc-run-v2` object per run. A report file may interleave other
//! line kinds (e.g. the table records bench binaries also emit);
//! [`RunRecord::parse_jsonl`] picks out the run records and ignores
//! the rest, but still insists every line is valid JSON.
//!
//! ## v1 → v2
//!
//! `tc-run-v1` stored each timing as one `u64` (a single shot).
//! `tc-run-v2` stores a [`TimingStats`] object per timing —
//! `{mean, stddev, min, max, median, tries}` over the harness's
//! `--tries` repeats. The parser accepts both: v1 timings lift to
//! `tries = 1` summaries, so old baselines keep diffing against new
//! reports (via the fixed-tolerance fallback for spread-free rows).

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::snapshot::{MetricValue, MetricsSnapshot};
use crate::stats::TimingStats;

/// Run-record schema tag; bump on breaking layout changes.
pub const RUN_SCHEMA: &str = "tc-run-v2";

/// The previous single-shot schema, still accepted on input.
pub const RUN_SCHEMA_V1: &str = "tc-run-v1";

/// One benchmark run: identity key, deterministic counters, and
/// noisy timings.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Input graph name (e.g. `g500-s8`).
    pub dataset: String,
    /// Algorithm name (e.g. `2d`, `summa`, `aop1d`).
    pub algorithm: String,
    /// Number of ranks.
    pub ranks: u64,
    /// Free-form configuration discriminator (kernel flags, grid
    /// shape, …); runs only compare when it matches.
    pub config: String,
    /// Triangle count — the correctness anchor.
    pub triangles: u64,
    /// Deterministic quantities (ops, probes, bytes, tasks, …):
    /// `benchdiff` hard-fails on any drift.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock style measurements in nanoseconds, summarized over
    /// the harness's repeat tries: compared by effect size (or a
    /// relative tolerance when no spread is available).
    pub timings_ns: BTreeMap<String, TimingStats>,
}

impl RunRecord {
    /// Distills a cluster-wide snapshot into a run record.
    ///
    /// The split into deterministic counters vs noisy timings follows
    /// the naming convention: anything whose name ends in `_ns` is a
    /// timing, everything else (ops, probes, bytes, tasks, sizes) is
    /// expected to be bit-identical across repeat runs. Counters are
    /// summed across ranks, gauges take the cluster maximum, and
    /// histograms contribute their `count`/`sum` projections — the
    /// sample count of a timing histogram is itself deterministic, so
    /// it lands with the counters while the summed nanoseconds join
    /// the timings.
    pub fn from_snapshot(
        dataset: &str,
        algorithm: &str,
        ranks: u64,
        config: &str,
        triangles: u64,
        snap: &MetricsSnapshot,
    ) -> Self {
        let mut counters = BTreeMap::new();
        let mut timings_ns = BTreeMap::new();
        // Reliability, serve, and adaptive-kernel counters are
        // present-and-zero by default: a chaos-off run proves the
        // transport was inert, an offline run proves the service layer
        // never ran, and a hash-only run proves no fast path engaged
        // (benchdiff hard-fails if any of them ever drifts from the
        // baseline's zero), rather than silently omitting the evidence.
        for name in crate::names::MPS_RELIABILITY
            .iter()
            .chain(crate::names::SERVE)
            .chain(crate::names::TCT_KERNEL)
        {
            counters.insert((*name).to_string(), 0);
        }
        for (name, value) in snap.merged() {
            match value {
                MetricValue::Counter(v) => {
                    if name.ends_with("_ns") {
                        timings_ns.insert(name, TimingStats::from_single(v));
                    } else {
                        counters.insert(name, v);
                    }
                }
                MetricValue::Gauge(v) => {
                    counters.insert(name, v);
                }
                MetricValue::Hist(h) => {
                    if name.ends_with("_ns") {
                        counters.insert(format!("{name}.count"), h.count());
                        timings_ns.insert(format!("{name}.sum"), TimingStats::from_single(h.sum()));
                    } else {
                        counters.insert(format!("{name}.count"), h.count());
                        counters.insert(format!("{name}.sum"), h.sum());
                    }
                }
            }
        }
        Self {
            dataset: dataset.to_string(),
            algorithm: algorithm.to_string(),
            ranks,
            config: config.to_string(),
            triangles,
            counters,
            timings_ns,
        }
    }

    /// Folds the per-try records of one measured run into a single
    /// `tc-run-v2` record: timings summarize across tries, while the
    /// identity fields, triangle count and every deterministic
    /// counter must agree exactly (a drift across tries of the same
    /// binary on the same input is a real nondeterminism bug, not
    /// noise — the error names the drifting quantity).
    pub fn aggregate(tries: &[RunRecord]) -> Result<RunRecord, String> {
        let first = tries.first().ok_or("no tries to aggregate")?;
        for r in &tries[1..] {
            if r.key() != first.key() {
                return Err(format!("tries mix run keys '{}' and '{}'", first.key(), r.key()));
            }
            if r.triangles != first.triangles {
                return Err(format!(
                    "triangle count drifted across tries ({} vs {})",
                    first.triangles, r.triangles
                ));
            }
            if r.counters != first.counters {
                let name = first
                    .counters
                    .iter()
                    .find(|(k, v)| r.counters.get(*k) != Some(v))
                    .map(|(k, _)| k.clone())
                    .or_else(|| {
                        r.counters.keys().find(|k| !first.counters.contains_key(*k)).cloned()
                    })
                    .unwrap_or_else(|| "<unknown>".into());
                return Err(format!("counter '{name}' drifted across tries"));
            }
        }
        let mut timings_ns = BTreeMap::new();
        let names: std::collections::BTreeSet<&String> =
            tries.iter().flat_map(|r| r.timings_ns.keys()).collect();
        for name in names {
            let parts: Vec<TimingStats> =
                tries.iter().filter_map(|r| r.timings_ns.get(name).copied()).collect();
            if let Some(pooled) = TimingStats::pool(&parts) {
                timings_ns.insert(name.clone(), pooled);
            }
        }
        Ok(RunRecord { timings_ns, ..first.clone() })
    }

    /// The identity `benchdiff` matches runs by.
    pub fn key(&self) -> String {
        format!("{}/{}/p{}/{}", self.dataset, self.algorithm, self.ranks, self.config)
    }

    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"");
        out.push_str(RUN_SCHEMA);
        out.push_str("\",\"dataset\":\"");
        json::escape_into(&mut out, &self.dataset);
        out.push_str("\",\"algorithm\":\"");
        json::escape_into(&mut out, &self.algorithm);
        out.push_str("\",\"ranks\":");
        out.push_str(&self.ranks.to_string());
        out.push_str(",\"config\":\"");
        json::escape_into(&mut out, &self.config);
        out.push_str("\",\"triangles\":");
        out.push_str(&self.triangles.to_string());
        out.push_str(",\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            json::escape_into(&mut out, k);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"timings_ns\":{");
        let mut first = true;
        for (k, s) in &self.timings_ns {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            json::escape_into(&mut out, k);
            out.push_str("\":");
            write_timing(&mut out, s);
        }
        out.push_str("}}");
        out
    }

    /// Parses one already-parsed JSON object as a run record (either
    /// schema).
    pub fn from_value(v: &Value) -> Result<RunRecord, String> {
        let want_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("run record missing string '{key}'"))
        };
        let want_u64 = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("run record missing integer '{key}'"))
        };
        let mut counters = BTreeMap::new();
        if let Some(members) = v.get("counters").and_then(Value::as_obj) {
            for (k, val) in members {
                let n = val
                    .as_u64()
                    .ok_or_else(|| format!("run record 'counters.{k}' is not a u64"))?;
                counters.insert(k.clone(), n);
            }
        }
        let mut timings_ns = BTreeMap::new();
        if let Some(members) = v.get("timings_ns").and_then(Value::as_obj) {
            for (k, val) in members {
                timings_ns.insert(k.clone(), parse_timing(k, val)?);
            }
        }
        Ok(RunRecord {
            dataset: want_str("dataset")?,
            algorithm: want_str("algorithm")?,
            ranks: want_u64("ranks")?,
            config: want_str("config")?,
            triangles: want_u64("triangles")?,
            counters,
            timings_ns,
        })
    }

    /// Extracts all run records from a JSON-lines report — both
    /// `tc-run-v2` and legacy `tc-run-v1` lines. Lines with other
    /// schemas (or none) are skipped; malformed JSON is an error.
    pub fn parse_jsonl(text: &str) -> Result<Vec<RunRecord>, String> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let schema = v.get("schema").and_then(Value::as_str);
            if schema == Some(RUN_SCHEMA) || schema == Some(RUN_SCHEMA_V1) {
                out.push(Self::from_value(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
            }
        }
        Ok(out)
    }
}

fn write_timing(out: &mut String, s: &TimingStats) {
    out.push_str(&format!(
        "{{\"mean\":{},\"stddev\":{},\"min\":{},\"max\":{},\"median\":{},\"tries\":{}}}",
        json::fmt_f64(s.mean),
        json::fmt_f64(s.stddev),
        s.min,
        s.max,
        s.median,
        s.tries
    ));
}

/// Parses one timing value: a bare `u64` (v1 single shot) or a v2
/// stats object.
fn parse_timing(name: &str, val: &Value) -> Result<TimingStats, String> {
    if let Some(n) = val.as_u64() {
        return Ok(TimingStats::from_single(n));
    }
    if val.as_obj().is_none() {
        return Err(format!("run record 'timings_ns.{name}' is neither u64 nor stats object"));
    }
    let want_f64 = |key: &str| -> Result<f64, String> {
        val.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("timing '{name}' missing number '{key}'"))
    };
    let want_u64 = |key: &str| -> Result<u64, String> {
        val.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("timing '{name}' missing integer '{key}'"))
    };
    let tries = want_u64("tries")?;
    if tries == 0 {
        return Err(format!("timing '{name}' claims zero tries"));
    }
    Ok(TimingStats {
        mean: want_f64("mean")?,
        stddev: want_f64("stddev")?,
        min: want_u64("min")?,
        max: want_u64("max")?,
        median: want_u64("median")?,
        tries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            dataset: "g500-s8".into(),
            algorithm: "2d".into(),
            ranks: 16,
            config: "default".into(),
            triangles: 12345,
            counters: [("tct.ops".to_string(), 777u64), ("mps.bytes_sent".to_string(), 4096)]
                .into_iter()
                .collect(),
            timings_ns: [(
                "tct.wall_ns".to_string(),
                TimingStats::from_samples(&[1_000_000, 1_100_000, 900_000]).unwrap(),
            )]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn run_record_round_trips() {
        let rec = sample();
        let line = rec.to_json_line();
        assert!(line.contains("\"schema\":\"tc-run-v2\""));
        let back = RunRecord::parse_jsonl(&line).unwrap();
        assert_eq!(back, vec![rec]);
    }

    #[test]
    fn v1_timings_lift_to_single_try_summaries() {
        let v1 = r#"{"schema":"tc-run-v1","dataset":"g500-s8","algorithm":"2d","ranks":16,"config":"default","triangles":9,"counters":{"tct.ops":7},"timings_ns":{"tct.wall_ns":5000000}}"#;
        let recs = RunRecord::parse_jsonl(v1).unwrap();
        assert_eq!(recs.len(), 1);
        let t = recs[0].timings_ns.get("tct.wall_ns").unwrap();
        assert_eq!(*t, TimingStats::from_single(5_000_000));
        assert_eq!(t.tries, 1);
    }

    #[test]
    fn key_includes_all_match_fields() {
        assert_eq!(sample().key(), "g500-s8/2d/p16/default");
    }

    #[test]
    fn from_snapshot_splits_timings_from_counters() {
        let mut snap = MetricsSnapshot::new();
        for rank in 0..2usize {
            snap.insert(rank, "tct.ops".into(), MetricValue::Counter(100));
            snap.insert(rank, "tct.wall_ns".into(), MetricValue::Counter(5_000));
            snap.insert(rank, "tct.hash_slots".into(), MetricValue::Gauge(64 * (rank as u64 + 1)));
            let mut bytes = crate::Log2Histogram::new();
            bytes.record(1024);
            snap.insert(rank, "tct.shift_bytes".into(), MetricValue::Hist(bytes));
            let mut lat = crate::Log2Histogram::new();
            lat.record(700);
            snap.insert(rank, "tct.shift_compute_ns".into(), MetricValue::Hist(lat));
        }
        let rec = RunRecord::from_snapshot("g500-s8", "2d", 2, "default", 9, &snap);
        assert_eq!(rec.key(), "g500-s8/2d/p2/default");
        assert_eq!(rec.counters.get("tct.ops"), Some(&200));
        assert_eq!(rec.counters.get("tct.hash_slots"), Some(&128), "gauge takes max");
        assert_eq!(rec.counters.get("tct.shift_bytes.count"), Some(&2));
        assert_eq!(rec.counters.get("tct.shift_bytes.sum"), Some(&2048));
        // A timing histogram's sample count is deterministic and joins
        // the counters; the summed nanoseconds stay a timing.
        assert_eq!(rec.counters.get("tct.shift_compute_ns.count"), Some(&2));
        assert_eq!(rec.timings_ns.get("tct.wall_ns"), Some(&TimingStats::from_single(10_000)));
        assert_eq!(
            rec.timings_ns.get("tct.shift_compute_ns.sum"),
            Some(&TimingStats::from_single(1400))
        );
        assert!(!rec.counters.contains_key("tct.wall_ns"));
        assert!(!rec.timings_ns.contains_key("tct.ops"));
    }

    #[test]
    fn aggregate_summarizes_timings_and_guards_determinism() {
        let mut tries = Vec::new();
        for wall in [100u64, 110, 90] {
            let mut r = sample();
            r.timings_ns =
                [("tct.wall_ns".to_string(), TimingStats::from_single(wall * 1_000_000))]
                    .into_iter()
                    .collect();
            tries.push(r);
        }
        let agg = RunRecord::aggregate(&tries).unwrap();
        let t = agg.timings_ns.get("tct.wall_ns").unwrap();
        assert_eq!(t.tries, 3);
        assert_eq!(t.median, 100 * 1_000_000);
        assert_eq!(t.min, 90 * 1_000_000);
        assert_eq!(t.max, 110 * 1_000_000);
        assert!((t.mean - 100.0 * 1e6).abs() < 1e-3);
        // Counter drift across tries is an error naming the counter.
        let mut bad = tries.clone();
        bad[1].counters.insert("tct.ops".into(), 778);
        let err = RunRecord::aggregate(&bad).unwrap_err();
        assert!(err.contains("tct.ops"), "{err}");
        // Triangle drift too.
        let mut bad = tries.clone();
        bad[2].triangles = 1;
        assert!(RunRecord::aggregate(&bad).unwrap_err().contains("triangle"));
        assert!(RunRecord::aggregate(&[]).is_err());
    }

    #[test]
    fn parse_jsonl_skips_foreign_lines_but_rejects_garbage() {
        let mixed = format!(
            "{}\n{{\"title\":\"Table 2\",\"columns\":[],\"rows\":[]}}\n\n{}\n",
            sample().to_json_line(),
            sample().to_json_line()
        );
        assert_eq!(RunRecord::parse_jsonl(&mixed).unwrap().len(), 2);
        assert!(RunRecord::parse_jsonl("not json\n").is_err());
    }
}
