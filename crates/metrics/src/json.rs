//! Minimal hand-rolled JSON reader/writer.
//!
//! `tc-metrics` is a zero-dependency crate (same discipline as
//! `tc-trace`), so it carries its own tiny JSON layer rather than
//! reusing `tc_trace::json`. Integers are kept exact as `u64` —
//! counters and histogram bounds must survive a round trip without
//! the 2⁵³ precision cliff of `f64`.

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integer token with no fraction/exponent.
    Int(u64),
    /// Any other number.
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

/// Appends `s` JSON-escaped (without quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders an `f64` as a JSON number token (finite values only;
/// non-finite values render as `0`).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    // `{}` on an f64 round-trips and never emits exponents for the
    // magnitudes this crate produces.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,"x\n"],"b":{"c":true,"d":null},"n":-3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\n"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-3.0));
    }

    #[test]
    fn u64_integers_are_exact() {
        let big = u64::MAX;
        let v = parse(&format!("{{\"x\":{big}}}")).unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::from("\"");
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        out.push('"');
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
